"""``python -m repro`` — dispatch to the experiment runner."""

from .experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
