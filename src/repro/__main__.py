"""``python -m repro`` — experiments by default, ``serve`` for the live
service control plane (see :mod:`repro.service.server`)."""

import sys


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        from .service.server import main as serve_main

        return serve_main(argv[1:])
    from .experiments.runner import main as runner_main

    return runner_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
