"""Demand-aware sub-schedules (paper Section 3.2.2, future work).

    "In the future, Shale could even be interleaved with demand-aware
    sub-schedules, which may be beneficial for mixed or partially known
    demands."

This module implements that extension.  A known demand matrix is decomposed
into permutation matchings (Birkhoff–von-Neumann style, built greedily with
maximum-weight assignments), the matchings are apportioned timeslots in
proportion to their weights, and the result is a :class:`DemandAwareSchedule`
exposing the same ``send_target`` / ``epoch_length`` interface as the
oblivious :class:`~repro.core.schedule.Schedule` — so it can take timeslots
inside an :class:`~repro.core.interleave.InterleavedSchedule` next to
ordinary Shale sub-schedules.

Cells on a demand-aware sub-schedule travel **one hop** (they are only sent
when source and destination are directly connected), so a pair's achievable
rate is its share of the matching frame.  For demand it was built for, that
beats VLB's ``1/(2h)`` by up to ``2h``; for demand it was *not* built for,
service can be zero — exactly the obliviousness-vs-specialisation tradeoff
the paper's design space is about.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "bvn_decomposition",
    "DemandAwareSchedule",
    "service_fraction",
    "optimal_latency_share",
]


def bvn_decomposition(
    demand: Sequence[Sequence[float]],
    max_matchings: Optional[int] = None,
    tolerance: float = 1e-9,
) -> List[Tuple[float, List[int]]]:
    """Greedy Birkhoff–von-Neumann-style decomposition of a demand matrix.

    Args:
        demand: an ``n x n`` non-negative matrix; ``demand[i][j]`` is the
            traffic rate from ``i`` to ``j`` (diagonal must be zero).  Rows
            and columns need not be doubly stochastic — the decomposition
            covers whatever mass is there.
        max_matchings: stop after this many matchings (default ``n``).
        tolerance: residual mass below which decomposition stops.

    Returns:
        ``(weight, matching)`` pairs, heaviest first, where ``matching[i]``
        is the node ``i`` sends to (or ``-1`` for unmatched).  Weights are
        the bottleneck rates of each matching.
    """
    from scipy.optimize import linear_sum_assignment

    matrix = np.array(demand, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("demand must be a square matrix")
    if (matrix < 0).any():
        raise ValueError("demand entries must be non-negative")
    if np.diag(matrix).any():
        raise ValueError("demand diagonal (self traffic) must be zero")
    n = matrix.shape[0]
    limit = max_matchings if max_matchings is not None else n
    residual = matrix.copy()
    out: List[Tuple[float, List[int]]] = []
    for _ in range(limit):
        if residual.sum() <= tolerance:
            break
        # maximum-weight assignment on the residual (exclude the diagonal)
        cost = -residual.copy()
        np.fill_diagonal(cost, np.inf)
        rows, cols = linear_sum_assignment(cost)
        matching = [-1] * n
        used = []
        for i, j in zip(rows, cols):
            if residual[i][j] > tolerance and i != j:
                matching[i] = int(j)
                used.append((i, j))
        if not used:
            break
        weight = min(residual[i][j] for i, j in used)
        for i, j in used:
            residual[i][j] -= weight
        out.append((float(weight), matching))
    out.sort(key=lambda item: -item[0])
    return out


class DemandAwareSchedule:
    """A fixed frame of matchings serving a known demand matrix.

    Duck-types the subset of :class:`~repro.core.schedule.Schedule` the
    interleaver uses: ``n``, ``epoch_length``, ``send_target``.

    Args:
        demand: the demand matrix the schedule is specialised for.
        frame_length: timeslots per frame; matchings receive slots in
            proportion to their decomposition weights (largest remainder).
    """

    def __init__(
        self,
        demand: Sequence[Sequence[float]],
        frame_length: int = 64,
        max_matchings: Optional[int] = None,
    ):
        if frame_length < 1:
            raise ValueError("frame must contain at least one slot")
        self.matchings = bvn_decomposition(demand, max_matchings)
        if not self.matchings:
            raise ValueError("demand matrix contains no traffic to schedule")
        self.n = len(self.matchings[0][1])
        self.frame_length = frame_length
        total = sum(w for w, _ in self.matchings)
        ideal = [w / total * frame_length for w, _ in self.matchings]
        counts = [int(x) for x in ideal]
        order = sorted(
            range(len(ideal)), key=lambda i: ideal[i] - counts[i],
            reverse=True,
        )
        for i in order[: frame_length - sum(counts)]:
            counts[i] += 1
        #: slot -> matching index
        self.frame: List[int] = []
        for index, count in enumerate(counts):
            self.frame.extend([index] * count)
        if not self.frame:
            self.frame = [0]
        self.epoch_length = len(self.frame)
        self._slot_counts = counts

    def send_target(self, node: int, t: int) -> Optional[int]:
        """Peer of ``node`` at slot ``t`` (None when unmatched that slot)."""
        matching = self.matchings[self.frame[t % self.epoch_length]][1]
        target = matching[node]
        return None if target < 0 else target

    def pair_rate(self, src: int, dst: int) -> float:
        """Fraction of slots in which ``src`` is matched to ``dst``."""
        hits = sum(
            1
            for slot in range(self.epoch_length)
            if self.send_target(src, slot) == dst
        )
        return hits / self.epoch_length

    def throughput_for(self, demand: Sequence[Sequence[float]]) -> float:
        """Fraction of ``demand`` this schedule can serve at line rate.

        The binding constraint per pair: service ``min(rate, demand)``;
        returns served mass / demanded mass.
        """
        matrix = np.array(demand, dtype=float)
        total = matrix.sum()
        if total <= 0:
            return 1.0
        served = 0.0
        for src in range(self.n):
            for dst in range(self.n):
                if matrix[src][dst] > 0:
                    served += min(matrix[src][dst],
                                  self.pair_rate(src, dst))
        return min(1.0, served / total)


def service_fraction(
    schedule: DemandAwareSchedule, demand: Sequence[Sequence[float]]
) -> float:
    """Convenience alias for :meth:`DemandAwareSchedule.throughput_for`."""
    return schedule.throughput_for(demand)


def optimal_latency_share(
    short_flow_load: float,
    bulk_load: float,
    h_bulk: int,
    h_latency: int,
) -> float:
    """The interleave share ``s`` equalising utilisation across classes.

    The paper chooses flow-size cutoffs "to allow equivalent utilization of
    both" sub-schedules; this solves the inverse problem — given the load
    split, pick ``s`` so both classes sit at the same fraction of their
    guarantees:

        short / (s / 2h_lat)  ==  bulk / ((1-s) / 2h_bulk)
    """
    if short_flow_load < 0 or bulk_load < 0:
        raise ValueError("loads must be non-negative")
    if short_flow_load == bulk_load == 0:
        raise ValueError("at least one class must carry load")
    a = short_flow_load * 2 * h_latency
    b = bulk_load * 2 * h_bulk
    return a / (a + b)
