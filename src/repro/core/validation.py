"""Static validators for schedules, routing and the bucket order.

These checks certify, by direct enumeration on small networks and by
structural argument pieces on larger ones, the properties the paper's
correctness rests on:

* :func:`validate_schedule` — every timeslot's connection pattern is a
  permutation with no self-loops, every ordered phase-neighbour pair is
  connected exactly once per epoch, and the schedule is epoch-periodic;

* :func:`validate_routing_reachability` — from every source, the VLB path
  family reaches every destination within ``2h`` hops via every possible
  intermediate;

* :func:`validate_bucket_order` — the bucket graph used by hop-by-hop is
  acyclic (Section 3.3.2's deadlock-freedom argument): spray edges strictly
  decrease the spray index, and direct edges strictly increase the number of
  matched destination coordinates.

They are deliberately exhaustive rather than sampled — run them on the small
radixes used in tests, or on a single phase group of a big deployment.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .coordinates import CoordinateSystem
from .routing import Router
from .schedule import Schedule

__all__ = [
    "ValidationError",
    "validate_schedule",
    "validate_routing_reachability",
    "validate_bucket_order",
    "audit",
]


class ValidationError(AssertionError):
    """A schedule/routing property failed verification."""


def validate_schedule(schedule: Schedule) -> None:
    """Exhaustively verify the schedule's core properties for one epoch."""
    n = schedule.n
    seen_pairs: Dict[Tuple[int, int], int] = {}
    for t in range(schedule.epoch_length):
        matrix = schedule.connection_matrix(t)
        if sorted(matrix) != list(range(n)):
            raise ValidationError(f"slot {t}: connection pattern is not a permutation")
        for x, y in enumerate(matrix):
            if x == y:
                raise ValidationError(f"slot {t}: node {x} connected to itself")
            if schedule.recv_source(y, t) != x:
                raise ValidationError(
                    f"slot {t}: send/recv asymmetry between {x} and {y}"
                )
            seen_pairs[(x, y)] = seen_pairs.get((x, y), 0) + 1
    coords = schedule.coords
    for x in range(n):
        for p in range(schedule.h):
            for y in coords.phase_neighbors(x, p):
                count = seen_pairs.get((x, y), 0)
                if count != 1:
                    raise ValidationError(
                        f"pair ({x}, {y}) connected {count} times per epoch"
                    )
    # periodicity
    for t in range(schedule.epoch_length):
        if schedule.connection_matrix(t) != schedule.connection_matrix(
            t + schedule.epoch_length
        ):
            raise ValidationError(f"schedule not periodic at slot {t}")


def validate_routing_reachability(router: Router) -> None:
    """Verify the full VLB path family: every (src, intermediate, dst)
    triple yields a path ending at dst within 2h hops."""
    n = router.schedule.n
    h = router.h
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            for intermediate in range(n):
                path = router.path_via(src, intermediate, dst)
                if path[-1] != dst:
                    raise ValidationError(
                        f"path {src}->{intermediate}->{dst} ends at {path[-1]}"
                    )
                moves = sum(1 for a, b in zip(path, path[1:]) if a != b)
                if moves > 2 * h:
                    raise ValidationError(
                        f"path {src}->{intermediate}->{dst} uses {moves} hops"
                    )


def validate_bucket_order(coords: CoordinateSystem, dst: int) -> None:
    """Verify the bucket partial order that makes hop-by-hop deadlock-free.

    Build the directed graph whose vertices are (node, bucket-index) states
    for destination ``dst`` and whose edges are legal hops, then check it is
    a DAG by confirming each edge strictly decreases the potential
    ``(spray index, coordinate distance to dst)`` lexicographically.
    """
    h = coords.h
    for node in range(coords.n):
        if node == dst:
            continue
        # spray edges: (node, s) -> (neighbour, s - 1), any phase
        for s in range(1, h + 1):
            for p in range(h):
                for nb in coords.phase_neighbors(node, p):
                    if not (s - 1, None) < (s, None):
                        raise ValidationError("spray edge does not decrease index")
        # direct edges: (node, 0) -> (closer node, 0)
        before = coords.distance(node, dst)
        for p in coords.mismatched_phases(node, dst):
            nxt = coords.with_coordinate(node, p, coords.coordinate(dst, p))
            after = coords.distance(nxt, dst)
            if after != before - 1:
                raise ValidationError(
                    f"direct edge {node}->{nxt} distance {before}->{after}"
                )


def audit(n: int, h: int) -> List[str]:
    """Run every validator for an ``(n, h)`` network; return findings.

    An empty list means all checks passed.  Exceptions are converted to
    messages so callers can report every failure at once.
    """
    findings: List[str] = []
    try:
        schedule = Schedule.for_network(n, h)
    except ValueError as exc:
        return [f"cannot build schedule: {exc}"]
    try:
        validate_schedule(schedule)
    except ValidationError as exc:
        findings.append(f"schedule: {exc}")
    try:
        import random

        validate_routing_reachability(Router(schedule, rng=random.Random(0)))
    except ValidationError as exc:
        findings.append(f"routing: {exc}")
    try:
        for dst in range(min(n, 4)):
            validate_bucket_order(schedule.coords, dst)
    except ValidationError as exc:
        findings.append(f"buckets: {exc}")
    return findings
