"""Core Shale abstractions: coordinates, schedules, routing, cells, buckets.

This package contains the paper's primary contribution in library form —
everything a simulator, a hardware model or an analysis script needs to
reason about a Shale network, with no simulation machinery attached.
"""

from .buckets import ActiveBucketTracker, BucketId, TokenLedger
from .cell import (
    CELL_SIZE_BYTES,
    HEADER_SIZE_BYTES,
    PAYLOAD_SIZE_BYTES,
    Cell,
)
from .coordinates import CoordinateSystem, integer_root, is_perfect_power
from .header import (
    TOKEN_INVALIDATE,
    TOKEN_REGULAR,
    TOKEN_REVALIDATE,
    HeaderCodec,
    Token,
)
from .demand_aware import (
    DemandAwareSchedule,
    bvn_decomposition,
    optimal_latency_share,
    service_fraction,
)
from .lanes import LaneSchedule
from .interleave import (
    InterleavedSchedule,
    SubScheduleSpec,
    two_class_interleave,
)
from .routing import (
    Router,
    SemiObliviousRouter,
    direct_semi_path,
    spray_semi_path_lengths,
)
from .strategies import (
    RoutingStrategy,
    ScheduleStrategy,
    make_router,
    make_schedule,
    register_routing,
    register_schedule,
    routing_names,
    schedule_names,
    shared_schedule,
    validate_design,
)
from .validation import (
    ValidationError,
    audit,
    validate_bucket_order,
    validate_routing_reachability,
    validate_schedule,
)
from .schedule import Schedule, SlotInfo, SrrdSchedule, srrd_schedule

__all__ = [
    "ActiveBucketTracker",
    "BucketId",
    "CELL_SIZE_BYTES",
    "Cell",
    "CoordinateSystem",
    "DemandAwareSchedule",
    "HEADER_SIZE_BYTES",
    "HeaderCodec",
    "InterleavedSchedule",
    "LaneSchedule",
    "PAYLOAD_SIZE_BYTES",
    "Router",
    "RoutingStrategy",
    "Schedule",
    "ScheduleStrategy",
    "SemiObliviousRouter",
    "SlotInfo",
    "SrrdSchedule",
    "SubScheduleSpec",
    "TOKEN_INVALIDATE",
    "TOKEN_REGULAR",
    "TOKEN_REVALIDATE",
    "Token",
    "TokenLedger",
    "ValidationError",
    "audit",
    "bvn_decomposition",
    "direct_semi_path",
    "integer_root",
    "is_perfect_power",
    "make_router",
    "make_schedule",
    "optimal_latency_share",
    "register_routing",
    "register_schedule",
    "routing_names",
    "schedule_names",
    "service_fraction",
    "shared_schedule",
    "spray_semi_path_lengths",
    "srrd_schedule",
    "validate_bucket_order",
    "validate_design",
    "validate_routing_reachability",
    "validate_schedule",
    "two_class_interleave",
]
