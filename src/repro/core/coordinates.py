"""Coordinate system for Shale / EBS networks.

A Shale network with parameter ``h`` assigns every one of its ``N = r**h``
nodes a unique vector of ``h`` coordinates, each ranging over ``0 .. r-1``
(the paper uses ``1 .. h-th-root-of-N``; we use zero-based digits, which is an
inconsequential relabelling).  Nodes participate in ``h`` round-robin
*phases*; during phase ``p`` a node connects, one neighbour per timeslot, to
each of the ``r - 1`` nodes whose coordinate vector matches its own in all
positions except position ``p``.

This module provides the bidirectional mapping between flat node ids and
coordinate vectors, plus the neighbourhood/phase-group helpers that the
schedule, router and failure machinery are built on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = [
    "CoordinateSystem",
    "integer_root",
    "is_perfect_power",
]

#: process-wide memo of shared immutable instances, keyed by (n, h); see
#: :meth:`CoordinateSystem.shared`
_shared: Dict[Tuple[int, int], "CoordinateSystem"] = {}


def integer_root(n: int, h: int) -> int:
    """Return ``r`` such that ``r**h == n``, or raise ``ValueError``.

    Uses exact integer arithmetic; no floating point rounding surprises even
    for very large ``n``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if h <= 0:
        raise ValueError(f"h must be positive, got {h}")
    if h == 1:
        return n
    # Newton-style search via round() on the float estimate, then verify an
    # exact window around it.
    approx = round(n ** (1.0 / h))
    for candidate in (approx - 1, approx, approx + 1):
        if candidate > 0 and candidate**h == n:
            return candidate
    raise ValueError(f"{n} is not a perfect {h}-th power")


def is_perfect_power(n: int, h: int) -> bool:
    """Return ``True`` when ``n`` is an exact ``h``-th power of an integer."""
    try:
        integer_root(n, h)
    except ValueError:
        return False
    return True


class CoordinateSystem:
    """Mixed-radix (uniform radix ``r``) addressing for an ``N = r**h`` network.

    Node ids are integers ``0 .. N-1``.  The coordinate vector of node ``x``
    is its base-``r`` representation, *most significant digit first*:
    coordinate ``0`` is the highest-order digit.  Phase ``p`` of the schedule
    cycles coordinate ``p``.

    The class is immutable and safe to share between nodes and threads.
    """

    __slots__ = ("h", "r", "n", "_weights")

    def __init__(self, n: int, h: int):
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        self.h = h
        self.r = integer_root(n, h)
        if self.r < 2:
            raise ValueError(
                f"radix must be >= 2 (need at least 2 nodes per phase group); "
                f"got N={n}, h={h} -> r={self.r}"
            )
        self.n = n
        # _weights[p] is the positional weight of coordinate p.
        self._weights = tuple(self.r ** (h - 1 - p) for p in range(h))

    @classmethod
    def shared(cls, n: int, h: int) -> "CoordinateSystem":
        """The process-wide shared instance for ``(n, h)``.

        The class is immutable, so every engine in a sweep can share one
        table per network size instead of rebuilding it; pre-warming the
        memo in a sweep parent before forking lets worker processes share
        the pages copy-on-write.  Raises ``ValueError`` exactly like the
        constructor for infeasible ``(n, h)``.
        """
        instance = _shared.get((n, h))
        if instance is None:
            instance = _shared.setdefault((n, h), cls(n, h))
        return instance

    # ------------------------------------------------------------------ #
    # basic conversions

    def coords(self, node: int) -> Tuple[int, ...]:
        """Return the coordinate vector of ``node``."""
        if not 0 <= node < self.n:
            raise ValueError(f"node id {node} out of range [0, {self.n})")
        out: List[int] = []
        r = self.r
        for w in self._weights:
            out.append((node // w) % r)
        return tuple(out)

    def node_id(self, coords: Sequence[int]) -> int:
        """Return the flat node id of ``coords``."""
        if len(coords) != self.h:
            raise ValueError(f"expected {self.h} coordinates, got {len(coords)}")
        total = 0
        for c, w in zip(coords, self._weights):
            if not 0 <= c < self.r:
                raise ValueError(f"coordinate {c} out of range [0, {self.r})")
            total += c * w
        return total

    def coordinate(self, node: int, p: int) -> int:
        """Return coordinate ``p`` of ``node`` without building the full tuple."""
        return (node // self._weights[p]) % self.r

    def with_coordinate(self, node: int, p: int, value: int) -> int:
        """Return the node id equal to ``node`` but with coordinate ``p`` set."""
        if not 0 <= value < self.r:
            raise ValueError(f"coordinate value {value} out of range [0, {self.r})")
        w = self._weights[p]
        old = (node // w) % self.r
        return node + (value - old) * w

    # ------------------------------------------------------------------ #
    # neighbourhood structure

    def phase_neighbors(self, node: int, p: int) -> List[int]:
        """All nodes matching ``node`` in every coordinate except ``p``.

        These are exactly the nodes ``node`` connects to over the course of
        phase ``p`` (``r - 1`` of them).
        """
        me = self.coordinate(node, p)
        w = self._weights[p]
        base = node - me * w
        return [base + v * w for v in range(self.r) if v != me]

    def phase_group(self, node: int, p: int) -> List[int]:
        """The full round-robin group of ``node`` in phase ``p`` (includes it)."""
        me = self.coordinate(node, p)
        w = self._weights[p]
        base = node - me * w
        return [base + v * w for v in range(self.r)]

    def all_neighbors(self, node: int) -> List[int]:
        """Every node reachable from ``node`` in a single hop (all phases)."""
        out: List[int] = []
        for p in range(self.h):
            out.extend(self.phase_neighbors(node, p))
        return out

    def neighbor_at_offset(self, node: int, p: int, k: int) -> int:
        """The phase-``p`` neighbour whose coordinate ``p`` is ``own + k (mod r)``.

        ``k`` must be in ``1 .. r-1``; offset 0 would be the node itself.
        """
        if not 1 <= k < self.r:
            raise ValueError(f"offset {k} out of range [1, {self.r})")
        me = self.coordinate(node, p)
        return self.with_coordinate(node, p, (me + k) % self.r)

    def neighbor_table(self, node: int) -> Tuple[int, ...]:
        """Flat neighbour lookup table for ``node``, all phases at once.

        Entry ``p * (r - 1) + (k - 1)`` is the phase-``p`` neighbour at
        round-robin offset ``k`` — the layout the per-node send queues use,
        so ``table[link_index]`` resolves a link's peer in one index.
        """
        out: List[int] = []
        for p in range(self.h):
            for k in range(1, self.r):
                out.append(self.neighbor_at_offset(node, p, k))
        return tuple(out)

    def offset_to(self, node: int, p: int, other: int) -> int:
        """Inverse of :meth:`neighbor_at_offset` — offset from node to other.

        ``other`` must be a phase-``p`` neighbour of ``node``.
        """
        mine = self.coordinate(node, p)
        theirs = self.coordinate(other, p)
        k = (theirs - mine) % self.r
        if k == 0 or self.with_coordinate(node, p, theirs) != other:
            raise ValueError(
                f"{other} is not a phase-{p} neighbour of {node}"
            )
        return k

    def mismatched_phases(self, node: int, dest: int) -> List[int]:
        """Phases in which ``node`` and ``dest`` differ (direct hops needed)."""
        return [
            p for p in range(self.h)
            if self.coordinate(node, p) != self.coordinate(dest, p)
        ]

    def distance(self, node: int, dest: int) -> int:
        """Hamming distance in coordinate space == minimum direct-hop count."""
        return len(self.mismatched_phases(node, dest))

    # ------------------------------------------------------------------ #
    # iteration / dunder helpers

    def nodes(self) -> Iterator[int]:
        """Iterate all node ids."""
        return iter(range(self.n))

    def label(self, node: int) -> str:
        """Human-readable letter label in the style of the paper (AA, BA, ...)."""
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        if self.r > len(letters):
            return ",".join(str(c) for c in self.coords(node))
        return "".join(letters[c] for c in self.coords(node))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"CoordinateSystem(n={self.n}, h={self.h}, r={self.r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CoordinateSystem)
            and other.n == self.n
            and other.h == self.h
        )

    def __hash__(self) -> int:
        return hash((self.n, self.h))
