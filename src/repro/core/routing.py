"""Shale's Valiant-load-balanced routing scheme (paper Section 3.1).

Paths consist of two *semi-paths*, each spanning up to ``h`` adjacent phases:

* **Spraying semi-path** — ``h`` hops over ``h`` consecutive phases.  The
  first hop goes to the first available neighbour (in whatever phase the cell
  is admitted); each of the following ``h - 1`` hops takes a uniformly random
  neighbour in the next phase.  The net effect is to randomise every
  coordinate, placing the cell at a uniformly random intermediate node.

* **Direct semi-path** — up to ``h`` hops over the following ``h`` phases.
  During phase ``p``, the cell hops to the neighbour matching the
  destination's coordinate ``p`` (skipping the phase if the coordinate
  already matches).

The router is deliberately stateless: it computes next hops from the cell's
``(current node, destination, sprays remaining, current phase)`` alone, which
mirrors how the hardware prototype computes hops in its RX pipeline.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .coordinates import CoordinateSystem
from .schedule import Schedule
from .strategies import RoutingStrategy, register_routing

__all__ = ["Router", "SemiObliviousRouter", "Path", "direct_semi_path",
           "spray_semi_path_lengths"]


Path = List[int]


@register_routing("vlb")
class Router(RoutingStrategy):
    """Computes Shale next hops and full paths.

    The reference :class:`~repro.core.strategies.RoutingStrategy`: every cell
    sprays the full ``h - 1`` further hops after its admission hop, landing at
    a uniformly random intermediate before the direct semi-path — Valiant's
    classic 2x-cost scheme.

    Args:
        schedule: the connection schedule being routed over.
        rng: random source used for spraying decisions.  Passing an explicit
            ``random.Random`` keeps simulations reproducible.
    """

    __slots__ = ("schedule", "coords", "h", "r", "rng")

    def __init__(self, schedule: Schedule, rng: Optional[random.Random] = None):
        self.schedule = schedule
        self.coords = schedule.coords
        self.h = schedule.h
        self.r = schedule.r
        self.rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------ #
    # admission decision (consulted by the simulator's TX pipeline)

    def admission_sprays(self, src: int, dst: int, phase: int,
                         neighbor: int) -> int:
        """VLB always takes the full spraying semi-path.

        The admission hop is the first spray; ``h - 1`` further spraying
        hops follow before the direct semi-path.
        """
        return self.h - 1

    # ------------------------------------------------------------------ #
    # next hop computation

    def spray_options(self, node: int, phase: int) -> List[int]:
        """All legal next hops for a spraying hop at ``node`` in ``phase``."""
        return self.coords.phase_neighbors(node, phase)

    def spray_hop(self, node: int, phase: int) -> int:
        """A uniformly random spraying hop at ``node`` in ``phase``."""
        options = self.coords.phase_neighbors(node, phase)
        return options[self.rng.randrange(len(options))]

    def direct_hop(self, node: int, dst: int, phase: int) -> Optional[int]:
        """The direct hop at ``node`` towards ``dst`` in ``phase``.

        Returns ``None`` if the coordinate already matches (phase skipped).
        """
        want = self.coords.coordinate(dst, phase)
        if self.coords.coordinate(node, phase) == want:
            return None
        return self.coords.with_coordinate(node, phase, want)

    def next_direct_phase(self, node: int, dst: int, after_phase: int) -> Optional[int]:
        """First phase ``>= after_phase`` (cyclically) needing a direct hop.

        Scans at most ``h`` phases starting at ``after_phase``.  Returns
        ``None`` when ``node == dst``.
        """
        for i in range(self.h):
            p = (after_phase + i) % self.h
            if self.coords.coordinate(node, p) != self.coords.coordinate(dst, p):
                return p
        return None

    # ------------------------------------------------------------------ #
    # full path construction (used for analysis, tests and the ideal
    # baselines; the simulator itself routes hop by hop)

    def sample_path(self, src: int, dst: int, start_phase: int = 0) -> Path:
        """Sample a complete VLB path from ``src`` to ``dst``.

        The path starts with a spraying hop in ``start_phase`` and follows
        the full spraying + direct semi-path structure.  The returned list
        includes both endpoints.
        """
        if src == dst:
            return [src]
        path = [src]
        node = src
        # spraying semi-path: h hops in consecutive phases
        for i in range(self.h):
            phase = (start_phase + i) % self.h
            node = self.spray_hop(node, phase)
            path.append(node)
        # direct semi-path: up to h hops in the following phases
        for i in range(self.h):
            phase = (start_phase + self.h + i) % self.h
            nxt = self.direct_hop(node, dst, phase)
            if nxt is not None:
                node = nxt
                path.append(node)
        if node != dst:
            raise AssertionError(
                f"routing invariant violated: ended at {node}, wanted {dst}"
            )
        return path

    def path_via(self, src: int, intermediate: int, dst: int, start_phase: int = 0) -> Path:
        """The deterministic path through a chosen intermediate node.

        Used by analysis code to enumerate the VLB path family: the spraying
        semi-path is pinned so that it lands on ``intermediate``, then the
        direct semi-path completes the route.
        """
        coords = self.coords
        path = [src]
        node = src
        for i in range(self.h):
            phase = (start_phase + i) % self.h
            want = coords.coordinate(intermediate, phase)
            nxt = coords.with_coordinate(node, phase, want)
            if nxt != node:
                node = nxt
            else:
                # A same-coordinate "hop" still consumes the phase; EBS sends
                # the cell to itself conceptually, which in a real network is
                # simply holding the cell.  We record only real moves.
                pass
            path.append(node)
        for i in range(self.h):
            phase = (start_phase + self.h + i) % self.h
            nxt = self.direct_hop(node, dst, phase)
            if nxt is not None:
                node = nxt
                path.append(node)
        if node != dst:
            raise AssertionError("path_via failed to reach destination")
        return path

    def max_path_hops(self) -> int:
        """Upper bound on hops per path: ``2h``."""
        return 2 * self.h


@register_routing("semi_oblivious")
class SemiObliviousRouter(Router):
    """Direct-first / spray-fallback semi-oblivious routing.

    In the spirit of *Breaking the VLB Barrier* (arXiv:2308.14837): VLB's
    2x bandwidth tax pays for worst-case obliviousness, but on benign
    (e.g. permutation) traffic most of the spraying is wasted.  This router
    keeps the admission hop — the cell still rides whatever slot it is
    admitted in, so injection is never throttled below VLB's — but decides
    the rest of the path by whether that hop already made progress:

    * **direct-first** — if the slot's neighbour corrects the current
      phase's coordinate toward the destination, the admission hop *is* a
      direct hop: zero further sprays, and the cell follows the direct
      semi-path the rest of the way (``<= h`` hops total, recovering toward
      1x cost on permutation traffic);
    * **spray-fallback** — otherwise the admission hop counts as the first
      of ``spray_hops`` spraying hops (default 1, i.e. no further sprays),
      after which the direct semi-path completes the route
      (``<= h + spray_hops`` hops).

    The decision is a pure function of ``(src, dst, phase, neighbor)`` —
    no extra randomness — so simulations stay byte-reproducible and the
    hardware RX pipeline could compute it combinationally.  Worst-case
    spreading is weaker than VLB's full ``h``-hop spray; the conformance
    suite holds it to the same delivery/determinism contract and fig01's
    cross-design matrix quantifies the tradeoff.
    """

    __slots__ = ("spray_hops",)

    def __init__(self, schedule: Schedule, rng: Optional[random.Random] = None,
                 spray_hops: int = 1):
        super().__init__(schedule, rng=rng)
        if spray_hops < 1:
            raise ValueError(
                f"spray_hops must be >= 1 (the admission hop), got {spray_hops}"
            )
        self.spray_hops = spray_hops

    def admission_sprays(self, src: int, dst: int, phase: int,
                         neighbor: int) -> int:
        """Zero further sprays when the admission hop corrects a coordinate."""
        coords = self.coords
        if coords.coordinate(neighbor, phase) == coords.coordinate(dst, phase):
            return 0
        return self.spray_hops - 1

    def sample_path(self, src: int, dst: int, start_phase: int = 0) -> Path:
        """Sample a complete semi-oblivious path from ``src`` to ``dst``.

        The admission hop goes to a uniformly random phase-neighbour in
        ``start_phase`` (standing in for whichever round-robin offset the
        admitting slot happens to be); the rest of the path follows the
        admission decision exactly as the simulator would.
        """
        if src == dst:
            return [src]
        path = [src]
        node = self.spray_hop(src, start_phase)
        path.append(node)
        sprays = self.admission_sprays(src, dst, start_phase, node)
        phase = start_phase + 1
        for _ in range(sprays):
            node = self.spray_hop(node, phase % self.h)
            path.append(node)
            phase += 1
        for i in range(self.h):
            nxt = self.direct_hop(node, dst, (phase + i) % self.h)
            if nxt is not None:
                node = nxt
                path.append(node)
        if node != dst:
            raise AssertionError(
                f"routing invariant violated: ended at {node}, wanted {dst}"
            )
        return path

    def max_path_hops(self) -> int:
        """Upper bound on hops per path: ``h + spray_hops``."""
        return self.h + self.spray_hops


def direct_semi_path(coords: CoordinateSystem, node: int, dst: int,
                     start_phase: int = 0) -> Path:
    """The deterministic direct semi-path from ``node`` to ``dst``.

    Correcting coordinates phase by phase starting from ``start_phase``.
    Because each hop fixes one coordinate, these paths form a tree rooted at
    ``dst`` (paper Section 3.4 uses this for invalidation tokens).
    """
    path = [node]
    cur = node
    for i in range(coords.h):
        p = (start_phase + i) % coords.h
        want = coords.coordinate(dst, p)
        if coords.coordinate(cur, p) != want:
            cur = coords.with_coordinate(cur, p, want)
            path.append(cur)
    if cur != dst:
        raise AssertionError("direct semi-path did not terminate at destination")
    return path


def spray_semi_path_lengths(h: int) -> Tuple[int, int]:
    """(spraying hops, max direct hops) per path: ``(h, h)``."""
    return h, h
