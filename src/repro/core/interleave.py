"""Schedule interleaving for multiple traffic classes (paper Section 3.2.2).

Interleaving combines several sub-schedules — typically a low-latency
high-``h`` schedule and a high-throughput low-``h`` schedule — into a single
master schedule by partitioning the timeslots between them.  Each
sub-schedule is used unmodified: a cell is routed entirely on one
sub-schedule, so each retains its throughput and latency properties, merely
dilated by the inverse of its timeslot share.

The slot partition is deterministic and even (a Bresenham-style spread), so
a sub-schedule allocated a fraction ``s`` of slots sees its slots spaced as
uniformly as possible; each sub-schedule's own timeslot counter advances
only on slots it owns.

Traffic classes are assigned to sub-schedules by a flow-size cutoff (short
flows ride the low-latency sub-schedule).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .schedule import Schedule

__all__ = ["SubScheduleSpec", "InterleavedSchedule", "two_class_interleave"]


class SubScheduleSpec:
    """One member of an interleaved schedule.

    Attributes:
        schedule: the sub-schedule itself.
        share: fraction of master timeslots allocated (0 < share <= 1).
        name: label used in reports (e.g. ``"h=4"``).
        max_flow_size: flows of at most this many cells are routed on this
            sub-schedule (``None`` means no upper bound).  Classification
            picks the first spec, in declaration order, whose bound admits
            the flow.
    """

    __slots__ = ("schedule", "share", "name", "max_flow_size")

    def __init__(
        self,
        schedule: Schedule,
        share: float,
        name: str = "",
        max_flow_size: Optional[int] = None,
    ):
        if not 0.0 < share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {share}")
        self.schedule = schedule
        self.share = share
        self.name = name or f"h={schedule.h}"
        self.max_flow_size = max_flow_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"SubScheduleSpec({self.name}, share={self.share})"


class InterleavedSchedule:
    """A master schedule built from interleaved sub-schedules.

    The master schedule repeats a fixed *pattern* of sub-schedule ids whose
    length is ``resolution``; within the pattern, slots are distributed to
    each sub-schedule as evenly as possible in proportion to its share
    (largest-remainder apportionment followed by a Bresenham spread).

    For any master timeslot ``t`` the mapping yields ``(spec index,
    sub-timeslot)`` where the sub-timeslot is the count of slots previously
    owned by that sub-schedule — i.e. the sub-schedule's own clock.
    """

    def __init__(self, specs: Sequence[SubScheduleSpec], resolution: int = 100):
        if not specs:
            raise ValueError("need at least one sub-schedule")
        total = sum(s.share for s in specs)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"shares must sum to 1.0, got {total}")
        if resolution < len(specs):
            raise ValueError("resolution smaller than the number of sub-schedules")
        self.specs = list(specs)
        self.resolution = resolution
        self.pattern = self._build_pattern(resolution)
        # counts[i] = number of slots owned by spec i within one pattern
        self.pattern_counts = [self.pattern.count(i) for i in range(len(specs))]
        # prefix[i][j] = slots owned by spec i among pattern[0:j]
        self._prefix: List[List[int]] = []
        for i in range(len(specs)):
            acc, pref = 0, [0]
            for slot_owner in self.pattern:
                if slot_owner == i:
                    acc += 1
                pref.append(acc)
            self._prefix.append(pref)

    def _build_pattern(self, resolution: int) -> List[int]:
        shares = [s.share for s in self.specs]
        # largest-remainder apportionment of `resolution` slots
        ideal = [sh * resolution for sh in shares]
        counts = [int(x) for x in ideal]
        remainders = sorted(
            range(len(shares)), key=lambda i: ideal[i] - counts[i], reverse=True
        )
        shortfall = resolution - sum(counts)
        for i in remainders[:shortfall]:
            counts[i] += 1
        for i, c in enumerate(counts):
            if c == 0:
                raise ValueError(
                    f"sub-schedule {self.specs[i].name} received zero slots at "
                    f"resolution {resolution}; raise the resolution"
                )
        # Bresenham spread: walk the slots, at each step emit the spec whose
        # emitted/(expected) ratio lags the most.
        pattern: List[int] = []
        emitted = [0] * len(shares)
        for slot in range(1, resolution + 1):
            best, best_lag = 0, float("-inf")
            for i, c in enumerate(counts):
                lag = slot * c / resolution - emitted[i]
                if lag > best_lag:
                    best, best_lag = i, lag
            pattern.append(best)
            emitted[best] += 1
        return pattern

    # ------------------------------------------------------------------ #

    def owner(self, t: int) -> int:
        """Index of the sub-schedule that owns master timeslot ``t``."""
        return self.pattern[t % self.resolution]

    def sub_timeslot(self, t: int) -> Tuple[int, int]:
        """Map master timeslot ``t`` to ``(spec index, sub-timeslot)``."""
        cycle, pos = divmod(t, self.resolution)
        i = self.pattern[pos]
        return i, cycle * self.pattern_counts[i] + self._prefix[i][pos]

    def classify_flow(self, size_cells: int) -> int:
        """Spec index a flow of ``size_cells`` cells should be routed on."""
        for i, spec in enumerate(self.specs):
            if spec.max_flow_size is None or size_cells <= spec.max_flow_size:
                return i
        return len(self.specs) - 1

    def effective_epoch_length(self, i: int) -> float:
        """Master timeslots per iteration of sub-schedule ``i``.

        Dilation by the inverse share: a sub-schedule with share ``s`` takes
        ``E / s`` master slots per epoch (paper: "a sub-schedule allocated
        half of the timeslots will take twice as long").
        """
        spec = self.specs[i]
        return spec.schedule.epoch_length * self.resolution / self.pattern_counts[i]

    def effective_throughput(self, i: int) -> float:
        """Throughput guarantee of sub-schedule ``i`` after dilution."""
        spec = self.specs[i]
        return spec.schedule.throughput_guarantee() * spec.share

    def total_throughput(self) -> float:
        """Sum of the guaranteed throughputs of all sub-schedules."""
        return sum(self.effective_throughput(i) for i in range(len(self.specs)))

    def max_intrinsic_latency(self, i: int) -> float:
        """Intrinsic latency of sub-schedule ``i`` in master timeslots."""
        return 2.0 * self.effective_epoch_length(i)


def two_class_interleave(
    n: int,
    h_bulk: int,
    h_latency: int,
    s: float,
    cutoff_cells: Optional[int] = None,
    resolution: int = 100,
    schedule: str = "ebs",
) -> InterleavedSchedule:
    """Convenience constructor for the paper's two-class configurations.

    Args:
        n: network size (must be feasible for both tunings).
        h_bulk: the high-throughput (low ``h``) sub-schedule's parameter.
        h_latency: the low-latency (high ``h``) sub-schedule's parameter.
        s: fraction of timeslots given to the low-latency sub-schedule
            (the paper's ``s``; 0 and 1 collapse to single schedules).
        cutoff_cells: flows at most this long use the low-latency schedule.
        resolution: slot-pattern granularity.
        schedule: registered connection-schedule strategy to interleave
            (both classes use the same design, default EBS).

    Returns:
        An :class:`InterleavedSchedule` whose spec 0 is the latency class
        (when ``s > 0``) and whose last spec is the bulk class.
    """
    from .strategies import shared_schedule

    if not 0.0 <= s <= 1.0:
        raise ValueError(f"s must be within [0, 1], got {s}")
    specs: List[SubScheduleSpec] = []
    if s > 0.0:
        specs.append(
            SubScheduleSpec(
                shared_schedule(schedule, n, h_latency),
                share=s,
                name=f"h={h_latency} (latency)",
                max_flow_size=cutoff_cells,
            )
        )
    if s < 1.0:
        specs.append(
            SubScheduleSpec(
                shared_schedule(schedule, n, h_bulk),
                share=1.0 - s,
                name=f"h={h_bulk} (bulk)",
                max_flow_size=None,
            )
        )
    return InterleavedSchedule(specs, resolution=resolution)
