"""The Shale / EBS connection schedule.

A Shale schedule with parameter ``h`` on ``N = r**h`` nodes consists of ``h``
*phases*, each a round-robin among the ``r`` nodes of every phase group.  One
full iteration of the schedule — all ``h`` phases of ``r - 1`` timeslots each
— is an *epoch* of ``E = h * (r - 1)`` timeslots.

During phase ``p``, timeslot-within-phase ``k`` (``1 <= k <= r-1``), every
node ``x`` *sends* to the node whose coordinate ``p`` equals
``x_p + k (mod r)`` and simultaneously *receives* from the node whose
coordinate ``p`` equals ``x_p - k (mod r)``.  Every (sender, receiver) pair in
a phase group is therefore connected exactly once per epoch, and in every
timeslot each node sends exactly one cell and receives exactly one cell.

With ``h = 1`` this degenerates to the Single Round-Robin Design (SRRD) used
by RotorNet, Shoal and Sirius (paper Fig. 2); Fig. 3 of the paper shows the
``h = 2``, ``N = 9`` instance.
"""

from __future__ import annotations

from typing import List, Tuple

from .coordinates import CoordinateSystem, integer_root
from .strategies import ScheduleStrategy, register_schedule, shared_schedule

__all__ = ["Schedule", "SrrdSchedule", "SlotInfo", "srrd_schedule"]


class SlotInfo:
    """Decoded position of a timeslot within the schedule.

    Attributes:
        epoch: index of the epoch containing the slot.
        phase: phase index in ``0 .. h-1``.
        offset: round-robin offset in ``1 .. r-1``.
        slot_in_epoch: flat index within the epoch, ``0 .. E-1``.
    """

    __slots__ = ("epoch", "phase", "offset", "slot_in_epoch")

    def __init__(self, epoch: int, phase: int, offset: int, slot_in_epoch: int):
        self.epoch = epoch
        self.phase = phase
        self.offset = offset
        self.slot_in_epoch = slot_in_epoch

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SlotInfo(epoch={self.epoch}, phase={self.phase}, "
            f"offset={self.offset}, slot_in_epoch={self.slot_in_epoch})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SlotInfo)
            and self.epoch == other.epoch
            and self.phase == other.phase
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((self.epoch, self.phase, self.offset))


@register_schedule("ebs")
class Schedule(ScheduleStrategy):
    """The oblivious EBS connection schedule for an ``N = r**h`` network.

    The reference :class:`~repro.core.strategies.ScheduleStrategy`: every
    other connection-schedule design registers against the same contract
    and is held to it by ``tests/test_strategy_conformance.py``.
    """

    __slots__ = ("coords", "h", "r", "n", "phase_length", "epoch_length",
                 "phase_table", "offset_table")

    def __init__(self, coords: CoordinateSystem):
        self.coords = coords
        self.h = coords.h
        self.r = coords.r
        self.n = coords.n
        #: timeslots per phase (one round-robin, excluding self-connection)
        self.phase_length = self.r - 1
        #: timeslots per epoch
        self.epoch_length = self.h * self.phase_length
        #: slot-in-epoch -> phase index (hot-path lookup table)
        self.phase_table = tuple(
            s // self.phase_length for s in range(self.epoch_length)
        )
        #: slot-in-epoch -> round-robin offset (hot-path lookup table)
        self.offset_table = tuple(
            s % self.phase_length + 1 for s in range(self.epoch_length)
        )

    @classmethod
    def for_network(cls, n: int, h: int) -> "Schedule":
        """Build the schedule for ``n`` nodes with tuning parameter ``h``."""
        return cls(CoordinateSystem(n, h))

    @classmethod
    def shared(cls, n: int, h: int) -> "Schedule":
        """The process-wide shared schedule for ``(n, h)``.

        Schedules (and their coordinate systems) are immutable, so every
        engine of a sweep cell shares one instance per network size instead
        of rebuilding the phase/offset tables; ``Engine.__init__`` consults
        this memo, and :func:`repro.sim.parallel.sweep` pre-warms it before
        forking so workers share the parent's pages.  The memo lives in
        :mod:`repro.core.strategies`, keyed by (strategy name, n, h), so
        every registered design shares the same mechanism.
        """
        return shared_schedule(cls.strategy_name, n, h)

    # ------------------------------------------------------------------ #
    # strategy registration hooks (see repro.core.strategies)

    @classmethod
    def validate_params(cls, n: int, h: int) -> None:
        """EBS feasibility: ``n = r**h`` for integer ``r >= 2``."""
        try:
            r = integer_root(n, h)
        except ValueError as exc:
            raise ValueError(
                f"schedule {cls.strategy_name!r}: infeasible (n={n}, h={h}): "
                f"{exc}"
            ) from None
        if r < 2:
            raise ValueError(
                f"schedule {cls.strategy_name!r}: infeasible (n={n}, h={h}): "
                f"radix must be >= 2, got r={r}"
            )

    @classmethod
    def build(cls, n: int, h: int) -> "Schedule":
        return cls(CoordinateSystem.shared(n, h))

    @classmethod
    def conformance_cases(cls) -> List[Tuple[int, int]]:
        return [(9, 2), (16, 2), (8, 3)]

    # ------------------------------------------------------------------ #
    # timeslot decoding

    def slot_info(self, t: int) -> SlotInfo:
        """Decode absolute timeslot ``t`` into (epoch, phase, offset)."""
        if t < 0:
            raise ValueError(f"timeslot must be non-negative, got {t}")
        epoch, slot_in_epoch = divmod(t, self.epoch_length)
        phase, within = divmod(slot_in_epoch, self.phase_length)
        return SlotInfo(epoch, phase, within + 1, slot_in_epoch)

    def phase_of(self, t: int) -> int:
        """Phase index of absolute timeslot ``t`` (fast path)."""
        return self.phase_table[t % self.epoch_length]

    def offset_of(self, t: int) -> int:
        """Round-robin offset of absolute timeslot ``t`` (fast path)."""
        return self.offset_table[t % self.epoch_length]

    # ------------------------------------------------------------------ #
    # connection functions

    def send_target(self, node: int, t: int) -> int:
        """Node that ``node`` sends to during timeslot ``t``."""
        info = self.slot_info(t)
        return self.coords.neighbor_at_offset(node, info.phase, info.offset)

    def recv_source(self, node: int, t: int) -> int:
        """Node that ``node`` receives from during timeslot ``t``."""
        info = self.slot_info(t)
        return self.coords.neighbor_at_offset(
            node, info.phase, self.r - info.offset
        )

    def connection_matrix(self, t: int) -> List[int]:
        """``matrix[x]`` is the node that ``x`` sends to at timeslot ``t``.

        The result is always a permutation of the node ids (every node sends
        to and receives from exactly one peer per slot).
        """
        return [self.send_target(x, t) for x in range(self.n)]

    # ------------------------------------------------------------------ #
    # scheduling queries used by the router

    def slot_for(self, src: int, dst: int) -> Tuple[int, int]:
        """Return ``(phase, offset)`` at which ``src`` sends to ``dst``.

        ``dst`` must be a one-hop neighbour of ``src``.
        """
        coords = self.coords
        for p in range(self.h):
            if coords.coordinate(src, p) != coords.coordinate(dst, p):
                k = coords.offset_to(src, p, dst)  # raises if >1 mismatch
                return p, k
        raise ValueError(f"{src} and {dst} are the same node")

    def next_send_slot(self, src: int, dst: int, after: int) -> int:
        """First absolute timeslot ``>= after`` at which ``src`` sends to ``dst``."""
        phase, offset = self.slot_for(src, dst)
        slot_in_epoch = phase * self.phase_length + (offset - 1)
        e = self.epoch_length
        base = (after // e) * e + slot_in_epoch
        if base < after:
            base += e
        return base

    def next_phase_start(self, phase: int, after: int) -> int:
        """First timeslot ``>= after`` at which ``phase`` begins."""
        slot_in_epoch = phase * self.phase_length
        e = self.epoch_length
        base = (after // e) * e + slot_in_epoch
        if base < after:
            base += e
        return base

    # ------------------------------------------------------------------ #
    # theory helpers (paper Section 3.1)

    def max_intrinsic_latency(self) -> int:
        """Worst-case intrinsic latency: 2 epochs == ``2h(r-1)`` timeslots."""
        return 2 * self.epoch_length

    def throughput_guarantee(self) -> float:
        """Guaranteed worst-case throughput as a fraction of line rate: 1/(2h)."""
        return 1.0 / (2 * self.h)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"{type(self).__name__}(n={self.n}, h={self.h}, r={self.r}, "
                f"E={self.epoch_length})")


@register_schedule("srrd")
class SrrdSchedule(Schedule):
    """The Single Round-Robin Design schedule (RotorNet/Shoal/Sirius).

    SRRD is the ``h = 1`` member of the EBS family (paper Fig. 2): one
    round-robin among all ``n`` nodes, epoch length ``n - 1``.  As a
    first-class registered strategy it is feasible for *any* ``n >= 2``
    (every integer is a perfect first power), selectable via
    ``SimConfig(schedule="srrd", h=1)``, and held to the same conformance
    contract as every other design.
    """

    __slots__ = ()

    @classmethod
    def validate_params(cls, n: int, h: int) -> None:
        """SRRD is the single round-robin: exactly one phase over all nodes."""
        if h != 1:
            raise ValueError(
                f"schedule 'srrd': infeasible (n={n}, h={h}): the single "
                f"round-robin design has exactly one phase; set h=1"
            )
        if n < 2:
            raise ValueError(
                f"schedule 'srrd': infeasible (n={n}, h={h}): need at "
                f"least 2 nodes"
            )

    @classmethod
    def conformance_cases(cls) -> List[Tuple[int, int]]:
        # deliberately includes a non-perfect-power n: SRRD has no radix
        # constraint beyond n >= 2
        return [(5, 1), (9, 1)]


def srrd_schedule(n: int) -> Schedule:
    """The Single Round-Robin Design schedule (RotorNet/Shoal/Sirius, h=1)."""
    return SrrdSchedule.for_network(n, 1)
