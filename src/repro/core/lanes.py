"""Multi-lane staggered scheduling (paper Section 5).

A 400 Gbps Shale interface is built from eight 50 Gbps lanes.  Rather than
striping each cell across lanes, Shale runs the *same* connection schedule on
every lane, staggered in time: lane ``l`` starts its slots ``l / L`` of a
slot-time later, so some lane starts a new timeslot every ``slot / L`` —
5.632 ns in the paper's tuning — and each lane connects to a *different*
neighbour at any instant (the lanes are spread across the round-robin).

For the simulator this is a timing refinement, not a routing change: the
packet engine treats one lane's schedule as "the" schedule and the timing
model converts slots to wall-clock.  This module makes the lane structure
explicit for analyses that need it — per-lane connection queries, the
micro-slot clock, and aggregate-bandwidth accounting — and verifies the
property the design rests on: at every instant the lanes' active
connections are pairwise distinct.
"""

from __future__ import annotations

from typing import List, Tuple

from .schedule import Schedule

__all__ = ["LaneSchedule"]


class LaneSchedule:
    """The lane-staggered view of a Shale schedule.

    Args:
        schedule: the per-lane connection schedule.
        lanes: number of parallel lanes (8 in the paper's 400G interface).

    Lane ``l`` executes ``schedule`` with its slot index advanced by ``l``
    slots relative to lane 0 (integral-slot staggering: at any wall-clock
    instant the lanes occupy ``lanes`` *consecutive* schedule slots, so they
    connect to ``lanes`` consecutive round-robin offsets).
    """

    def __init__(self, schedule: Schedule, lanes: int = 8):
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        if lanes > schedule.epoch_length:
            raise ValueError(
                f"{lanes} lanes exceed the epoch length "
                f"{schedule.epoch_length}; lanes would duplicate connections"
            )
        self.schedule = schedule
        self.lanes = lanes

    # ------------------------------------------------------------------ #
    # micro-slot clock

    def micro_slots_per_slot(self) -> int:
        """New (lane, slot) starts per base slot-time: one per lane."""
        return self.lanes

    def micro_to_lane_slot(self, micro: int) -> Tuple[int, int]:
        """Map micro-slot index to ``(lane, that lane's slot index)``.

        Micro-slot ``m`` is the start of a slot on lane ``m % lanes``; that
        lane is then ``m // lanes`` slots into its own schedule.
        """
        if micro < 0:
            raise ValueError("micro-slot must be non-negative")
        lane = micro % self.lanes
        return lane, micro // self.lanes

    def lane_slot_of(self, lane: int, t: int) -> int:
        """Lane ``lane``'s schedule slot index at base slot ``t``."""
        if not 0 <= lane < self.lanes:
            raise ValueError(f"lane {lane} out of range")
        return t + lane

    # ------------------------------------------------------------------ #
    # connection queries

    def send_target(self, node: int, lane: int, t: int) -> int:
        """Node ``node``'s peer on ``lane`` during base slot ``t``."""
        return self.schedule.send_target(node, self.lane_slot_of(lane, t))

    def active_peers(self, node: int, t: int) -> List[int]:
        """All ``lanes`` peers ``node`` is talking to during base slot ``t``."""
        return [self.send_target(node, lane, t) for lane in range(self.lanes)]

    def peers_distinct(self, node: int, t: int) -> bool:
        """Whether the lanes connect to pairwise distinct neighbours.

        True whenever ``lanes <= epoch_length`` (consecutive slots of the
        schedule never repeat a peer within one epoch) — asserted here by
        direct check rather than trusted.
        """
        peers = self.active_peers(node, t)
        return len(set(peers)) == len(peers)

    # ------------------------------------------------------------------ #
    # bandwidth accounting

    def aggregate_cells_per_slot(self) -> int:
        """Cells per node per base slot across all lanes."""
        return self.lanes

    def effective_slot_fraction(self) -> float:
        """Fraction of a base slot between consecutive micro-slot starts."""
        return 1.0 / self.lanes
