"""Buckets and token accounting for hop-by-hop congestion control.

Hop-by-hop (paper Section 3.3.2) assigns every in-flight cell to a *bucket*
``(destination, remaining spraying hops)``.  A cell's eligibility to be sent
is determined by the bucket it *will be assigned at the next hop*; tokens
returned by downstream nodes name that bucket and restore one unit of credit.

This module contains the sender-side credit ledger (:class:`TokenLedger`) and
the small value type for bucket ids.  The ledger implements the token-budget
parameters ``T`` and ``T_F`` of Appendix D: credits are initialised to ``T``
per (neighbour, bucket) pair (``T_F`` for first-hop buckets at the source)
and never exceed that budget.

Deadlock freedom (paper Section 3.3.2, third change) comes from the bucket
partial order: spraying hops strictly decrease the spray index, and direct
hops (index 0) strictly increase the number of matched destination
coordinates, so no credit cycle can form.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

__all__ = ["BucketId", "TokenLedger", "ActiveBucketTracker"]

#: A bucket identifier: (destination node id, remaining spraying hops).
BucketId = Tuple[int, int]


class TokenLedger:
    """Per-node sender-side token credit for hop-by-hop.

    Credit is tracked per ``(neighbour, bucket)`` pair.  The ledger is lazy:
    a pair that has never been charged implicitly holds its full budget,
    which keeps memory proportional to the number of *active* pairs rather
    than ``h * N * neighbours``.

    Args:
        budget: steady-state token budget ``T`` per (neighbour, bucket).
        first_hop_budget: budget ``T_F`` applied to buckets charged for a
            cell's first hop (``charge(..., first_hop=True)``); defaults to
            ``budget``.
    """

    __slots__ = ("budget", "first_hop_budget", "_spent", "_is_first")

    def __init__(self, budget: int = 1, first_hop_budget: int = 0):
        if budget < 1:
            raise ValueError(f"token budget must be >= 1, got {budget}")
        if first_hop_budget < 0:
            raise ValueError("first-hop budget must be >= 0 (0 means 'same as T')")
        self.budget = budget
        self.first_hop_budget = first_hop_budget or budget
        # outstanding (un-returned) tokens per (neighbour, bucket).  Keys are
        # flattened to ``(neighbour, dest, sprays)`` — a flat 3-tuple hashes
        # (and allocates) measurably cheaper than a nested pair on the
        # simulator hot path, which indexes these dicts directly.
        self._spent: Dict[Tuple[int, int, int], int] = {}
        # pairs whose budget is the first-hop budget
        self._is_first: Dict[Tuple[int, int, int], bool] = {}

    def _limit(self, key: Tuple[int, int, int]) -> int:
        return self.first_hop_budget if self._is_first.get(key) else self.budget

    def available(self, neighbor: int, bucket: BucketId,
                  first_hop: bool = False) -> int:
        """Remaining credit for sending ``bucket`` cells via ``neighbor``."""
        key = (neighbor, bucket[0], bucket[1])
        if first_hop and key not in self._spent:
            return self.first_hop_budget
        limit = self.first_hop_budget if (first_hop or self._is_first.get(key)) \
            else self.budget
        return limit - self._spent.get(key, 0)

    def can_send(self, neighbor: int, bucket: BucketId,
                 first_hop: bool = False) -> bool:
        """True when at least one credit remains for (neighbour, bucket)."""
        return self.available(neighbor, bucket, first_hop) > 0

    def charge(self, neighbor: int, bucket: BucketId,
               first_hop: bool = False) -> None:
        """Consume one credit.  Raises ``RuntimeError`` if none remain."""
        key = (neighbor, bucket[0], bucket[1])
        if first_hop:
            self._is_first[key] = True
        limit = self._limit(key) if not first_hop else self.first_hop_budget
        spent = self._spent.get(key, 0)
        if spent >= limit:
            raise RuntimeError(
                f"no token credit for neighbour {neighbor}, bucket {bucket}"
            )
        self._spent[key] = spent + 1

    def credit(self, neighbor: int, bucket: BucketId) -> None:
        """Return one token (from the wire) to (neighbour, bucket)."""
        key = (neighbor, bucket[0], bucket[1])
        spent = self._spent.get(key, 0)
        if spent <= 0:
            # A token for an un-charged pair can only mean protocol confusion;
            # tolerate it (the budget already caps credit) but never go
            # negative, which would inflate the budget.
            return
        if spent == 1:
            del self._spent[key]
            self._is_first.pop(key, None)
        else:
            self._spent[key] = spent - 1

    def reset_neighbor(self, neighbor: int) -> None:
        """Forget every outstanding charge toward ``neighbor``.

        Used by the failure protocol when a link is declared down: the
        tokens owed by the silent neighbour will never return, and without
        this reset the (neighbour, bucket) pairs charged before the failure
        would stay blocked forever once the link re-validates.  Tokens from
        the neighbour that are still in flight are harmless afterwards —
        :meth:`credit` treats a token for an un-charged pair as a no-op.
        """
        stale = [key for key in self._spent if key[0] == neighbor]
        for key in stale:
            del self._spent[key]
            self._is_first.pop(key, None)

    def state_dict(self) -> Dict[str, object]:
        """Outstanding charges as plain data (checkpoint encoding)."""
        return {
            "spent": sorted(self._spent.items()),
            "is_first": sorted(self._is_first.items()),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output *in place*.

        The dicts are mutated rather than replaced because the simulator's
        hot path caches direct references to them.
        """
        self._spent.clear()
        self._spent.update(dict(state["spent"]))
        self._is_first.clear()
        self._is_first.update(dict(state["is_first"]))

    def outstanding(self) -> int:
        """Total tokens currently spent and awaiting return (diagnostic)."""
        return sum(self._spent.values())

    def outstanding_pairs(self) -> int:
        """Number of (neighbour, bucket) pairs with outstanding tokens."""
        return len(self._spent)


class ActiveBucketTracker:
    """Tracks how many buckets are *active* at a node (paper Section 4.2).

    A bucket is active while it has enqueued cells or outstanding tokens.
    The FPGA prototype only allocates storage for ``A`` active buckets; this
    tracker measures the high-water mark of ``A`` needed, which feeds the
    hardware memory model (Fig. 7) and the scalability experiment (Fig. 13).
    """

    __slots__ = ("_refcount", "peak")

    def __init__(self) -> None:
        self._refcount: Dict[BucketId, int] = {}
        self.peak = 0

    def acquire(self, bucket: BucketId) -> None:
        """Record one more cell/token referencing ``bucket``."""
        count = self._refcount.get(bucket, 0) + 1
        self._refcount[bucket] = count
        if count == 1 and len(self._refcount) > self.peak:
            self.peak = len(self._refcount)

    def release(self, bucket: BucketId) -> None:
        """Drop one reference; bucket goes inactive at zero."""
        count = self._refcount.get(bucket, 0)
        if count <= 1:
            self._refcount.pop(bucket, None)
        else:
            self._refcount[bucket] = count - 1

    def state_dict(self) -> Dict[str, object]:
        """Reference counts plus high-water mark (checkpoint encoding)."""
        return {
            "refcount": sorted(self._refcount.items()),
            "peak": self.peak,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output in place (dict is aliased)."""
        self._refcount.clear()
        self._refcount.update(dict(state["refcount"]))
        self.peak = state["peak"]

    @property
    def active(self) -> int:
        """Number of currently active buckets."""
        return len(self._refcount)

    def __len__(self) -> int:
        """Number of currently active buckets (same as :attr:`active`)."""
        return len(self._refcount)

    def active_buckets(self) -> Iterable[BucketId]:
        """Iterate the currently active bucket ids."""
        return self._refcount.keys()
