"""Cell object model.

Shale is a cell-based network: every timeslot each node transmits exactly one
fixed-size cell (256 bytes in the paper's tuning — 12 bytes of header and 244
bytes of payload).  The simulator works with :class:`Cell` objects that carry
the routing and congestion-control state the header encodes, plus simulator
bookkeeping (timestamps) that a real network would not transmit.

``Cell`` deliberately uses ``__slots__`` and plain integer fields: millions of
cells are alive during a large simulation and per-object overhead dominates
memory use.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["Cell", "CELL_SIZE_BYTES", "HEADER_SIZE_BYTES", "PAYLOAD_SIZE_BYTES"]

#: Total size of a cell on the wire, in bytes (paper Section 5).
CELL_SIZE_BYTES = 256
#: Header size, in bytes (paper Appendix C, Fig. 19).
HEADER_SIZE_BYTES = 12
#: Payload carried by each cell.
PAYLOAD_SIZE_BYTES = CELL_SIZE_BYTES - HEADER_SIZE_BYTES


class Cell:
    """A single fixed-size cell in flight or enqueued.

    Attributes:
        src: originating node id.
        dst: final destination node id.
        flow_id: id of the flow the cell belongs to (simulator-side).
        seq: sequence number within the flow.
        sprays_remaining: number of spraying hops still to be taken
            *after the current hop completes* — this is the bucket index the
            cell will be assigned at the next node.
        prev_hop: node the cell was most recently received from (-1 at the
            source, before the first hop).
        created_at: timeslot at which the cell was admitted to the network
            by its source.
        spray_phase: the phase in which the cell's *next* spraying hop must
            occur (meaningful only while ``sprays_remaining > 0`` or the cell
            still awaits its first hop).
        flow_size: total number of cells in the parent flow (used by the
            ``priority`` congestion-control baseline).
        dummy: True for filler cells generated when a node has nothing to
            send; dummies still carry tokens in their headers.
    """

    __slots__ = (
        "src",
        "dst",
        "flow_id",
        "seq",
        "sprays_remaining",
        "prev_hop",
        "created_at",
        "spray_phase",
        "flow_size",
        "dummy",
        "hops",
        "enqueued_at",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        flow_id: int = -1,
        seq: int = 0,
        sprays_remaining: int = 0,
        created_at: int = 0,
        flow_size: int = 1,
    ):
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.seq = seq
        self.sprays_remaining = sprays_remaining
        self.prev_hop = -1
        self.created_at = created_at
        self.spray_phase = -1
        self.flow_size = flow_size
        self.dummy = False
        #: number of hops actually taken so far (simulator statistic)
        self.hops = 0
        #: timeslot at which the cell entered its current queue
        self.enqueued_at = created_at

    @classmethod
    def make_dummy(cls, src: int, dst: int) -> "Cell":
        """A filler cell carrying only header state (tokens)."""
        cell = cls(src, dst)
        cell.dummy = True
        return cell

    def state(self) -> Tuple:
        """All twelve fields as a flat tuple (checkpoint encoding)."""
        return (
            self.src, self.dst, self.flow_id, self.seq,
            self.sprays_remaining, self.prev_hop, self.created_at,
            self.spray_phase, self.flow_size, self.dummy, self.hops,
            self.enqueued_at,
        )

    @classmethod
    def from_state(cls, state: Tuple) -> "Cell":
        """Rebuild a cell from :meth:`state` without re-running ``__init__``."""
        cell = cls.__new__(cls)
        (cell.src, cell.dst, cell.flow_id, cell.seq,
         cell.sprays_remaining, cell.prev_hop, cell.created_at,
         cell.spray_phase, cell.flow_size, cell.dummy, cell.hops,
         cell.enqueued_at) = state
        return cell

    def bucket(self) -> Tuple[int, int]:
        """The (destination, remaining-sprays) bucket this cell occupies."""
        return (self.dst, self.sprays_remaining)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "dummy" if self.dummy else f"flow={self.flow_id} seq={self.seq}"
        return (
            f"Cell({self.src}->{self.dst} {kind} "
            f"sprays={self.sprays_remaining} hops={self.hops})"
        )


def header_overhead_fraction() -> float:
    """Fraction of each cell consumed by the header (throughput tax)."""
    return HEADER_SIZE_BYTES / CELL_SIZE_BYTES
