"""Bit-level cell header encoding (paper Appendix C, Fig. 19).

The 12-byte (96-bit) header layout valid for up to 32,768 nodes and h <= 4:

    source id          15 bits
    destination id     15 bits
    remaining sprays    2 bits
    sequence number    22 bits
    token 1            17 bits
    token 2            17 bits
    CRC checksum        8 bits

Each token field encodes a hop-by-hop token: a destination id (15 bits) plus
a 2-bit tag.  Tag values distinguish an absent token, a regular token, an
invalidation token, and a re-validation token (Section 3.4 adds "two bits to
differentiate them").  Inside a token the remaining-sprays index is carried
in the tag's companion bits; to stay within 17 bits per token we follow the
paper's layout and pack ``(destination, sprays)`` for regular tokens where
``sprays`` reuses the 2 high bits of the destination space left free for
N <= 8,192 deployments, falling back to a 2-token-word encoding otherwise.
For the purposes of this reproduction we implement the straightforward
variant: 15 bits destination + 2 bits spray index, with the token *kind*
carried in a per-header 4-bit kind nibble taken from the checksum padding.
The wire format is self-consistent (pack -> unpack round-trips) and size
accurate (96 bits), which is what the throughput accounting depends on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "Token",
    "TOKEN_REGULAR",
    "TOKEN_INVALIDATE",
    "TOKEN_REVALIDATE",
    "HeaderCodec",
    "crc8",
]

# token kinds (2 bits on the wire)
TOKEN_ABSENT = 0
TOKEN_REGULAR = 1
TOKEN_INVALIDATE = 2
TOKEN_REVALIDATE = 3

_KIND_NAMES = {
    TOKEN_REGULAR: "regular",
    TOKEN_INVALIDATE: "invalidate",
    TOKEN_REVALIDATE: "revalidate",
}


class Token:
    """A hop-by-hop token: ``(destination, remaining sprays, kind)``.

    Regular tokens grant the receiver permission to send one more cell in
    bucket ``(dest, sprays)`` via the sender.  Invalidation and re-validation
    tokens implement the failure protocol of Section 3.4 / Appendix A.
    """

    __slots__ = ("dest", "sprays", "kind")

    def __init__(self, dest: int, sprays: int, kind: int = TOKEN_REGULAR):
        if kind not in _KIND_NAMES:
            raise ValueError(f"invalid token kind {kind}")
        self.dest = dest
        self.sprays = sprays
        self.kind = kind

    def bucket(self) -> Tuple[int, int]:
        return (self.dest, self.sprays)

    def state(self) -> Tuple[int, int, int]:
        """``(dest, sprays, kind)`` — checkpoint encoding."""
        return (self.dest, self.sprays, self.kind)

    @classmethod
    def from_state(cls, state: Tuple[int, int, int]) -> "Token":
        return cls(*state)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and self.dest == other.dest
            and self.sprays == other.sprays
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.dest, self.sprays, self.kind))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({_KIND_NAMES[self.kind]}, dest={self.dest}, sprays={self.sprays})"


_CRC8_POLY = 0x07  # CRC-8-CCITT


def crc8(data: bytes) -> int:
    """Plain CRC-8 (poly 0x07), used for the header checksum field."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ _CRC8_POLY) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


# Field widths, most significant first.  Fig. 19 gives seq 22 bits with no
# token-kind bits; Section 3.4 then *adds* two bits per token to distinguish
# regular/invalidation/re-validation tokens.  To keep the 12-byte wire size
# we carve those four bits out of the sequence number (22 -> 18 bits), which
# still addresses 64 MB flows before wrapping.
_SRC_BITS = 15
_DST_BITS = 15
_SPRAY_BITS = 2
_SEQ_BITS = 18
_TOKEN_BITS = 17  # 15-bit dest + 2-bit spray index
_TOKEN_KIND_BITS = 2  # two per header
_CRC_BITS = 8

_HEADER_BITS = (
    _SRC_BITS
    + _DST_BITS
    + _SPRAY_BITS
    + _SEQ_BITS
    + 2 * _TOKEN_BITS
    + 2 * _TOKEN_KIND_BITS
    + _CRC_BITS
)
assert _HEADER_BITS == 96, _HEADER_BITS

_MAX_NODES = 1 << _SRC_BITS
_MAX_SEQ = 1 << _SEQ_BITS
_MAX_SPRAYS = 1 << _SPRAY_BITS


class HeaderCodec:
    """Packs and unpacks 12-byte Shale cell headers.

    The codec is stateless; one shared instance can serve every node.
    """

    HEADER_BYTES = 12
    MAX_TOKENS_PER_HEADER = 2

    def pack(
        self,
        src: int,
        dst: int,
        sprays: int,
        seq: int,
        tokens: Optional[List[Token]] = None,
    ) -> bytes:
        """Encode a header. ``tokens`` may hold up to two tokens."""
        tokens = tokens or []
        if len(tokens) > self.MAX_TOKENS_PER_HEADER:
            raise ValueError(
                f"at most {self.MAX_TOKENS_PER_HEADER} tokens per header, "
                f"got {len(tokens)}"
            )
        if not 0 <= src < _MAX_NODES:
            raise ValueError(f"src {src} exceeds 15-bit node id space")
        if not 0 <= dst < _MAX_NODES:
            raise ValueError(f"dst {dst} exceeds 15-bit node id space")
        if not 0 <= sprays < _MAX_SPRAYS:
            raise ValueError(f"sprays {sprays} exceeds 2-bit field (h <= 4)")
        if not 0 <= seq < _MAX_SEQ:
            raise ValueError(f"seq {seq} exceeds 22-bit field")

        value = src
        value = (value << _DST_BITS) | dst
        value = (value << _SPRAY_BITS) | sprays
        value = (value << _SEQ_BITS) | seq
        kinds = []
        for i in range(self.MAX_TOKENS_PER_HEADER):
            if i < len(tokens):
                tok = tokens[i]
                if not 0 <= tok.dest < _MAX_NODES:
                    raise ValueError(f"token dest {tok.dest} exceeds 15 bits")
                if not 0 <= tok.sprays < _MAX_SPRAYS:
                    raise ValueError(f"token sprays {tok.sprays} exceeds 2 bits")
                word = (tok.dest << _SPRAY_BITS) | tok.sprays
                kinds.append(tok.kind)
            else:
                word = 0
                kinds.append(TOKEN_ABSENT)
            value = (value << _TOKEN_BITS) | word
        for kind in kinds:
            value = (value << _TOKEN_KIND_BITS) | kind

        # 88 bits of fields -> 11 bytes of body; the CRC byte completes 12.
        body = value.to_bytes(11, "big")
        return body + bytes([crc8(body)])

    def unpack(self, data: bytes) -> Tuple[int, int, int, int, List[Token]]:
        """Decode a header into ``(src, dst, sprays, seq, tokens)``.

        Raises ``ValueError`` on length or checksum mismatch.
        """
        if len(data) != self.HEADER_BYTES:
            raise ValueError(f"header must be {self.HEADER_BYTES} bytes, got {len(data)}")
        body, crc = data[:11], data[11]
        if crc8(body) != crc:
            raise ValueError("header CRC mismatch")
        value = int.from_bytes(body, "big")

        kinds = []
        for _ in range(self.MAX_TOKENS_PER_HEADER):
            kinds.append(value & ((1 << _TOKEN_KIND_BITS) - 1))
            value >>= _TOKEN_KIND_BITS
        kinds.reverse()

        words = []
        for _ in range(self.MAX_TOKENS_PER_HEADER):
            words.append(value & ((1 << _TOKEN_BITS) - 1))
            value >>= _TOKEN_BITS
        words.reverse()

        seq = value & (_MAX_SEQ - 1)
        value >>= _SEQ_BITS
        sprays = value & (_MAX_SPRAYS - 1)
        value >>= _SPRAY_BITS
        dst = value & (_MAX_NODES - 1)
        value >>= _DST_BITS
        src = value & (_MAX_NODES - 1)

        tokens = []
        for word, kind in zip(words, kinds):
            if kind == TOKEN_ABSENT:
                continue
            tokens.append(Token(word >> _SPRAY_BITS, word & (_MAX_SPRAYS - 1), kind))
        return src, dst, sprays, seq, tokens
