"""Strategy interfaces and registries for schedules and routing schemes.

Shale fixes one point in the ORN design space: the EBS connection schedule
(:class:`~repro.core.schedule.Schedule`) with 2x-cost VLB routing
(:class:`~repro.core.routing.Router`).  The related literature names a much
wider space — semi-oblivious designs that beat the 2x VLB throughput cost
(arXiv:2308.14837) and universal connection schedules generalizing the EBS
family (arXiv:2511.08556).  This module opens that space behind two small
interfaces:

* :class:`ScheduleStrategy` — the connection-schedule contract the engine,
  router and failure machinery program against.  Implementations are
  registered by name with :func:`register_schedule` and built with
  :func:`make_schedule` / :func:`shared_schedule`.

* :class:`RoutingStrategy` — the routing contract: full-path sampling for
  analysis plus the per-cell admission decision the simulator's RX/TX
  pipelines consult.  Registered with :func:`register_routing`, built with
  :func:`make_router`.

The contract is *executable*: ``tests/test_strategy_conformance.py``
parametrizes over every registered strategy and asserts the schedule
invariants (permutation connectivity, send/recv symmetry, ``slot_for`` /
``next_send_slot`` consistency, honored latency/throughput advertisements)
and routing invariants (schedule-respecting paths, hop bounds, all-pairs
reachability) plus end-to-end delivery and determinism properties for every
(schedule, routing, congestion-control) combination.  A new design either
passes the suite or is loudly rejected; nothing about strategy selection is
checked only at runtime depth.

Registration is population-on-import: the built-in strategies live in
:mod:`repro.core.schedule` and :mod:`repro.core.routing`, which register
themselves when imported.  Registry lookups call :func:`_ensure_builtins`
first, so consumers (e.g. :class:`~repro.sim.config.SimConfig` validation)
never observe a half-populated registry.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "ScheduleStrategy",
    "RoutingStrategy",
    "register_schedule",
    "register_routing",
    "schedule_names",
    "routing_names",
    "make_schedule",
    "shared_schedule",
    "make_router",
    "validate_design",
]


class ScheduleStrategy:
    """Contract for oblivious connection schedules.

    A schedule strategy describes, for an ``n``-node network with tuning
    parameter ``h``, which node every node sends to (and receives from) in
    every timeslot.  The engine and router rely on the following structure,
    all of which the conformance suite verifies:

    * attributes ``n``, ``h``, ``r``, ``phase_length``, ``epoch_length``,
      ``coords`` (a :class:`~repro.core.coordinates.CoordinateSystem`), and
      the hot-path lookup tables ``phase_table`` / ``offset_table`` mapping
      slot-in-epoch to phase / round-robin offset;
    * ``send_target(x, t)`` / ``recv_source(x, t)`` are mutually inverse
      and ``connection_matrix(t)`` is a self-loop-free permutation;
    * the schedule is epoch-periodic and connects every ordered
      phase-neighbour pair exactly once per epoch;
    * ``slot_for(src, dst)`` names the unique (phase, offset) connecting a
      one-hop pair and ``next_send_slot`` / ``next_phase_start`` resolve it
      against absolute time;
    * ``max_intrinsic_latency()`` and ``throughput_guarantee()`` advertise
      bounds the routed network actually honours.

    Subclasses override the three classmethods below to join the registry.
    """

    __slots__ = ()

    #: registry name; set by :func:`register_schedule`
    strategy_name: str = ""

    @classmethod
    def validate_params(cls, n: int, h: int) -> None:
        """Raise ``ValueError`` when ``(n, h)`` is infeasible for this design.

        Called by :class:`~repro.sim.config.SimConfig` validation so bad
        combinations fail at configuration time with a clear message
        instead of deep inside ``Engine`` construction.
        """
        raise NotImplementedError

    @classmethod
    def build(cls, n: int, h: int) -> "ScheduleStrategy":
        """Construct a fresh instance for ``(n, h)``."""
        raise NotImplementedError

    @classmethod
    def conformance_cases(cls) -> List[Tuple[int, int]]:
        """Small ``(n, h)`` exemplars the conformance suite enumerates.

        Keep these tiny — the suite runs exhaustive per-slot and all-pairs
        checks on every case.
        """
        raise NotImplementedError


class RoutingStrategy:
    """Contract for routing schemes over a :class:`ScheduleStrategy`.

    The simulator routes hop by hop: a cell is admitted at its source with
    some number of *spraying* hops remaining (:meth:`admission_sprays`),
    consumes one spray per hop while ``sprays_remaining > 0``, and then
    follows the deterministic direct semi-path (coordinate corrections in
    phase order) to its destination.  A routing strategy therefore only has
    to decide the admission shape; the shared forwarding machinery in
    :class:`~repro.sim.node.Node` does the rest, which is also what keeps
    hop-by-hop token accounting (bucket = ``(dst, sprays_remaining)``)
    correct for every strategy.

    For analysis and conformance testing, :meth:`sample_path` returns a
    complete path and :meth:`max_path_hops` its advertised hop bound.
    """

    __slots__ = ()

    #: registry name; set by :func:`register_routing`
    strategy_name: str = ""

    @classmethod
    def validate_params(cls, schedule_name: str, n: int, h: int) -> None:
        """Raise ``ValueError`` when this routing cannot run over the
        named schedule at ``(n, h)``.  The default accepts everything."""

    def admission_sprays(self, src: int, dst: int, phase: int,
                         neighbor: int) -> int:
        """Sprays remaining on a cell admitted at ``src`` for ``dst`` when
        the current slot (in ``phase``) connects ``src`` to ``neighbor``.

        The admission hop itself goes to ``neighbor`` on the wire this
        slot; the returned count is how many *further* spraying hops the
        cell takes before switching to direct coordinate correction.
        """
        raise NotImplementedError

    def sample_path(self, src: int, dst: int, start_phase: int = 0) -> List[int]:
        """Sample one complete path (both endpoints included)."""
        raise NotImplementedError

    def max_path_hops(self) -> int:
        """Advertised upper bound on hops per path."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# registries

_SCHEDULES: Dict[str, Type[ScheduleStrategy]] = {}
_ROUTINGS: Dict[str, Callable[..., RoutingStrategy]] = {}

#: process-wide memo of shared immutable schedule instances, keyed by
#: (strategy name, n, h); the generalization of the old ``Schedule.shared``
#: (n, h) memo, still consulted by Engine / the prototype / interleaving and
#: pre-warmed by :func:`repro.sim.parallel.sweep` before forking
_shared_schedules: Dict[Tuple[str, int, int], ScheduleStrategy] = {}


def _ensure_builtins() -> None:
    """Import the modules that register the built-in strategies.

    Deferred (rather than imported at module top) to keep this module
    import-cycle-free: ``schedule.py`` / ``routing.py`` import the
    decorators from here.
    """
    if "ebs" not in _SCHEDULES or "vlb" not in _ROUTINGS:
        from . import routing, schedule  # noqa: F401  (import = register)


def register_schedule(name: str):
    """Class decorator registering a :class:`ScheduleStrategy` under ``name``."""

    def decorator(cls: Type[ScheduleStrategy]) -> Type[ScheduleStrategy]:
        existing = _SCHEDULES.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"schedule strategy {name!r} already registered")
        cls.strategy_name = name
        _SCHEDULES[name] = cls
        return cls

    return decorator


def register_routing(name: str):
    """Class decorator registering a :class:`RoutingStrategy` under ``name``.

    The class is constructed as ``cls(schedule, rng=rng)`` by
    :func:`make_router`.
    """

    def decorator(cls):
        existing = _ROUTINGS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"routing strategy {name!r} already registered")
        cls.strategy_name = name
        _ROUTINGS[name] = cls
        return cls

    return decorator


def schedule_names() -> List[str]:
    """Sorted names of every registered schedule strategy."""
    _ensure_builtins()
    return sorted(_SCHEDULES)


def routing_names() -> List[str]:
    """Sorted names of every registered routing strategy."""
    _ensure_builtins()
    return sorted(_ROUTINGS)


def schedule_class(name: str) -> Type[ScheduleStrategy]:
    """The registered schedule strategy class for ``name``."""
    _ensure_builtins()
    try:
        return _SCHEDULES[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule strategy {name!r}; "
            f"registered: {sorted(_SCHEDULES)}"
        ) from None


def routing_class(name: str):
    """The registered routing strategy class for ``name``."""
    _ensure_builtins()
    try:
        return _ROUTINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown routing strategy {name!r}; "
            f"registered: {sorted(_ROUTINGS)}"
        ) from None


def make_schedule(name: str, n: int, h: int) -> ScheduleStrategy:
    """Build a fresh schedule strategy instance (validated)."""
    cls = schedule_class(name)
    cls.validate_params(n, h)
    return cls.build(n, h)


def shared_schedule(name: str, n: int, h: int) -> ScheduleStrategy:
    """The process-wide shared schedule instance for ``(name, n, h)``.

    Schedule strategies (and their coordinate systems) are immutable, so
    every engine of a sweep cell shares one instance per network size
    instead of rebuilding the phase/offset tables; ``Engine.__init__``
    consults this memo, and :func:`repro.sim.parallel.sweep` pre-warms it
    before forking so workers share the parent's pages.
    """
    key = (name, n, h)
    instance = _shared_schedules.get(key)
    if instance is None:
        instance = _shared_schedules.setdefault(key, make_schedule(name, n, h))
    return instance


def make_router(name: str, schedule: ScheduleStrategy,
                rng: Optional[random.Random] = None) -> RoutingStrategy:
    """Build a routing strategy instance over ``schedule``."""
    return routing_class(name)(schedule, rng=rng)


def validate_design(schedule_name: str, routing_name: str,
                    n: int, h: int) -> None:
    """Validate a (schedule, routing, n, h) design point.

    Raises ``ValueError`` with a registry-aware message for unknown names
    and a strategy-specific message for infeasible ``(n, h)`` — the single
    entry point :class:`~repro.sim.config.SimConfig` validation uses, so
    bad designs never reach ``Engine`` construction.
    """
    sched_cls = schedule_class(schedule_name)
    routing_cls = routing_class(routing_name)
    sched_cls.validate_params(n, h)
    routing_cls.validate_params(schedule_name, n, h)
