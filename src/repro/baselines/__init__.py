"""Baseline systems the paper compares against."""

from .opera import OperaConfig, OperaSimulator, RotorTopology

__all__ = ["OperaConfig", "OperaSimulator", "RotorTopology"]
