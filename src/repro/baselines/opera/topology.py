"""Opera's rotating expander topology (Mellette et al., NSDI 2020).

Opera equips every node (top-of-rack switch) with ``u`` uplinks, each
attached to a rotor switch.  Each rotor cycles through ``N - 1`` matchings;
reconfigurations are staggered so that at any instant ``u - 1`` matchings
are live and together form an expander graph over the nodes.  Each
configuration is held for several microseconds — orders of magnitude longer
than Shale's timeslots — so that short flows can traverse multi-hop paths
within a single topology.

We realise each rotor's matchings as circulant offsets: rotor ``j`` at
period ``k`` connects ``x -> (x + offset_j(k)) mod N``.  Offsets are chosen
with a large co-prime stride so the union of the live matchings is a
circulant expander, and every ordered pair is directly connected once per
rotor cycle — the property RotorLB depends on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["RotorTopology"]


class RotorTopology:
    """The time-varying union of ``u`` rotor matchings over ``n`` nodes."""

    def __init__(self, n: int, uplinks: int, stride: Optional[int] = None):
        if n < 3:
            raise ValueError("Opera needs at least 3 nodes")
        if not 1 <= uplinks < n:
            raise ValueError(f"uplinks must be in [1, {n}), got {uplinks}")
        self.n = n
        self.uplinks = uplinks
        # A stride co-prime with n - 1 walks all offsets 1..n-1 in a
        # scrambled order, decorrelating the rotors' matchings.
        self.stride = stride if stride is not None else self._pick_stride(n - 1)
        # rotor j starts its offset walk at a distinct point for staggering
        self._starts = [
            (j * ((n - 1) // uplinks)) % (n - 1) for j in range(uplinks)
        ]

    @staticmethod
    def _pick_stride(m: int) -> int:
        """A stride co-prime with ``m``, away from 1 for good scrambling."""
        import math

        candidate = max(2, int(m * 0.618))  # golden-ratio-ish
        while math.gcd(candidate, m) != 1:
            candidate += 1
        return candidate

    def offset(self, rotor: int, period: int) -> int:
        """Matching offset of ``rotor`` during ``period`` (in ``1 .. n-1``)."""
        if not 0 <= rotor < self.uplinks:
            raise ValueError(f"rotor {rotor} out of range")
        m = self.n - 1
        return 1 + (self._starts[rotor] + period * self.stride) % m

    def live_offsets(self, period: int) -> List[int]:
        """Offsets of all live matchings during ``period``."""
        return [self.offset(j, period) for j in range(self.uplinks)]

    def neighbors(self, node: int, period: int) -> List[int]:
        """Nodes directly reachable from ``node`` during ``period``."""
        return [(node + o) % self.n for o in self.live_offsets(period)]

    def connected(self, src: int, dst: int, period: int) -> Optional[int]:
        """The rotor connecting ``src`` to ``dst`` this period, if any."""
        want = (dst - src) % self.n
        for j in range(self.uplinks):
            if self.offset(j, period) == want:
                return j
        return None

    def next_direct_period(self, src: int, dst: int, after: int,
                           search_limit: Optional[int] = None) -> int:
        """First period ``>= after`` with a direct ``src -> dst`` matching.

        With ``u`` co-prime-strided rotors each pair is matched once per
        ``(n - 1) / u`` periods on average; the scan is bounded by ``n``.
        """
        limit = search_limit if search_limit is not None else self.n + 1
        for period in range(after, after + limit):
            if self.connected(src, dst, period) is not None:
                return period
        raise RuntimeError(
            f"no direct matching {src}->{dst} within {limit} periods; "
            "stride/uplink configuration does not cover all pairs"
        )

    def path_length(self, src: int, dst: int, period: int,
                    max_hops: int = 12) -> Optional[int]:
        """BFS hop count from ``src`` to ``dst`` in the period's expander.

        Uses the circulant structure: reachability depends only on the
        difference ``(dst - src) mod n``, so BFS runs over residues.
        """
        if src == dst:
            return 0
        target = (dst - src) % self.n
        offsets = self.live_offsets(period)
        frontier = {0}
        seen = {0}
        for hops in range(1, max_hops + 1):
            nxt = set()
            for residue in frontier:
                for o in offsets:
                    neighbor = (residue + o) % self.n
                    if neighbor == target:
                        return hops
                    if neighbor not in seen:
                        seen.add(neighbor)
                        nxt.add(neighbor)
            if not nxt:
                return None
            frontier = nxt
        return None

    def mean_direct_interval(self) -> float:
        """Average periods between direct connections of a given pair."""
        return (self.n - 1) / self.uplinks
