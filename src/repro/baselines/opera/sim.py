"""Coarse-grained Opera simulator for the Fig. 4 comparison.

The comparison in the paper (Section 3.2.1) puts Opera and Shale ``h = 1``
side by side on the same 576-node heavy-tailed workload.  Its message is
structural, not microscopic:

* Opera's long configuration hold times (>= an end-to-end RTT, 8167 ns in
  the paper's setup vs 5.632 ns Shale timeslots) let *short* flows traverse
  multi-hop expander paths within one configuration — so short-flow FCTs are
  excellent;
* *bulk* flows ride RotorLB, which primarily transmits when source and
  destination are directly matched — roughly ``u / (N - 1)`` of the time —
  so bulk tail FCTs inflate by a factor that grows linearly with ``N``
  (~400x at N=576).

This simulator models exactly those mechanisms at configuration-period
granularity: explicit rotor matchings (direct transfers get real capacity
only when matched, plus opportunistic two-hop RotorLB relaying), and
expander BFS paths with utilisation-dependent queueing for short flows.
Finer packet-level detail (which the public htsim-based Opera simulator
provides) does not change the structural outcome; the substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ...sim.flows import FlowRecord
from ...workloads.distributions import bucket_of
from .topology import RotorTopology

__all__ = ["OperaConfig", "OperaFlowRecord", "OperaSimulator"]


class OperaConfig:
    """Opera run parameters.

    Attributes:
        n: number of nodes.
        uplinks: rotor uplinks per node (paper setup: 8 x 50 Gbps).
        period_cells: configuration hold time expressed in cell-transmission
            times of the *aggregate* interface — i.e. how many cells a node
            can emit per period across all uplinks (8167 ns / 5.632 ns ~
            1450 at paper scale).
        bulk_cutoff_cells: flows longer than this use RotorLB (the paper
            keeps Opera's original 15 MB cutoff).
        propagation_cells: one-way propagation delay in cell times.
        indirect: enable RotorLB two-hop relaying for unbalanced traffic.
        seed: RNG seed.
    """

    def __init__(
        self,
        n: int,
        uplinks: int = 8,
        period_cells: int = 1450,
        bulk_cutoff_cells: int = 61_440,  # ~15 MB of 244-byte payloads
        propagation_cells: int = 89,
        indirect: bool = True,
        seed: int = 1,
    ):
        if period_cells < 1:
            raise ValueError("period must be at least one cell time")
        self.n = n
        self.uplinks = uplinks
        self.period_cells = period_cells
        self.bulk_cutoff_cells = bulk_cutoff_cells
        self.propagation_cells = propagation_cells
        self.indirect = indirect
        self.seed = seed


class OperaFlowRecord:
    """Completion record in the same shape as the Shale simulator's."""

    __slots__ = ("flow_id", "src", "dst", "size_cells", "size_bytes",
                 "arrival", "completed_at", "bulk")

    def __init__(self, flow_id: int, src: int, dst: int, size_cells: int,
                 size_bytes: int, arrival: int, completed_at: int, bulk: bool):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_cells = size_cells
        self.size_bytes = size_bytes
        self.arrival = arrival
        self.completed_at = completed_at
        self.bulk = bulk

    @property
    def fct(self) -> int:
        return self.completed_at - self.arrival

    def normalized_fct(self, propagation_delay: int) -> float:
        """Size-normalised FCT against the single-hop line-rate ideal."""
        return self.fct / (self.size_cells + propagation_delay)


class _BulkFlow:
    __slots__ = ("flow_id", "src", "dst", "size_cells", "size_bytes",
                 "arrival", "remaining", "relayed_pending")

    def __init__(self, flow_id, src, dst, size_cells, size_bytes, arrival):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_cells = size_cells
        self.size_bytes = size_bytes
        self.arrival = arrival
        self.remaining = size_cells
        #: cells handed to intermediates, keyed by delivery period
        self.relayed_pending: List[Tuple[int, int]] = []


class OperaSimulator:
    """Simulates Opera at configuration-period granularity.

    Time is measured in cell-transmission slots (aligned with the Shale
    simulator, so size-normalised FCTs are directly comparable); one
    topology period spans ``period_cells`` of them.
    """

    def __init__(self, config: OperaConfig):
        self.config = config
        self.topology = RotorTopology(config.n, config.uplinks)
        self.rng = random.Random(config.seed)
        self.completed: List[OperaFlowRecord] = []
        self._bulk: List[_BulkFlow] = []
        self._next_arrival = 0
        self._workload: List[Tuple[int, int, int, int, int]] = []
        self.period = 0
        #: per-node cells of *direct* egress spent this period
        self._egress_used: Dict[int, int] = {}
        #: per-node cells of ingress spent this period (receiver bound)
        self._ingress_used: Dict[int, int] = {}
        #: measured utilisation (for short-flow queueing): EWMA of the
        #: fraction of per-period egress capacity spent
        self._util_ewma = 0.0

    # ------------------------------------------------------------------ #

    def schedule_flows(self, workload: List[Tuple[int, int, int, int, int]]) -> None:
        """Add flows ``(arrival_slot, src, dst, cells, bytes)`` (sorted)."""
        self._workload.extend(workload)
        self._workload.sort()

    def run(self, duration_slots: int) -> None:
        """Run until the master clock passes ``duration_slots``."""
        total_periods = -(-duration_slots // self.config.period_cells)
        for _ in range(total_periods):
            self._step_period()

    def run_until_quiescent(self, max_extra_periods: int = 200_000) -> None:
        """Keep running until every flow completes (bounded)."""
        for _ in range(max_extra_periods):
            if self._next_arrival >= len(self._workload) and not self._bulk:
                break
            self._step_period()

    @property
    def now(self) -> int:
        """Current time in cell slots."""
        return self.period * self.config.period_cells

    # ------------------------------------------------------------------ #

    def _step_period(self) -> None:
        cfg = self.config
        now = self.now
        self._egress_used = {}
        self._ingress_used = {}
        self._admit_arrivals(now + cfg.period_cells)
        self._serve_bulk(now)
        self._update_utilization()
        self.period += 1

    def _admit_arrivals(self, horizon: int) -> None:
        wl = self._workload
        cfg = self.config
        while self._next_arrival < len(wl) and wl[self._next_arrival][0] < horizon:
            arrival, src, dst, cells, size_bytes = wl[self._next_arrival]
            self._next_arrival += 1
            flow_id = self._next_arrival
            if cells > cfg.bulk_cutoff_cells:
                self._bulk.append(
                    _BulkFlow(flow_id, src, dst, cells, size_bytes, arrival)
                )
            else:
                self._complete_short(flow_id, src, dst, cells, size_bytes, arrival)

    # ------------------------------------------------------------------ #
    # short flows: multi-hop expander routing within one configuration

    def _complete_short(self, flow_id: int, src: int, dst: int,
                        cells: int, size_bytes: int, arrival: int) -> None:
        cfg = self.config
        start = max(arrival, self.now)
        hops = self.topology.path_length(src, dst, self.period)
        if hops is None:
            # disconnected residue (never happens with u >= 2); wait a period
            hops = 1 + int(self.topology.mean_direct_interval())
        # Per-hop cost: store-and-forward of the flow's cells at the per-hop
        # line rate (one uplink's share = u-th of aggregate, i.e. each cell
        # takes `uplinks` slot times on one uplink), propagation, and
        # utilisation-dependent queueing (M/D/1-style mean wait scaled by
        # the measured load).
        per_hop_transmit = cells * cfg.uplinks
        queueing = self._queueing_delay_cells()
        fct = hops * (per_hop_transmit + cfg.propagation_cells + queueing)
        self.completed.append(
            OperaFlowRecord(
                flow_id, src, dst, cells, size_bytes,
                arrival, start + fct, bulk=False,
            )
        )

    def _queueing_delay_cells(self) -> int:
        """Mean per-hop queueing (cells) from the utilisation EWMA (M/D/1)."""
        rho = min(0.95, self._util_ewma)
        if rho <= 0.0:
            return 0
        mean_wait = rho / (2.0 * (1.0 - rho))  # M/D/1 mean queue, in cells
        return int(mean_wait * self.config.uplinks)

    def _update_utilization(self) -> None:
        cfg = self.config
        if not self._egress_used:
            spent = 0.0
        else:
            spent = sum(self._egress_used.values()) / (
                len(self._egress_used) * cfg.period_cells
            )
        self._util_ewma = 0.9 * self._util_ewma + 0.1 * spent

    # ------------------------------------------------------------------ #
    # bulk flows: RotorLB

    def _serve_bulk(self, now: int) -> None:
        cfg = self.config
        period = self.period
        finished: List[_BulkFlow] = []
        for flow in self._bulk:
            if flow.arrival > now + cfg.period_cells:
                continue
            # collect relayed cells whose second hop has landed
            if flow.relayed_pending:
                flow.relayed_pending = [
                    (p, c) for p, c in flow.relayed_pending if p > period
                ]
            # direct transmission whenever some rotor matches src -> dst
            if self.topology.connected(flow.src, flow.dst, period) is not None:
                sendable = self._capacity(flow.src, flow.dst, cfg.period_cells)
                sent = min(flow.remaining, sendable)
                flow.remaining -= sent
                self._spend(flow.src, flow.dst, sent)
            elif cfg.indirect and flow.remaining > 0:
                self._relay_indirect(flow, period)
            if flow.remaining <= 0 and not flow.relayed_pending:
                finished.append(flow)
                self.completed.append(
                    OperaFlowRecord(
                        flow.flow_id, flow.src, flow.dst, flow.size_cells,
                        flow.size_bytes, flow.arrival,
                        now + cfg.period_cells, bulk=True,
                    )
                )
        if finished:
            gone = {id(f) for f in finished}
            self._bulk = [f for f in self._bulk if id(f) not in gone]

    def _relay_indirect(self, flow: _BulkFlow, period: int) -> None:
        """RotorLB's two-hop fallback: offer spare capacity to a neighbour.

        A neighbour currently matched with the source accepts cells and
        delivers them when it next matches the destination — we book that
        delivery period directly instead of simulating the relay queue.
        RotorLB caps indirect traffic at a fraction of the direct rate so
        relays do not starve the relay node's own traffic.
        """
        cfg = self.config
        neighbors = self.topology.neighbors(flow.src, period)
        relay = neighbors[self.rng.randrange(len(neighbors))]
        if relay == flow.dst:
            return
        budget = self._capacity(flow.src, relay, cfg.period_cells // 2)
        cells = min(flow.remaining, budget)
        if cells <= 0:
            return
        deliver = self.topology.next_direct_period(relay, flow.dst, period + 1)
        flow.remaining -= cells
        self._spend(flow.src, relay, cells)
        flow.relayed_pending.append((deliver, cells))

    def _capacity(self, src: int, dst: int, want: int) -> int:
        """Remaining egress/ingress capacity between the pair this period."""
        cfg = self.config
        egress_left = cfg.period_cells - self._egress_used.get(src, 0)
        ingress_left = cfg.period_cells - self._ingress_used.get(dst, 0)
        return max(0, min(want, egress_left, ingress_left))

    def _spend(self, src: int, dst: int, cells: int) -> None:
        if cells <= 0:
            return
        self._egress_used[src] = self._egress_used.get(src, 0) + cells
        self._ingress_used[dst] = self._ingress_used.get(dst, 0) + cells
