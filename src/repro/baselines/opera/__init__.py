"""Simplified Opera baseline (Mellette et al., NSDI 2020) for Fig. 4."""

from .sim import OperaConfig, OperaFlowRecord, OperaSimulator
from .topology import RotorTopology

__all__ = ["OperaConfig", "OperaFlowRecord", "OperaSimulator", "RotorTopology"]
