"""Cell-path tracing and VLB path validation.

When a :class:`CellTracer` is attached to an engine, every non-dummy cell's
hop sequence is recorded: ``(timeslot, from, to, sprays_remaining_at_send)``
per hop plus the delivery time.  Traces serve two purposes:

* debugging/analysis — where do cells spend their time, which hops queue;
* verification — :func:`validate_trace` checks that a completed trace is a
  legal Shale path: at most ``2h`` hops, a spraying semi-path of hops in
  consecutive phases followed by a direct semi-path in which every hop fixes
  one destination coordinate and never unfixes another, ending at the
  destination.  The integration test suite runs it over full simulations.

Tracing costs memory proportional to traffic; enable it for verification
runs, not for the large experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.coordinates import CoordinateSystem
from ..core.schedule import Schedule

__all__ = ["CellTracer", "CellTrace", "validate_trace", "TraceError"]


class TraceError(AssertionError):
    """A recorded cell path violates Shale's routing discipline."""


class CellTrace:
    """The life of one cell: hops taken and (optionally) delivery."""

    __slots__ = ("flow_id", "seq", "src", "dst", "hops", "delivered_at",
                 "rerouted")

    def __init__(self, flow_id: int, seq: int, src: int, dst: int):
        self.flow_id = flow_id
        self.seq = seq
        self.src = src
        self.dst = dst
        #: list of (timeslot, from_node, to_node, sprays_at_send)
        self.hops: List[Tuple[int, int, int, int]] = []
        self.delivered_at: Optional[int] = None
        #: True when a failure reroute reset this cell's spraying
        self.rerouted = False

    @property
    def key(self) -> Tuple[int, int]:
        return (self.flow_id, self.seq)

    @property
    def path(self) -> List[int]:
        """Node sequence including both endpoints."""
        if not self.hops:
            return [self.src]
        return [self.hops[0][1]] + [hop[2] for hop in self.hops]

    @property
    def complete(self) -> bool:
        return self.delivered_at is not None

    def __repr__(self) -> str:  # pragma: no cover
        status = f"delivered@{self.delivered_at}" if self.complete else "in flight"
        return (
            f"CellTrace(flow={self.flow_id} seq={self.seq} "
            f"{'->'.join(map(str, self.path))} {status})"
        )


class CellTracer:
    """Records hop-by-hop traces of every payload cell in an engine run.

    Attach at construction time::

        engine = Engine(config, workload=wl)
        tracer = CellTracer.attach(engine)
        engine.run()
        for trace in tracer.completed():
            validate_trace(trace, engine.schedule)
    """

    def __init__(self, schedule: Schedule):
        self.schedule = schedule
        self._traces: Dict[Tuple[int, int], CellTrace] = {}

    @classmethod
    def attach(cls, engine) -> "CellTracer":
        """Create a tracer and install it on ``engine``."""
        tracer = cls(engine.schedule)
        engine.tracer = tracer
        return tracer

    # ------------------------------------------------------------------ #
    # hooks called by the engine

    def on_hop(self, cell, sender: int, receiver: int, t: int) -> None:
        """Record one transmitted hop of a payload cell."""
        key = (cell.flow_id, cell.seq)
        trace = self._traces.get(key)
        if trace is None:
            trace = CellTrace(cell.flow_id, cell.seq, cell.src, cell.dst)
            self._traces[key] = trace
        trace.hops.append((t, sender, receiver, cell.sprays_remaining))

    def on_deliver(self, cell, t: int) -> None:
        """Record final delivery."""
        trace = self._traces.get((cell.flow_id, cell.seq))
        if trace is not None:
            trace.delivered_at = t

    def on_reroute(self, cell) -> None:
        """Mark a failure-driven spraying reset."""
        trace = self._traces.get((cell.flow_id, cell.seq))
        if trace is not None:
            trace.rerouted = True

    # ------------------------------------------------------------------ #
    # queries

    def completed(self) -> List[CellTrace]:
        """Traces of cells that reached their destination."""
        return [t for t in self._traces.values() if t.complete]

    def in_flight(self) -> List[CellTrace]:
        """Traces of cells still somewhere in the network."""
        return [t for t in self._traces.values() if not t.complete]

    def trace(self, flow_id: int, seq: int) -> Optional[CellTrace]:
        """Look up one cell's trace."""
        return self._traces.get((flow_id, seq))

    def hop_count_histogram(self) -> Dict[int, int]:
        """Distribution of path lengths among delivered cells."""
        hist: Dict[int, int] = {}
        for trace in self.completed():
            hops = len(trace.hops)
            hist[hops] = hist.get(hops, 0) + 1
        return hist


def validate_trace(trace: CellTrace, schedule: Schedule) -> None:
    """Raise :class:`TraceError` unless ``trace`` is a legal Shale path.

    Checks (for traces without failure reroutes):

    1. the path starts at the cell's source and ends at its destination;
    2. at most ``2h`` hops;
    3. every hop connects phase neighbours, in the phase the schedule
       assigns to the hop's timeslot, at the right round-robin offset;
    4. spray hops (``sprays_at_send > 0`` on arrival semantics) happen in
       consecutive phases;
    5. each direct hop sets one destination coordinate and leaves already
       correct coordinates alone (monotone progress to the destination).
    """
    coords = schedule.coords
    h = coords.h
    if not trace.complete:
        raise TraceError(f"{trace!r}: not delivered")
    path = trace.path
    if path[0] != trace.src:
        raise TraceError(f"{trace!r}: starts at {path[0]}, not {trace.src}")
    if path[-1] != trace.dst:
        raise TraceError(f"{trace!r}: ends at {path[-1]}, not {trace.dst}")
    max_hops = 2 * h if not trace.rerouted else 4 * h
    if len(trace.hops) > max_hops:
        raise TraceError(
            f"{trace!r}: {len(trace.hops)} hops exceeds bound {max_hops}"
        )

    # The first h hops are the spraying semi-path (sprays always move, one
    # hop per consecutive phase); everything after is the direct semi-path.
    prev_spray_phase: Optional[int] = None
    for i, (t, sender, receiver, _sprays) in enumerate(trace.hops):
        phase = schedule.phase_of(t)
        offset = schedule.offset_of(t)
        expected = coords.neighbor_at_offset(sender, phase, offset)
        if expected != receiver:
            raise TraceError(
                f"{trace!r}: hop {sender}->{receiver} at t={t} but the "
                f"schedule connects {sender}->{expected} then"
            )
        if trace.rerouted:
            continue  # reroutes restart spraying; only check connectivity
        if i < h:
            # spraying semi-path: phases advance by one per hop
            if prev_spray_phase is not None and phase != (
                prev_spray_phase + 1
            ) % h:
                raise TraceError(
                    f"{trace!r}: spray hop {i} at phase {phase} does not "
                    f"follow phase {prev_spray_phase}"
                )
            prev_spray_phase = phase
        else:
            # direct hop: must strictly reduce coordinate distance
            before = coords.distance(sender, trace.dst)
            after = coords.distance(receiver, trace.dst)
            if after != before - 1:
                raise TraceError(
                    f"{trace!r}: direct hop {sender}->{receiver} distance "
                    f"{before}->{after}"
                )
