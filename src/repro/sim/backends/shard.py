"""The sharded multi-process slot stepper.

Partitions the network's nodes into ``K`` contiguous ranges along EBS
phase-group boundaries (digit-0 blocks are contiguous runs of ``n/r``
node ids, so when ``K <= r`` every block lands wholly inside one shard)
and advances each range in its own persistent worker process.  Workers
run the same vectorized stepper as the ``"vector"`` backend
(:class:`~repro.sim.backends.vector._VectorRun`), restricted to their
node range, and exchange cross-shard cells through deterministic
per-slot mailboxes.

Lockstep protocol (one *round* = ``min(delay, slots left)`` timeslots):

* Within a round every worker steps its slots locally.  A cell sent at
  slot ``s`` arrives at ``s + delay``, so with rounds no longer than the
  propagation delay every arrival of round ``R`` was sent in an earlier
  round and is already sitting in the receiver's arrival buffer.
* At the round boundary each worker sends exactly one message per peer:
  the per-slot sub-batches destined to that peer, the per-slot *trigger
  lists* (ascending sender ids of every cell that will consume a
  spraying draw on arrival), and per-slot liveness bits.  Messages are
  tagged ``(segment, round, source shard)`` and re-ordered receiver-side,
  so queue interleaving never reaches the simulation.
* Receivers concatenate sub-batches in shard order, which restores the
  single-process batch: ascending-sender order, exactly what the object
  wire and the vector stepper produce.

Determinism of the spraying RNG is the crux: every worker mirrors the
*same* engine Mersenne Twister and, at each arrival slot, draws the
*global* number of accepted ``randrange(1, r)`` values (the trigger
lists give the exact count and order), then keeps only the draws whose
position matches its own arriving cells.  All workers therefore consume
identical word counts from identical streams, a ``K``-shard run is
bit-exact with the single-process backends, and the shard count never
needs to enter cache keys or checkpoints.

Termination under draining uses the same per-slot liveness bits: a slot
is globally quiescent when every shard reported no pending flow
arrivals, no active flow cursors, no queued cells and no in-flight
cells at its top.  Slots stepped past the first quiescent slot are
provable no-ops (nothing can be sent, drawn or delivered), so workers
may overrun to the round boundary; the parent rewinds ``engine.t`` to
the quiescent slot and drops the overrun sample windows.

The parent engine stays authoritative between segments: after a gather
it replays delivery digests, flow completions, injections and sample
windows in exact single-process order, rebuilds the object model (its
queues via :meth:`~repro.sim.node.Node.absorb_shard_state`), and
resynchronises the engine's ``random.Random`` past the consumed words.
"""

from __future__ import annotations

import traceback
from collections import deque
from typing import Any, Dict, List, Optional

import numpy as np

from ...core.cell import Cell
from ..node import Transmission
from ..parallel import ShardCrash, ShardWorkerError, get_shard_pool
from . import EngineBackend, default_shards, register_backend
from .vector import (
    _EV_DELIVERY,
    _VectorRun,
    _fast_ineligible_reason,
    VectorBackend,
    build_hop_tables,
)

__all__ = ["ShardBackend", "shard_ranges"]


def shard_ranges(n: int, r: int, count: int):
    """``count`` contiguous ``[lo, hi)`` node ranges covering ``0..n``.

    When ``count <= r`` and ``n`` divides evenly into digit-0 blocks the
    bounds are block-aligned, so every EBS phase group (a contiguous run
    of ``n // r`` node ids sharing digit 0) lives wholly inside one
    shard.  Alignment is a locality nicety, never a correctness
    requirement — the fallback is a plain even split.
    """
    count = max(1, min(int(count), n))
    if count <= r and n % r == 0:
        block = n // r
        bounds = [((k * r) // count) * block for k in range(count)]
    else:
        bounds = [(k * n) // count for k in range(count)]
    bounds.append(n)
    return [(bounds[k], bounds[k + 1]) for k in range(count)]


def _cells_from_cols(cols: np.ndarray) -> List[Cell]:
    """Materialize :class:`Cell` objects from an (11, m) column block."""
    out: List[Cell] = []
    if cols.shape[1] == 0:
        return out
    append = out.append
    new = Cell.__new__
    for src, dst, fid, seq, spr, prv, cre, sph, fsz, hp, enq in zip(
        *(cols[i].tolist() for i in range(11))
    ):
        cell = new(Cell)
        cell.src = src
        cell.dst = dst
        cell.flow_id = fid
        cell.seq = seq
        cell.sprays_remaining = spr
        cell.prev_hop = prv
        cell.created_at = cre
        cell.spray_phase = sph
        cell.flow_size = fsz
        cell.dummy = False
        cell.hops = hp
        cell.enqueued_at = enq
        append(cell)
    return out


def _rng_state_payload(rng):
    """The engine RNG's MT19937 state as (key array, pos), or None."""
    state = rng.getstate()
    if state[0] != 3 or state[2] is not None:
        return None
    key = state[1]
    return (np.array(key[:-1], dtype=np.uint32), int(key[-1]))


def _resync_engine_rng(engine, payload, words: int) -> None:
    """Advance the engine's ``random.Random`` past ``words`` raw words."""
    if not words:
        return
    key, pos = payload
    bg = np.random.MT19937()
    bg.state = {
        "bit_generator": "MT19937",
        "state": {"key": key, "pos": pos},
    }
    bg.random_raw(words)
    s = bg.state["state"]
    engine.rng.setstate(
        (3, tuple(int(x) for x in s["key"]) + (int(s["pos"]),), None)
    )


class _Proxy:
    """A plain attribute bag standing in for engine sub-objects."""

    def __init__(self, **kw):
        self.__dict__.update(kw)


class _WorkerRun(_VectorRun):
    """One shard's view of a packed stretch, living in a worker process.

    Reuses the parent class's slab, queue, flow-cursor and RNG-mirror
    machinery over *global-width* arrays (only the columns of the local
    node range ``[lo, hi)`` ever hold data), and overrides the per-slot
    sections to exchange cross-shard cells through the mailbox mesh
    instead of an in-process wire.
    """

    def __init__(self, idx, count, tables, task, mail_queues):
        engine = _Proxy(
            config=_Proxy(
                n=tables["n"], h=tables["h"],
                propagation_delay=tables["delay"],
            ),
            coords=_Proxy(r=tables["r"]),
            schedule=_Proxy(
                epoch_length=tables["epoch"],
                phase_table=tables["phase_table"],
            ),
            metrics=_Proxy(max_queue_length=0),
        )
        _VectorRun.__init__(
            self, engine, tables["nbr"], tables["link_table"], tables["qt"]
        )
        self.k = idx
        self.K = count
        self.mail = mail_queues
        self.mymail = mail_queues[idx]
        self.seg = task["seg"]
        self.ranges = task["ranges"]
        self.lo, self.hi = self.ranges[idx]
        self.starts = np.array(
            [lo for lo, _ in self.ranges], dtype=np.int64
        )
        self.t0 = task["t0"]
        self.t_end = task["t1"]
        self.drain = task["drain"]
        self.warmup = task["warmup"]
        self.interval = task["interval"]
        self.lat_room = task["lat_room"]
        self.want_digest = task["digest"]
        self._empty = np.empty(0, dtype=np.int64)
        # segment counters (cumulative over this segment)
        self.m_del = 0      # cells delivered at local nodes
        self.m_inj = 0      # cells injected by local flows
        self.m_sent = 0     # cells sent by local nodes
        self.m_arr = 0      # arrived cells processed (wire departures)
        self.m_windel = 0   # deliveries since the last sample window
        # replay records
        self.rec: Dict[str, List[np.ndarray]] = {
            name: [] for name in
            ("t", "s", "lat", "fid", "seq", "src", "dst", "hops")
        }
        self.rec_n = 0
        self.comps: List[tuple] = []     # (t, sender, flow id)
        self.windows: List[dict] = []
        # arrival buffers: slot -> (senders, slab rows, recvs, esph) and
        # slot -> global ascending trigger-sender array
        self.rxbuf: Dict[int, tuple] = {}
        self.trigbuf: Dict[int, np.ndarray] = {}
        # liveness bookkeeping
        self.init_arrs: List[int] = []
        self.init_ptr = 0
        self.sent_hist: deque = deque()  # (slot, sent count)
        self.sent_sum = 0
        self.q_cells = 0
        self.n_has_flow = 0
        # draw stash: this shard's slice of the current slot's global draws
        self._stash = self._empty
        self._stash_pos = 0
        # round exchange state
        self.round_slots: List[dict] = []
        self.round_live: List[bool] = []
        self.backlog: Dict[tuple, list] = {}
        self.load(task)

    # ------------------------------------------------------------------ #
    # task load (columns shipped by the parent's scatter)

    def load(self, task) -> None:
        lo, hi = self.lo, self.hi
        queues = task["queues"]
        counts = queues["counts"]      # (local_n, L)
        qcols = queues["cols"]         # (11, total) in walk order
        wire_total = sum(e[1].size for e in task["wire"])
        m = qcols.shape[1]
        self._init_slab(m + wire_total)
        nid = self.Ln
        if m:
            self._slab[:11, nid:nid + m] = qcols
        # rebuild the per-queue linked lists over the consecutive rows
        nxt = self.c_nxt
        q_len = self.q_len
        q_tail = self.q_tail
        q_peak = self.q_peak
        counts_l = counts.tolist()
        peaks_l = queues["peaks"].tolist()
        pos = nid
        n = self.n
        for li in range(hi - lo):
            i = lo + li
            crow = counts_l[li]
            prow = peaks_l[li]
            for l in range(self.L):
                q_peak[l, i] = prow[l]
                cnt = crow[l]
                if not cnt:
                    continue
                q_len[l, i] = cnt
                nxt[l * n + i] = pos
                if cnt > 1:
                    nxt[pos:pos + cnt - 1] = np.arange(
                        pos + 1, pos + cnt, dtype=np.int64
                    )
                nxt[pos + cnt - 1] = -1
                q_tail[l, i] = pos + cnt - 1
                pos += cnt
        nid = pos
        self.q_cells = int(counts.sum())
        # the initial wire: one pre-split sub-batch per arrival slot
        for arr, senders, cols, recvs, esph in task["wire"]:
            w = senders.size
            rows = np.arange(nid, nid + w, dtype=np.int64)
            if w:
                self._slab[:11, rows] = cols
                nxt[rows] = -1
                self.rxbuf[arr] = (senders, rows, recvs, esph)
                self.init_arrs.append(arr)
            nid += w
        self.init_arrs.sort()
        for arr, trig in task["wire_trig"]:
            self.trigbuf[arr] = trig
        # freelist over the remaining rows
        self.free[: self.cap - nid] = np.arange(
            nid, self.cap, dtype=np.int64
        )
        self.free_top = self.cap - nid
        # flow cursors (waiting entries are (fid, dst, sent, size) tuples)
        cur = task["cursor"]
        self.has_flow[lo:hi] = cur["has"]
        self.cur_fid[lo:hi] = cur["fid"]
        self.cur_dst[lo:hi] = cur["dst"]
        self.cur_sent[lo:hi] = cur["sent"]
        self.cur_size[lo:hi] = cur["size"]
        for li, wl in enumerate(cur["waiting"]):
            if wl:
                self.waiting[lo + li].extend(wl)
        self.n_has_flow = int(np.count_nonzero(cur["has"]))
        # pending flow arrivals for local sources, in global deque order,
        # each carrying its precomputed flow id
        self.pending = task["pending"]
        self.pend_ptr = 0
        # per-flow delivered preload (flows destined to this shard only)
        for fid, delivered in task["fdel"]:
            self._ensure_flow(fid)
            self.f_del[fid] = delivered
        # the shared RNG mirror
        key, kpos = task["rng"]
        self.rng_prestate = {
            "bit_generator": "MT19937",
            "state": {"key": key, "pos": kpos},
        }
        self.bg = np.random.MT19937()
        self.bg.state = self.rng_prestate

    # ------------------------------------------------------------------ #
    # the draw stash: _forward/_next_hops call _draw for spraying cells;
    # the worker pre-drew the slot's global batch in _rx2 and serves its
    # own slice here, so stream position stays identical across shards

    def _draw(self, k: int) -> np.ndarray:
        pos = self._stash_pos
        self._stash_pos = pos + k
        return self._stash[pos:pos + k]

# ------------------------------------------------------------------ #
    # per-slot sections

    def _live(self, tau: int) -> bool:
        """This shard's contribution to the drain predicate at slot top.

        The global OR across shards equals the single-process predicate
        ``pending or flows._active or in_flight_payload`` exactly: queued
        or cursor state is live at the owning shard, in-flight cells are
        live at their *sender* for lockstep sends (sent within the last
        ``delay`` slots) and at their *receiver* for initial-wire cells.
        """
        if self.pend_ptr < len(self.pending):
            return True
        arrs = self.init_arrs
        ptr = self.init_ptr
        while ptr < len(arrs) and arrs[ptr] < tau:
            ptr += 1
        self.init_ptr = ptr
        if ptr < len(arrs):
            return True
        hist = self.sent_hist
        edge = tau - self.delay
        while hist and hist[0][0] < edge:
            self.sent_sum -= hist.popleft()[1]
        return bool(self.sent_sum or self.n_has_flow or self.q_cells)

    def _rx2(self, t: int) -> None:
        gtrig = self.trigbuf.pop(t, None)
        gvals = None
        if gtrig is not None and gtrig.size:
            gvals = _VectorRun._draw(self, int(gtrig.size))
        self._stash = self._empty
        self._stash_pos = 0
        batch = self.rxbuf.pop(t, None)
        if batch is None:
            return
        senders, cells, recvs, esph = batch
        m = senders.size
        self.m_arr += m
        d = self.c_dst[cells]
        deliver = d == recvs
        emask = self.c_sprays[cells] > 0
        if gvals is not None:
            mine = senders[emask & ~deliver]
            if mine.size:
                self._stash = gvals[np.searchsorted(gtrig, mine)]
        del_ids = deliver.nonzero()[0]
        cnt = del_ids.size
        if cnt:
            dc = cells[del_ids]
            self.m_del += cnt
            self.m_windel += cnt
            take = cnt if self.want_digest else min(
                cnt, self.lat_room - self.rec_n
            )
            if take > 0:
                rec = self.rec
                rec["t"].append(np.full(take, t, dtype=np.int64))
                rec["s"].append(senders[del_ids[:take]])
                rec["lat"].append(t - self.c_created[dc[:take]])
                if self.want_digest:
                    rec["fid"].append(self.c_fid[dc])
                    rec["seq"].append(self.c_seq[dc])
                    rec["src"].append(self.c_src[dc])
                    rec["dst"].append(d[del_ids])
                    rec["hops"].append(self.c_hops[dc])
                self.rec_n += take
            self.delivered_vec[recvs[del_ids]] += 1
            fids = self.c_fid[dc]
            self._ensure_flow(int(fids.max()))
            fd = self.f_del[fids] + 1
            self.f_del[fids] = fd
            complete = fd >= self.c_fsize[dc]
            if np.count_nonzero(complete):
                comps = self.comps
                for s_, f_ in zip(
                    senders[del_ids][complete].tolist(),
                    fids[complete].tolist(),
                ):
                    comps.append((t, s_, f_))
            self._free_cells(dc)
            fwd_ids = (~deliver).nonzero()[0]
            if fwd_ids.size:
                self.q_cells += fwd_ids.size
                self._forward(cells[fwd_ids], recvs[fwd_ids], t,
                              d[fwd_ids], emask[fwd_ids], esph)
        elif m:
            self.q_cells += m
            self._forward(cells, recvs, t, d, emask, esph)

    def _inject2(self, t: int) -> None:
        pend = self.pending
        ptr = self.pend_ptr
        while ptr < len(pend) and pend[ptr][0] <= t:
            _, src, dst, size_cells, _, fid = pend[ptr]
            ptr += 1
            self._ensure_flow(fid)
            self.f_del[fid] = 0
            if self.has_flow[src]:
                self.waiting[src].append((fid, dst, 0, size_cells))
            else:
                self.has_flow[src] = True
                self.cur_fid[src] = fid
                self.cur_dst[src] = dst
                self.cur_sent[src] = 0
                self.cur_size[src] = size_cells
                self.n_has_flow += 1
        self.pend_ptr = ptr

    def _tx2(self, t: int, slot: int, phase: int) -> None:
        lo, hi = self.lo, self.hi
        n = self.n
        link = self.link_table[slot]
        hloc = self.heads2d[link, lo:hi]
        pop = hloc >= 0
        pop_ids = pop.nonzero()[0]
        npop = pop_ids.size
        if npop:
            gids = pop_ids + lo
            c = hloc[pop_ids]
            nh = self.c_nxt[c]
            hloc[pop_ids] = nh
            emt = (nh < 0).nonzero()[0]
            if emt.size:
                g = gids[emt]
                self.q_tail[link][g] = link * n + g
            self.q_len[link][gids] -= 1
            self.q_cells -= npop
            if self.hm1 <= 1:
                self.c_sprays[c] = 0
            else:
                sp = self.c_sprays[c]
                self.c_sprays[c] = sp - (sp > 0)
            self.c_prev[c] = gids
            self.c_hops[c] += 1
        emit = self.has_flow[lo:hi] & ~pop
        e = emit.nonzero()[0]
        k = e.size
        esph = (phase + 1) % self.h
        if k:
            ge = e + lo
            rows = self._alloc(k)
            V = self._ev[:, :k]
            V[0] = ge
            V[1] = self.cur_dst[ge]
            V[2] = self.cur_fid[ge]
            s = self.cur_sent[ge]
            V[3] = s
            V[4] = self.hm1
            V[5] = ge
            V[6] = t
            V[7] = esph
            sz = self.cur_size[ge]
            V[8] = sz
            V[9] = 1
            V[10] = t
            V[11] = -1
            self._slab[:, rows] = V
            s += 1
            self.cur_sent[ge] = s
            self.m_inj += k
            done = s >= sz
            if np.count_nonzero(done):
                for gi in ge[done].tolist():
                    queue = self.waiting[gi]
                    if queue:
                        fid2, dst2, sent2, size2 = queue.popleft()
                        self.cur_fid[gi] = fid2
                        self.cur_dst[gi] = dst2
                        self.cur_sent[gi] = sent2
                        self.cur_size[gi] = size2
                    else:
                        self.has_flow[gi] = False
                        self.n_has_flow -= 1
        entry = {"ents": [None] * self.K, "own": None, "trig": self._empty}
        if npop and k:
            cat = np.concatenate((pop_ids + lo, e + lo))
            perm = cat.argsort(kind="stable")
            senders = cat[perm]
            cells = np.concatenate((c, rows))[perm]
        elif npop:
            senders = pop_ids + lo
            cells = c
        elif k:
            senders = e + lo
            cells = rows
        else:
            self.round_slots.append(entry)
            return
        m = senders.size
        recvs = self.nbr[slot][senders]
        dsts = self.c_dst[cells]
        tmask = (self.c_sprays[cells] > 0) & (recvs != dsts)
        if tmask.any():
            entry["trig"] = senders[tmask]
        ws = np.searchsorted(self.starts, recvs, side="right") - 1
        own_mask = ws == self.k
        if own_mask.all():
            entry["own"] = (senders, cells)
        else:
            for j in range(self.K):
                mask = ws == j
                if not mask.any():
                    continue
                if j == self.k:
                    entry["own"] = (senders[mask], cells[mask])
                else:
                    entry["ents"][j] = (
                        senders[mask], self._slab[:11, cells[mask]]
                    )
            self._free_cells(cells[~own_mask])
        self.m_sent += m
        self.sent_hist.append((t, m))
        self.sent_sum += m
        self.round_slots.append(entry)

    def _sample2(self, t: int) -> None:
        lo, hi = self.lo, self.hi
        q = self.q_len[:, lo:hi]
        total_enq = q.sum(axis=0)
        qt = q.T
        self.windows.append({
            "t": t,
            "win": self.m_windel,
            "dcum": self.m_del,
            "icum": self.m_inj,
            "scum": self.m_sent,
            "net": self.m_sent - self.m_arr,
            "queued": int(total_enq.sum()),
            "mq": int(q.max()) if q.size else 0,
            "mb": int(total_enq.max()) if total_enq.size else 0,
            "pk": int(self.q_peak[:, lo:hi].max()) if q.size else 0,
            "buf": total_enq,
            "qnz": qt[qt > 0],
        })
        self.m_windel = 0

    # ------------------------------------------------------------------ #
    # the round loop and the mailbox exchange

    def run_segment(self) -> dict:
        t = self.t0
        end = self.t_end
        round_idx = 0
        t_star = end
        while t < end:
            B = min(self.delay, end - t)
            self.round_slots = []
            self.round_live = []
            for i in range(B):
                tau = t + i
                self.round_live.append(
                    self._live(tau) if self.drain else True
                )
                slot = tau % self.epoch
                if tau in self.trigbuf or tau in self.rxbuf:
                    self._rx2(tau)
                pend = self.pending
                if self.pend_ptr < len(pend) \
                        and pend[self.pend_ptr][0] <= tau:
                    self._inject2(tau)
                self._tx2(tau, slot, self.phase_table[slot])
                if tau >= self.warmup and tau % self.interval == 0:
                    self._sample2(tau)
            dead_at = self._exchange(t, B, round_idx)
            t += B
            round_idx += 1
            if dead_at is not None:
                t_star = dead_at
                break
        return self._result(t_star, t)

    def _exchange(self, r0: int, B: int, round_idx: int):
        """Swap one round of sub-batches; returns the first globally
        quiescent slot of the round (drain mode), else None."""
        K = self.K
        k = self.k
        slots = self.round_slots
        lives = self.round_live
        for j in range(K):
            if j == k:
                continue
            payload = [
                (slots[i]["ents"][j], slots[i]["trig"], lives[i])
                for i in range(B)
            ]
            self.mail[j].put((self.seg, round_idx, k, payload))
        contrib: Dict[int, list] = {}
        backlog = self.backlog
        for src in range(K):
            if src == k:
                continue
            got = backlog.pop((round_idx, src), None)
            if got is not None:
                contrib[src] = got
        while len(contrib) < K - 1:
            seg, rnd, src, payload = self.mymail.get()
            if seg != self.seg:
                continue
            if rnd != round_idx:
                backlog[(rnd, src)] = payload
                continue
            contrib[src] = payload
        all_dead = [self.drain] * B
        for i in range(B):
            tau = r0 + i
            arr = tau + self.delay
            sslot = tau % self.epoch
            subs_s: List[np.ndarray] = []
            subs_r: List[np.ndarray] = []
            trigs: List[np.ndarray] = []
            for src in range(K):
                if src == k:
                    ent = slots[i]["own"]
                    tg = slots[i]["trig"]
                    lv = lives[i]
                else:
                    ent, tg, lv = contrib[src][i]
                    if ent is not None:
                        senders, cols = ent
                        rows = self._alloc(senders.size)
                        self._slab[:11, rows] = cols
                        self.c_nxt[rows] = -1
                        ent = (senders, rows)
                if lv:
                    all_dead[i] = False
                if ent is not None:
                    subs_s.append(ent[0])
                    subs_r.append(ent[1])
                if tg is not None and tg.size:
                    trigs.append(tg)
            if trigs:
                self.trigbuf[arr] = (
                    trigs[0] if len(trigs) == 1 else np.concatenate(trigs)
                )
            if subs_s:
                senders = (
                    subs_s[0] if len(subs_s) == 1
                    else np.concatenate(subs_s)
                )
                rows = (
                    subs_r[0] if len(subs_r) == 1
                    else np.concatenate(subs_r)
                )
                self.rxbuf[arr] = (
                    senders, rows, self.nbr[sslot][senders],
                    (self.phase_table[sslot] + 1) % self.h,
                )
        if self.drain:
            for i in range(B):
                if all_dead[i]:
                    return r0 + i
        return None

    # ------------------------------------------------------------------ #
    # result gather

    def _result(self, t_star: int, t_end: int) -> dict:
        lo, hi = self.lo, self.hi
        nxt = self.c_nxt.tolist()
        heads = self.heads2d
        counts = np.zeros((hi - lo, self.L), dtype=np.int64)
        rows_all: List[int] = []
        append = rows_all.append
        for li in range(hi - lo):
            i = lo + li
            for l in range(self.L):
                row = int(heads[l, i])
                c0 = len(rows_all)
                while row >= 0:
                    append(row)
                    row = nxt[row]
                counts[li, l] = len(rows_all) - c0
        ra = np.array(rows_all, dtype=np.int64)
        rec = {
            name: (
                np.concatenate(chunks) if chunks else
                np.empty(0, dtype=np.int64)
            )
            for name, chunks in self.rec.items()
        }
        wire = []
        for arr in sorted(self.rxbuf):
            senders, rows, recvs, _ = self.rxbuf[arr]
            wire.append((arr, senders, self._slab[:11, rows], recvs))
        fid_nz = np.flatnonzero(self.f_del[: self.f_cap])
        return {
            "queues": {
                "counts": counts,
                "peaks": self.q_peak[:, lo:hi].T.copy(),
                "cols": (
                    self._slab[:11, ra] if ra.size
                    else np.empty((11, 0), dtype=np.int64)
                ),
            },
            "cursor": {
                "has": self.has_flow[lo:hi].copy(),
                "fid": self.cur_fid[lo:hi].copy(),
                "dst": self.cur_dst[lo:hi].copy(),
                "sent": self.cur_sent[lo:hi].copy(),
                "size": self.cur_size[lo:hi].copy(),
                "waiting": [
                    list(self.waiting[i]) for i in range(lo, hi)
                ],
            },
            "fdel": [
                (int(f), int(self.f_del[f])) for f in fid_nz.tolist()
            ],
            "dvec": self.delivered_vec[lo:hi].copy(),
            "rec": rec,
            "comps": self.comps,
            "windows": self.windows,
            "final": {
                "dcum": self.m_del,
                "icum": self.m_inj,
                "scum": self.m_sent,
                "net": self.m_sent - self.m_arr,
                "maxq": self.engine.metrics.max_queue_length,
                "windel": self.m_windel,
            },
            "wire": wire,
            "words": self.words_consumed,
            "t_star": t_star,
        }


def _shard_worker_main(idx, count, task_queue, result_queue, mail_queues):
    """Entry point of one persistent shard worker process."""
    tables_cache: Dict[Any, dict] = {}
    while True:
        msg = task_queue.get()
        if msg is None:
            return
        _, segment, task = msg
        try:
            key = task["tables_key"]
            shipped = task.get("tables")
            if shipped is not None:
                tables = dict(shipped)
                tables["qt"] = build_hop_tables(
                    tables["n"], tables["h"], tables["r"]
                )
                tables_cache[key] = tables
            task["seg"] = segment
            run = _WorkerRun(
                idx, count, tables_cache[key], task, mail_queues
            )
            result_queue.put((idx, segment, "ok", run.run_segment()))
        except Exception:
            result_queue.put(
                (idx, segment, "error", traceback.format_exc())
            )


@register_backend("shard")
class ShardBackend(EngineBackend):
    """Multi-process sharded stepper with per-state fallback.

    Scatter/gather happens once per ``step_slots``/``drain_slots``
    segment, not per slot: the parent packs the object model into
    per-shard column payloads, the workers advance in lockstep rounds,
    and the parent replays the results back into the authoritative
    object model (see the module docstring for the protocol).  States
    the vector stepper cannot accelerate fall back to the reference
    pipeline exactly as ``"vector"`` does; configurations where sharding
    cannot pay (one shard, zero propagation delay, no ``fork``) run on
    the in-process vector stepper instead — still accelerated, so
    ``backend_effective`` stays ``"shard"`` and manifests remain
    shard-count-invariant.
    """

    __slots__ = ("_inner", "dispatches")

    def __init__(self) -> None:
        self._inner = VectorBackend()
        #: pool segments dispatched (observability + tests' engage guard)
        self.dispatches = 0

    # -------------------------------------------------------------- #
    # driver

    def _reference(self, engine, end, step, drain) -> None:
        if drain:
            while engine.t < end and (
                engine._pending_flows
                or engine.flows.active_count
                or engine._in_flight_payload
            ):
                step()
        else:
            while engine.t < end:
                step()

    def _run(self, engine, end: int, step, drain: bool) -> None:
        if engine.t >= end:
            return
        if drain and not (
            engine._pending_flows
            or engine.flows.active_count
            or engine._in_flight_payload
        ):
            return
        reason = _fast_ineligible_reason(engine)
        if reason is not None:
            engine.note_backend_effective("object", reason)
            self._reference(engine, end, step, drain)
            return
        cfg = engine.config
        ranges = shard_ranges(cfg.n, engine.coords.r, default_shards())
        if len(ranges) < 2 or cfg.propagation_delay < 1:
            # nothing to shard over (or no lockstep window): run the
            # in-process vector stepper — still accelerated, so this is
            # not a reference fallback and backend_effective is unchanged
            self._inner._run(engine, end, step, drain)
            return
        try:
            pool = get_shard_pool(len(ranges), _shard_worker_main)
        except (ImportError, OSError, ValueError):
            self._inner._run(engine, end, step, drain)
            return
        metrics = engine.metrics
        if not metrics._measuring and engine.t < metrics.warmup < end:
            # split at the warm-up boundary so the measurement crossing
            # (a per-slot check in the single-process loop) happens
            # between segments, at exactly the same slot
            segments = [metrics.warmup, end]
        else:
            segments = [end]
            if not metrics._measuring and engine.t >= metrics.warmup:
                metrics.begin_measurement()
                if engine.telemetry is not None:
                    engine.telemetry.resnapshot(metrics)
        for si, seg_end in enumerate(segments):
            if si:
                # the crossing mirrors the single-process slot order:
                # the drain predicate is re-tested first, because a run
                # that drains at the boundary breaks *before* crossing
                if drain and not (
                    engine._pending_flows
                    or engine.flows.active_count
                    or engine._in_flight_payload
                ):
                    return
                metrics.begin_measurement()
                if engine.telemetry is not None:
                    engine.telemetry.resnapshot(metrics)
            if engine.t >= seg_end:
                continue
            profiler = engine.profiler
            if profiler is None:
                self._segment(engine, seg_end, step, drain, ranges, pool)
            else:
                w0 = profiler.clock()
                self._segment(engine, seg_end, step, drain, ranges, pool)
                profiler.add(0.0, 0.0, 0.0, profiler.clock() - w0, 0.0, 0.0)

    def step_slots(self, engine, end: int, step) -> None:
        self._run(engine, end, step, drain=False)

    def drain_slots(self, engine, deadline: int, step) -> None:
        self._run(engine, deadline, step, drain=True)

    # -------------------------------------------------------------- #
    # one scatter -> lockstep -> gather segment

    def _segment(self, engine, end, step, drain, ranges, pool) -> None:
        scat = self._scatter(engine, engine.t, end, drain, ranges)
        if scat is None:
            # per-cell disqualification (headers the column layout cannot
            # carry): the inner vector backend re-derives the reason and
            # notes the de-acceleration itself
            self._inner._run(engine, end, step, drain)
            return
        tasks, init, rngpay = scat
        key = tasks[0]["tables_key"]
        results = None
        for attempt in range(2):
            if not pool.alive():
                pool.respawn()
            tables = None
            if key not in pool.shipped_tables:
                tables = self._tables_payload(engine)
            for task in tasks:
                task["tables"] = tables
            try:
                results = pool.run_segment(tasks)
                pool.shipped_tables.add(key)
                break
            except ShardWorkerError:
                pool.respawn()
                raise
            except ShardCrash:
                # the scatter was read-only, so the engine still holds
                # the authoritative pre-segment state: respawn and retry
                # the identical segment once, then fall back in-process
                pool.respawn()
                if attempt:
                    self._inner._run(engine, end, step, drain)
                    return
        self._apply(engine, results, ranges, init, rngpay, engine.t, drain)
        self.dispatches += 1

    def _tables_payload(self, engine) -> dict:
        nbr, link_table, _ = self._inner._tables(engine)
        cfg = engine.config
        schedule = engine.schedule
        return {
            "n": cfg.n,
            "h": cfg.h,
            "r": engine.coords.r,
            "delay": cfg.propagation_delay,
            "epoch": schedule.epoch_length,
            "phase_table": list(schedule.phase_table),
            "link_table": list(link_table),
            "nbr": nbr,
        }

    # -------------------------------------------------------------- #
    # scatter: object model -> per-shard column payloads (read-only)

    def _scatter(self, engine, t0, end, drain, ranges):
        rngpay = _rng_state_payload(engine.rng)
        if rngpay is None:
            return None
        cfg = engine.config
        n = cfg.n
        K = len(ranges)
        metrics = engine.metrics
        flows = engine.flows
        L = cfg.h * (engine.coords.r - 1)
        shard_of = np.empty(n, dtype=np.int64)
        for k, (lo, hi) in enumerate(ranges):
            shard_of[lo:hi] = k
        shard_of_l = shard_of.tolist()

        def cell_row(cell):
            return (
                cell.src, cell.dst, cell.flow_id, cell.seq,
                cell.sprays_remaining, cell.prev_hop, cell.created_at,
                cell.spray_phase, cell.flow_size, cell.hops,
                cell.enqueued_at,
            )

        queues = []
        cursors = []
        for lo, hi in ranges:
            counts = np.zeros((hi - lo, L), dtype=np.int64)
            peaks = np.zeros((hi - lo, L), dtype=np.int64)
            rows: List[tuple] = []
            has = np.zeros(hi - lo, dtype=bool)
            cfid = np.zeros(hi - lo, dtype=np.int64)
            cdst = np.zeros(hi - lo, dtype=np.int64)
            csent = np.zeros(hi - lo, dtype=np.int64)
            csize = np.zeros(hi - lo, dtype=np.int64)
            waitlists = []
            for li in range(hi - lo):
                node = engine.nodes[lo + li]
                for l, queue in enumerate(node.link_queues):
                    items = queue._items
                    counts[li, l] = len(items)
                    peaks[li, l] = queue.peak_occupancy
                    for cell in items:
                        if cell.dummy or cell.spray_phase < 0:
                            return None
                        rows.append(cell_row(cell))
                live = [
                    f for f in node.local_flows if f.sent < f.size_cells
                ]
                wl: List[tuple] = []
                if live:
                    cursor = live[0]
                    has[li] = True
                    cfid[li] = cursor.flow_id
                    cdst[li] = cursor.dst
                    csent[li] = cursor.sent
                    csize[li] = cursor.size_cells
                    wl = [
                        (f.flow_id, f.dst, f.sent, f.size_cells)
                        for f in live[1:]
                    ]
                waitlists.append(wl)
            queues.append({
                "counts": counts,
                "peaks": peaks,
                "cols": (
                    np.array(rows, dtype=np.int64).T if rows
                    else np.empty((11, 0), dtype=np.int64)
                ),
            })
            cursors.append({
                "has": has, "fid": cfid, "dst": cdst,
                "sent": csent, "size": csize, "waiting": waitlists,
            })
        # the wire, grouped into per-arrival batches and split by the
        # receiver's shard; the global trigger list (ascending senders of
        # draw-consuming cells) ships to every shard
        batches: List[tuple] = []
        cur = None
        for tx in engine._in_flight:
            cell = tx.cell
            if tx.tokens or tx.ctrl or cell is None or cell.dummy \
                    or cell.spray_phase < 0:
                return None
            if cur is None or tx.arrival != cur[0]:
                cur = (tx.arrival, [], [], [])
                batches.append(cur)
            cur[1].append(tx.sender)
            cur[2].append(cell_row(cell))
            cur[3].append(tx.receiver)
        wire: List[list] = [[] for _ in range(K)]
        wire_trig: List[tuple] = []
        for arr, sl, rl, vl in batches:
            senders = np.array(sl, dtype=np.int64)
            if senders.size > 1 and np.any(np.diff(senders) <= 0):
                return None  # non-FIFO wire order: not shardable
            cols = np.array(rl, dtype=np.int64).T
            recvs = np.array(vl, dtype=np.int64)
            spraying = cols[4] > 0
            trig = senders[spraying & (recvs != cols[1])]
            if trig.size:
                wire_trig.append((arr, trig))
            esph = int(cols[7][spraying.nonzero()[0][0]]) \
                if spraying.any() else 0
            ws = shard_of[recvs]
            for k in range(K):
                mask = ws == k
                if mask.any():
                    wire[k].append(
                        (arr, senders[mask], cols[:, mask],
                         recvs[mask], esph)
                    )
        # pending flow arrivals, bucketed by source shard with their
        # flow ids precomputed from the global injection order
        pend: List[list] = [[] for _ in range(K)]
        next_id = flows._next_id
        for off, entry in enumerate(engine._pending_flows):
            arrival, src, dst, size_cells, size_bytes = entry
            pend[shard_of_l[src]].append(
                (arrival, src, dst, size_cells, size_bytes,
                 next_id + off)
            )
        # per-flow delivered preloads go to the destination's shard only,
        # so every worker report is authoritative for its flows
        fdel: List[list] = [[] for _ in range(K)]
        for fid, flow in flows._active.items():
            if flow.delivered:
                fdel[shard_of_l[flow.dst]].append((fid, flow.delivered))
        lat_room = max(
            0, metrics._cell_latency_cap - len(metrics.cell_latencies)
        )
        tables_key = (
            getattr(cfg, "schedule", ""), n, cfg.h, engine.coords.r,
            cfg.propagation_delay,
        )
        tasks = []
        for k in range(K):
            tasks.append({
                "t0": t0, "t1": end, "drain": drain,
                "warmup": metrics.warmup,
                "interval": metrics.sample_interval,
                "lat_room": lat_room,
                "digest": engine.digest is not None,
                "ranges": ranges,
                "rng": rngpay,
                "tables_key": tables_key,
                "queues": queues[k],
                "cursor": cursors[k],
                "wire": wire[k],
                "wire_trig": wire_trig,
                "pending": pend[k],
                "fdel": fdel[k],
            })
        init = {
            "delivered": metrics.cells_delivered,
            "pdelivered": metrics.payload_cells_delivered,
            "injected": metrics.cells_injected,
            "sent": metrics.cells_sent,
            "ifp": engine._in_flight_payload,
            "maxq": metrics.max_queue_length,
        }
        return tasks, init, rngpay

    # -------------------------------------------------------------- #
    # gather: worker results -> authoritative object model

    def _apply(self, engine, results, ranges, init, rngpay, t0, drain):
        metrics = engine.metrics
        flows = engine.flows
        events = engine.events
        digest = engine.digest
        telemetry = engine.telemetry
        K = len(ranges)
        t_star = results[0]["t_star"]
        words = results[0]["words"]
        for res in results[1:]:
            if res["t_star"] != t_star or res["words"] != words:
                raise AssertionError(
                    "shard workers diverged (stop slot / RNG words)"
                )
        # delivery records, merged back into global batch order: within
        # a slot batches are ascending-sender, so (t, sender) sorts the
        # per-worker record streams into the single-process fold order
        rec_t = np.concatenate([r["rec"]["t"] for r in results])
        rec_s = np.concatenate([r["rec"]["s"] for r in results])
        rec_lat = np.concatenate([r["rec"]["lat"] for r in results])
        order = np.lexsort((rec_s, rec_t))
        if digest is not None and order.size:
            fold = digest._fold
            cols = [
                np.concatenate([r["rec"][name] for r in results])[order]
                for name in ("fid", "seq", "src", "dst", "hops")
            ]
            for fid, seq, src, dst, hops, t in zip(
                cols[0].tolist(), cols[1].tolist(), cols[2].tolist(),
                cols[3].tolist(), cols[4].tolist(),
                rec_t[order].tolist(),
            ):
                fold((_EV_DELIVERY, fid, seq, src, dst, hops, t))
        latencies = metrics.cell_latencies
        cap = metrics._cell_latency_cap
        room = cap - len(latencies)
        if room > 0 and order.size:
            lats = rec_lat[order]
            latencies.extend(
                lats.tolist() if room >= lats.size
                else lats[:room].tolist()
            )
        # flow completions (ascending (t, sender) restores the in-batch
        # finalize order), injections and sample windows replay in one
        # time-ordered sweep with the single-process within-slot order:
        # completions, then injections, then the window close
        comps = sorted(c for r in results for c in r["comps"])
        pending = engine._pending_flows
        injections = []
        while pending:
            arrival = pending[0][0]
            t_inj = arrival if arrival > t0 else t0
            if t_inj >= t_star:
                break
            injections.append((t_inj,) + tuple(pending.popleft()))
        win_rows: Dict[int, list] = {}
        for k, res in enumerate(results):
            for row in res["windows"]:
                win_rows.setdefault(row["t"], [None] * K)[k] = row
        win_ts = sorted(win_rows)
        sweep_ts = sorted(
            {c[0] for c in comps}
            | {i[0] for i in injections}
            | {t for t in win_ts if t < t_star}
        )
        ci = ii = 0
        dropped_win = sum(
            row["win"]
            for t in win_ts if t >= t_star
            for row in win_rows[t]
        )
        for t in sweep_ts:
            while ci < len(comps) and comps[ci][0] == t:
                _, _, fid = comps[ci]
                ci += 1
                flow = flows._active.get(fid)
                if flow is None:
                    continue
                flow.delivered = flow.size_cells
                record = flows.finalize(flow, t)
                if events is not None:
                    events.emit(t, "flow_end", {
                        "flow": record.flow_id, "src": record.src,
                        "dst": record.dst, "cells": record.size_cells,
                        "fct": record.fct,
                    })
            while ii < len(injections) and injections[ii][0] == t:
                _, arrival, src, dst, size_cells, size_bytes = \
                    injections[ii]
                ii += 1
                flow = flows.new_flow(
                    src, dst, size_cells, arrival, size_bytes=size_bytes
                )
                if events is not None:
                    events.emit(t, "flow_start", {
                        "flow": flow.flow_id, "src": src, "dst": dst,
                        "cells": size_cells,
                    })
            rows = win_rows.get(t)
            if rows is None or t >= t_star:
                continue
            if any(r is None for r in rows):
                raise AssertionError("shard sample windows diverged")
            metrics.cells_delivered = init["delivered"] + sum(
                r["dcum"] for r in rows
            )
            metrics.payload_cells_delivered = init["pdelivered"] + sum(
                r["dcum"] for r in rows
            )
            metrics.cells_injected = init["injected"] + sum(
                r["icum"] for r in rows
            )
            metrics.cells_sent = init["sent"] + sum(
                r["scum"] for r in rows
            )
            engine._in_flight_payload = init["ifp"] + sum(
                r["net"] for r in rows
            )
            for r in rows:
                metrics._buffer_samples.extend(r["buf"])
            mb = max(r["mb"] for r in rows)
            if mb > metrics.max_buffer_occupancy:
                metrics.max_buffer_occupancy = mb
            for r in rows:
                metrics._queue_samples.extend(r["qnz"])
            pk = max(r["pk"] for r in rows)
            if pk > metrics.max_pieo_length:
                metrics.max_pieo_length = pk
            metrics._window_delivered += sum(r["win"] for r in rows)
            metrics.end_sample_window()
            if telemetry is not None:
                telemetry.on_window_stats(
                    engine, t,
                    queued=sum(r["queued"] for r in rows),
                    max_queue=max(r["mq"] for r in rows),
                    max_buffer=mb,
                    active_buckets=0,
                )
        # final counters and maxima.  The buffer/PIEO maxima come only
        # from the replayed (valid) windows above — worker-side cumulative
        # peaks may include overrun slots past the quiescent stop —
        # while max_queue_length is enqueue-driven and overrun slots
        # provably enqueue nothing, so the worker cums are exact.
        finals = [r["final"] for r in results]
        metrics.cells_delivered = init["delivered"] + sum(
            f["dcum"] for f in finals
        )
        metrics.payload_cells_delivered = init["pdelivered"] + sum(
            f["dcum"] for f in finals
        )
        metrics.cells_injected = init["injected"] + sum(
            f["icum"] for f in finals
        )
        metrics.cells_sent = init["sent"] + sum(f["scum"] for f in finals)
        engine._in_flight_payload = init["ifp"] + sum(
            f["net"] for f in finals
        )
        maxq = max(init["maxq"], max(f["maxq"] for f in finals))
        if maxq > metrics.max_queue_length:
            metrics.max_queue_length = maxq
        metrics._window_delivered += dropped_win + sum(
            f["windel"] for f in finals
        )
        per_node = metrics.delivered_per_node
        for k, res in enumerate(results):
            lo = ranges[k][0]
            for i, v in enumerate(res["dvec"].tolist()):
                if v:
                    per_node[lo + i] = per_node.get(lo + i, 0) + v
        for res in results:
            for fid, delivered in res["fdel"]:
                flow = flows._active.get(fid)
                if flow is not None:
                    flow.delivered = delivered
        # queues, cursors and the active set
        engine._active_ids.clear()
        placed = set()
        for k, res in enumerate(results):
            lo, hi = ranges[k]
            q = res["queues"]
            made = _cells_from_cols(q["cols"])
            counts = q["counts"].tolist()
            peaks = q["peaks"].tolist()
            cur = res["cursor"]
            has_l = cur["has"].tolist()
            fid_l = cur["fid"].tolist()
            sent_l = cur["sent"].tolist()
            pos = 0
            for li in range(hi - lo):
                node = engine.nodes[lo + li]
                per_link = []
                for cnt in counts[li]:
                    per_link.append(made[pos:pos + cnt])
                    pos += cnt
                node.absorb_shard_state(per_link, peaks[li])
                local = []
                if has_l[li]:
                    flow = flows._active[fid_l[li]]
                    flow.sent = sent_l[li]
                    local.append(flow)
                    placed.add(fid_l[li])
                for wfid, _, wsent, _ in cur["waiting"][li]:
                    flow = flows._active[wfid]
                    flow.sent = wsent
                    local.append(flow)
                    placed.add(wfid)
                node.local_flows = local
                if local or node.total_enqueued:
                    engine._active_ids.add(lo + li)
        # every other active flow has finished sending (it is held by no
        # cursor or waiting list), so its cursor position is its size
        for fid, flow in flows._active.items():
            if fid not in placed:
                flow.sent = flow.size_cells
        # the wire: leftover arrival batches, re-merged in send order
        in_flight = engine._in_flight
        in_flight.clear()
        ents = []
        for res in results:
            for arr, senders, cols, recvs in res["wire"]:
                for s, r, cell in zip(
                    senders.tolist(), recvs.tolist(),
                    _cells_from_cols(cols),
                ):
                    ents.append((arr, s, r, cell))
        ents.sort(key=lambda e: (e[0], e[1]))
        for arr, s, r, cell in ents:
            tx = Transmission(s, r, cell, (), ())
            tx.arrival = arr
            in_flight.append(tx)
        _resync_engine_rng(engine, rngpay, words)
        engine.t = t_star
