"""The vectorized numpy slot stepper.

Instead of one Python object pipeline per node per slot, this backend keeps
the whole network's mutable hot state in flat int64 columns and advances
every node in a timeslot with a handful of array operations:

* **cell slab** — one row per live cell, holding the eleven integer fields
  of :class:`~repro.core.cell.Cell` plus a ``nxt`` pointer that threads
  cells into per-(node, link) FIFO linked lists (the queue ``head`` /
  ``tail`` / ``qlen`` / ``peak`` columns are ``(L, n)`` arrays, one row per
  link index).  A freelist recycles slab rows as cells are delivered.
* **flow cursors** — per-node columns for the currently emitting flow
  (id, dst, sent, size) with the waiting flows in per-node Python lists;
  per-flow ``delivered`` / ``size`` columns detect completions by array
  compare instead of per-cell object updates.
* **wire** — in-flight transmissions as per-arrival-slot batches of
  (senders, slab rows, receivers) arrays; the send order within a batch is
  node-id order, exactly the FIFO order the object wire produces.

The backend is *bit-exact* with the object pipeline for the states it
accelerates, including RNG consumption: spraying draws are CPython's
``randrange(1, r)`` rejection loop, which the stepper reproduces by
mirroring the engine's Mersenne Twister into ``numpy.random.MT19937``
(word-for-word the same generator), bulk-generating raw 32-bit words, and
applying the same top-``bits`` / reject-``>= r-1`` rule — the k-th accepted
word *is* the k-th draw.  On unpack the engine's ``random.Random`` is
resynchronised by replaying exactly the consumed word count from the packed
state, so object-mode code continues the identical stream.

Anything outside the fast path — congestion-control machinery, non-vlb
routing, failure state, attached monitors/tracers/hooks — falls back to the
reference per-node pipeline (the engine's own ``step``), keeping every
configuration correct at the cost of speed.  Eligibility is decided once
per ``step_slots`` call: without a failure manager attached, no mid-run
event can create failure state, so an eligible segment stays eligible.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional

import numpy as np

from ...core.cell import Cell
from ..node import Transmission
from . import EngineBackend, register_backend

__all__ = ["VectorBackend"]

#: slab column names, in Cell.state() order (minus ``dummy``, always False
#: on the fast path) plus the queue linked-list pointer
_SLAB_COLS = (
    "c_src", "c_dst", "c_fid", "c_seq", "c_sprays", "c_prev",
    "c_created", "c_sphase", "c_fsize", "c_hops", "c_enqat", "c_nxt",
)

_EV_DELIVERY = 1  # DeterminismDigest delivery tag (see repro.sim.digest)


def _fast_ineligible_reason(engine):
    """Why the engine state is not vectorizable, or None if it is.

    Per-cell conditions (header tokens, dummies, unset spray hints) are
    verified during packing; this covers everything visible without
    walking queues.  The reason string feeds the de-acceleration notice
    (``Engine.note_backend_effective``), so it names the feature that
    forced the reference pipeline.
    """
    cfg = engine.config
    if cfg.congestion_control != "none":
        return f"congestion_control={cfg.congestion_control!r}"
    if cfg.routing != "vlb":
        return f"routing={cfg.routing!r}"
    if engine.failure_manager is not None:
        return "failure manager attached"
    if engine.monitor is not None:
        return "monitor attached"
    if engine.tracer is not None:
        return "tracer attached"
    if engine.delivery_hook is not None:
        return "delivery hook attached"
    if engine.force_full_scan or engine.failed_links:
        return "failed links present"
    if type(engine.rng) is not random.Random:
        return "non-standard RNG"
    for node in engine.nodes:
        if (
            node.failed
            or node.failed_neighbors
            or node.known_failed
            or node.link_invalid
            or node._force_dummy
            or node.pending_tokens
            or node.pending_ctrl
            or node.rtx_queue
        ):
            return f"node {node.node_id} carries non-vectorizable state"
    return None


def _fast_eligible(engine) -> bool:
    """Cheap checks that the engine state is vectorizable."""
    return _fast_ineligible_reason(engine) is None


def build_hop_tables(n: int, h: int, r: int):
    """The h=2 flat next-hop tables ``(qsel, nsel)``, or None.

    Indexed ``phase * n**2 + receiver * n + dst``: ``qsel`` holds
    ``link_index * n`` for the direct hop out of ``receiver`` toward
    ``dst`` at ``phase`` (or the other phase's when that digit already
    matches) and ``nsel`` the spray-phase hint for the next hop.  None for
    other ``h`` and for sizes where the 2*n**2 tables stop paying for
    themselves.  Shared by the vector backend and the shard workers (each
    worker rebuilds them locally instead of shipping 2*n**2 entries).
    """
    if h != 2 or 2 * n * n > 8_000_000:
        return None
    rm1 = r - 1
    ids = np.arange(n, dtype=np.int64)
    qbase = []
    match = []
    for p in (0, 1):
        digit = (ids // r ** (h - 1 - p)) % r
        off = (digit[None, :] - digit[:, None]) % r
        qbase.append(((p * rm1 + off - 1) * n).reshape(-1))
        match.append((off == 0).reshape(-1))
    nn = n * n
    qsel = np.empty(2 * nn, dtype=np.int64)
    nsel = np.empty(2 * nn, dtype=np.int64)
    for p in (0, 1):
        # a cell hinted at phase p takes phase p when that digit
        # mismatches, else the other phase (it cannot be home:
        # matched-everywhere cells get delivered, not forwarded); the
        # stored hint for the NEXT hop is the phase it did not take
        take_other = match[p]
        qsel[p * nn:(p + 1) * nn] = np.where(
            take_other, qbase[p ^ 1], qbase[p]
        )
        nsel[p * nn:(p + 1) * nn] = np.where(take_other, p, p ^ 1)
    return qsel, nsel


class _VectorRun:
    """One packed stretch of vector stepping over a single engine.

    Built by :meth:`VectorBackend._pack`, advanced by :meth:`advance`,
    written back by :meth:`unpack`.  The object model is stale while a run
    is packed and authoritative again after ``unpack``.
    """

    def __init__(self, engine, nbr, link_table, qt):
        self.engine = engine
        cfg = engine.config
        coords = engine.coords
        self.n = cfg.n
        self.h = cfg.h
        self.hm1 = cfg.h - 1
        self.r = coords.r
        self.rm1 = self.r - 1
        self.L = self.h * self.rm1
        self.delay = cfg.propagation_delay
        self.nbr = nbr
        self.link_table = link_table
        # h=2 next-hop table (see VectorBackend._tables); None for other h
        self.qsel, self.nsel = qt if qt is not None else (None, None)
        self.nn = self.n * self.n
        schedule = engine.schedule
        self.epoch = schedule.epoch_length
        self.phase_table = schedule.phase_table
        # digit weights of the coordinate system: weights[p] = r**(h-1-p)
        self.weights = np.array(
            [self.r ** (self.h - 1 - p) for p in range(self.h)],
            dtype=np.int64,
        )
        # spraying draw constants: randrange(1, r) = 1 + rejection-sampled
        # getrandbits((r-1).bit_length()) accepted below r-1
        self.spray_bits = self.rm1.bit_length()
        self.spray_shift = 32 - self.spray_bits
        # flat digit table, indexed ``p * n + x``: digit ``p`` of node
        # coordinate ``x`` (one cheap gather instead of a floordiv + mod
        # per cell in the next-hop scan)
        ids = np.arange(self.n, dtype=np.int64)
        self.digits = np.concatenate(
            [(ids // self.weights[p]) % self.r for p in range(self.h)]
        )
        # queue columns, one row per link index (plus flat aliases for the
        # RX scatter, which addresses queues as ``link * n + node``).
        # Queues are sentinel-headed linked lists: slab rows [0, L*n) are
        # reserved as one sentinel per queue, whose ``c_nxt`` entry IS the
        # queue's head pointer, and ``q_tail`` holds the last cell's row or
        # the queue's own sentinel (== its flat index) when empty — so an
        # append is an unconditional ``nxt[tail] = cell`` with no
        # empty/non-empty split
        self.Ln = self.L * self.n
        self.q_tail = np.arange(self.Ln, dtype=np.int64).reshape(
            self.L, self.n
        )
        self.q_len = np.zeros((self.L, self.n), dtype=np.int64)
        self.q_peak = np.zeros((self.L, self.n), dtype=np.int64)
        self.qf_tail = self.q_tail.reshape(-1)
        self.qf_len = self.q_len.reshape(-1)
        self.qf_peak = self.q_peak.reshape(-1)
        # per-node occupancy totals are derived from q_len on demand (at
        # sample windows and unpack), not maintained per slot
        # flow cursor columns + waiting lists
        self.has_flow = np.zeros(self.n, dtype=bool)
        self.cur_fid = np.zeros(self.n, dtype=np.int64)
        self.cur_dst = np.zeros(self.n, dtype=np.int64)
        self.cur_sent = np.zeros(self.n, dtype=np.int64)
        self.cur_size = np.zeros(self.n, dtype=np.int64)
        self.cur_flow: List[Optional[object]] = [None] * self.n
        self.waiting: List[deque] = [deque() for _ in range(self.n)]
        # per-flow completion columns
        self.f_cap = 64
        self.f_del = np.zeros(self.f_cap, dtype=np.int64)
        self.f_size = np.zeros(self.f_cap, dtype=np.int64)
        # per-destination delivery deltas, folded into the metrics dict at
        # unpack (the dict itself is too slow to touch per slot)
        self.delivered_vec = np.zeros(self.n, dtype=np.int64)
        # the wire: (arrival, senders, slab rows, receivers) per send slot
        self.batches: deque = deque()
        # constant emission-mask views for single-kind wire batches
        self._em_false = np.zeros(self.n, dtype=bool)
        self._em_true = np.ones(self.n, dtype=bool)
        # scratch: one column block per emission slot, scattered into the
        # slab in a single 2-D write
        self._ev = np.empty((len(_SLAB_COLS), self.n), dtype=np.int64)
        # RNG mirror state (filled by pack)
        self.rng_prestate = None
        self.bg = None
        self.acc_vals = np.empty(0, dtype=np.int64)
        self.acc_end = np.empty(0, dtype=np.int64)
        self.acc_pos = 0
        self.words_generated = 0
        self.words_consumed = 0

    # ------------------------------------------------------------------ #
    # slab management

    def _init_slab(self, count: int) -> None:
        cap = self.Ln + max(1024, 2 * (count + self.n))
        self.cap = cap
        # one (column, row) block; the per-column attributes are row views
        # into it, so emissions can write all twelve fields of a cell with
        # a single 2-D scatter.  Rows [0, Ln) are the queue sentinels.
        self._slab = np.zeros((len(_SLAB_COLS), cap), dtype=np.int64)
        for i, name in enumerate(_SLAB_COLS):
            setattr(self, name, self._slab[i])
        self.c_nxt.fill(-1)
        self.heads2d = self.c_nxt[: self.Ln].reshape(self.L, self.n)
        self.free = np.empty(cap, dtype=np.int64)
        self.free_top = 0

    def _grow_slab(self, need: int) -> None:
        old = self.cap
        cap = old * 2
        while cap - old < need:
            cap *= 2
        slab = np.zeros((len(_SLAB_COLS), cap), dtype=np.int64)
        slab[:, :old] = self._slab
        self._slab = slab
        for i, name in enumerate(_SLAB_COLS):
            setattr(self, name, slab[i])
        self.heads2d = self.c_nxt[: self.Ln].reshape(self.L, self.n)
        self.free = np.concatenate(
            [self.free[: self.free_top], np.arange(old, cap, dtype=np.int64),
             np.zeros(old - self.free_top, dtype=np.int64)]
        )
        self.free_top += cap - old
        self.cap = cap

    def _alloc(self, k: int) -> np.ndarray:
        if self.free_top < k:
            self._grow_slab(k)
        top = self.free_top - k
        ids = self.free[top : self.free_top].copy()
        self.free_top = top
        return ids

    def _free_cells(self, ids: np.ndarray) -> None:
        m = ids.size
        self.free[self.free_top : self.free_top + m] = ids
        self.free_top += m

    def _ensure_flow(self, fid: int) -> None:
        if fid >= self.f_cap:
            cap = self.f_cap * 2
            while cap <= fid:
                cap *= 2
            pad = np.zeros(cap - self.f_cap, dtype=np.int64)
            self.f_del = np.concatenate([self.f_del, pad])
            self.f_size = np.concatenate([self.f_size, pad])
            self.f_cap = cap

    # ------------------------------------------------------------------ #
    # RNG mirror

    def _mirror_rng(self) -> bool:
        state = self.engine.rng.getstate()
        if state[0] != 3 or state[2] is not None:
            return False
        key = state[1]
        self.rng_prestate = {
            "bit_generator": "MT19937",
            "state": {
                "key": np.array(key[:-1], dtype=np.uint32),
                "pos": int(key[-1]),
            },
        }
        self.bg = np.random.MT19937()
        self.bg.state = self.rng_prestate
        return True

    def _refill(self, k: int) -> None:
        m = max(8192, 4 * k)
        words = self.bg.random_raw(m)
        vals = (words >> np.uint64(self.spray_shift)).astype(np.int64) \
            if words.dtype == np.uint64 \
            else (words >> self.spray_shift).astype(np.int64)
        idx = np.flatnonzero(vals < self.rm1)
        pos = self.acc_pos
        self.acc_vals = np.concatenate([self.acc_vals[pos:], vals[idx]])
        self.acc_end = np.concatenate(
            [self.acc_end[pos:],
             self.words_generated + idx.astype(np.int64) + 1]
        )
        self.acc_pos = 0
        self.words_generated += m

    def _draw(self, k: int) -> np.ndarray:
        """The next ``k`` accepted spraying values, in stream order."""
        while self.acc_vals.size - self.acc_pos < k:
            self._refill(k)
        pos = self.acc_pos
        out = self.acc_vals[pos : pos + k]
        self.acc_pos = pos + k
        self.words_consumed = int(self.acc_end[pos + k - 1])
        return out

    def _resync_rng(self) -> None:
        """Advance the engine's Random past the words the stepper consumed."""
        if not self.words_consumed:
            return
        bg = np.random.MT19937()
        bg.state = self.rng_prestate
        bg.random_raw(self.words_consumed)
        s = bg.state["state"]
        self.engine.rng.setstate(
            (3, tuple(int(x) for x in s["key"]) + (int(s["pos"]),), None)
        )

    # ------------------------------------------------------------------ #
    # pack / unpack

    def pack(self) -> bool:
        """Read the object model into columns; True on success.

        Purely read-only until the final commit (clearing the object wire),
        so a mid-scan disqualification leaves the engine untouched.
        """
        engine = self.engine
        if not self._mirror_rng():
            return False
        count = sum(node.total_enqueued for node in engine.nodes)
        count += len(engine._in_flight)
        self._init_slab(count)
        nid = self.Ln  # cell rows start past the queue sentinels
        c_src = self.c_src
        c_dst = self.c_dst
        c_fid = self.c_fid
        c_seq = self.c_seq
        c_sprays = self.c_sprays
        c_prev = self.c_prev
        c_created = self.c_created
        c_sphase = self.c_sphase
        c_fsize = self.c_fsize
        c_hops = self.c_hops
        c_enqat = self.c_enqat
        c_nxt = self.c_nxt

        def load_cell(cell, row):
            c_src[row] = cell.src
            c_dst[row] = cell.dst
            c_fid[row] = cell.flow_id
            c_seq[row] = cell.seq
            c_sprays[row] = cell.sprays_remaining
            c_prev[row] = cell.prev_hop
            c_created[row] = cell.created_at
            c_sphase[row] = cell.spray_phase
            c_fsize[row] = cell.flow_size
            c_hops[row] = cell.hops
            c_enqat[row] = cell.enqueued_at

        n = self.n
        for i, node in enumerate(engine.nodes):
            for l, queue in enumerate(node.link_queues):
                items = queue._items
                self.q_peak[l, i] = queue.peak_occupancy
                self.q_len[l, i] = len(items)
                prev_row = l * n + i  # the queue's sentinel
                for cell in items:
                    if cell.dummy or cell.spray_phase < 0:
                        return False
                    load_cell(cell, nid)
                    c_nxt[prev_row] = nid
                    prev_row = nid
                    nid += 1
                self.q_tail[l, i] = prev_row
            live = [f for f in node.local_flows if f.sent < f.size_cells]
            if live:
                cursor = live[0]
                self.has_flow[i] = True
                self.cur_fid[i] = cursor.flow_id
                self.cur_dst[i] = cursor.dst
                self.cur_sent[i] = cursor.sent
                self.cur_size[i] = cursor.size_cells
                self.cur_flow[i] = cursor
                self.waiting[i].extend(live[1:])
        # the wire, grouped into per-arrival batches (FIFO order preserved)
        arr = None
        senders: List[int] = []
        cells: List[int] = []
        recvs: List[int] = []
        emask: List[bool] = []
        esph = 0

        def flush():
            if senders:
                self.batches.append((
                    arr,
                    np.array(senders, dtype=np.int64),
                    np.array(cells, dtype=np.int64),
                    np.array(recvs, dtype=np.int64),
                    np.array(emask, dtype=bool),
                    esph,
                ))

        for tx in engine._in_flight:
            cell = tx.cell
            if tx.tokens or tx.ctrl or cell is None or cell.dummy \
                    or cell.spray_phase < 0:
                return False
            if tx.arrival != arr:
                flush()
                arr = tx.arrival
                senders, cells, recvs, emask = [], [], [], []
                esph = 0
            load_cell(cell, nid)
            senders.append(tx.sender)
            cells.append(nid)
            recvs.append(tx.receiver)
            spraying = cell.sprays_remaining > 0
            emask.append(spraying)
            if spraying:
                # all spraying cells in one batch left the same TX slot,
                # so they share one spray phase
                esph = cell.spray_phase
            nid += 1
        flush()
        # flow completion columns for every active flow
        flows = engine.flows
        for fid, flow in flows._active.items():
            self._ensure_flow(fid)
            self.f_del[fid] = flow.delivered
            self.f_size[fid] = flow.size_cells
        # commit: remaining rows form the freelist; the object wire empties
        self.free[: self.cap - nid] = np.arange(nid, self.cap, dtype=np.int64)
        self.free_top = self.cap - nid
        engine._in_flight.clear()
        return True

    def _materialize_rows(self, rows: List[int]) -> List[Cell]:
        """Cells for slab ``rows``, built from one bulk gather per column.

        One fancy gather + ``tolist`` per column replaces per-cell numpy
        scalar reads; the remaining per-cell cost is twelve attribute
        stores.
        """
        if not rows:
            return []
        ra = np.array(rows, dtype=np.int64)
        out: List[Cell] = []
        append = out.append
        new = Cell.__new__
        for src, dst, fid, seq, spr, prv, cre, sph, fsz, hp, enq in zip(
            self.c_src[ra].tolist(), self.c_dst[ra].tolist(),
            self.c_fid[ra].tolist(), self.c_seq[ra].tolist(),
            self.c_sprays[ra].tolist(), self.c_prev[ra].tolist(),
            self.c_created[ra].tolist(), self.c_sphase[ra].tolist(),
            self.c_fsize[ra].tolist(), self.c_hops[ra].tolist(),
            self.c_enqat[ra].tolist(),
        ):
            cell = new(Cell)
            cell.src = src
            cell.dst = dst
            cell.flow_id = fid
            cell.seq = seq
            cell.sprays_remaining = spr
            cell.prev_hop = prv
            cell.created_at = cre
            cell.spray_phase = sph
            cell.flow_size = fsz
            cell.dummy = False
            cell.hops = hp
            cell.enqueued_at = enq
            append(cell)
        return out

    def unpack(self) -> None:
        """Write the columns back; the object model becomes authoritative."""
        engine = self.engine
        # first pass: walk every linked list with plain python ints,
        # collecting all live rows (queues first, then the wire) so the
        # cells can be materialized in one columnar sweep
        nxt = self.c_nxt.tolist()
        heads = self.heads2d.T.tolist()
        peaks = self.q_peak.T.tolist()
        all_rows: List[int] = []
        append = all_rows.append
        qmarks: List[int] = []
        for i, node in enumerate(engine.nodes):
            hrow = heads[i]
            prow = peaks[i]
            for l, queue in enumerate(node.link_queues):
                row = hrow[l]
                start = len(all_rows)
                while row >= 0:
                    append(row)
                    row = nxt[row]
                qmarks.append(len(all_rows) - start)
                queue.peak_occupancy = prow[l]
            flows_left = []
            if self.has_flow[i]:
                cursor = self.cur_flow[i]
                cursor.sent = int(self.cur_sent[i])
                flows_left.append(cursor)
            flows_left.extend(self.waiting[i])
            node.local_flows = flows_left
        wire_start = len(all_rows)
        for _, _, cells, _, _, _ in self.batches:
            all_rows.extend(cells.tolist())
        made = self._materialize_rows(all_rows)
        # second pass: hand each queue its slice of the materialized cells
        pos = 0
        mark = 0
        for node in engine.nodes:
            for queue in node.link_queues:
                cnt = qmarks[mark]
                mark += 1
                # the per-link list object is aliased by the node's TX
                # caches, so it is mutated in place, never rebound
                queue._items[:] = made[pos:pos + cnt]
                pos += cnt
        # the wire
        in_flight = engine._in_flight
        pos = wire_start
        for arr, senders, cells, recvs, _, _ in self.batches:
            for s, r, cell in zip(senders.tolist(), recvs.tolist(),
                                  made[pos:pos + senders.size]):
                tx = Transmission(s, r, cell, (), ())
                tx.arrival = arr
                in_flight.append(tx)
            pos += senders.size
        # flow delivery counters
        for fid, flow in engine.flows._active.items():
            if fid < self.f_cap:
                flow.delivered = int(self.f_del[fid])
        # per-destination delivery counts
        per_node = engine.metrics.delivered_per_node
        for i, v in enumerate(self.delivered_vec.tolist()):
            if v:
                per_node[i] = per_node.get(i, 0) + v
        # per-node occupancy totals, derived from the queue lengths
        total_enq = self._node_occupancy()
        for i, v in enumerate(total_enq.tolist()):
            engine.nodes[i].total_enqueued = v
        # the active set: exactly the nodes with pending work (a legal
        # instance of the engine's superset invariant — nothing else can
        # owe work in a vector-eligible state)
        engine._active_ids.clear()
        engine._active_ids.update(
            np.flatnonzero((total_enq > 0) | self.has_flow).tolist()
        )
        self._resync_rng()

    # ------------------------------------------------------------------ #
    # per-slot sections (mirroring Engine.step exactly)

    def _rx(self, t: int) -> None:
        engine = self.engine
        metrics = engine.metrics
        digest = engine.digest
        flows = engine.flows
        events = engine.events
        batches = self.batches
        while batches and batches[0][0] <= t:
            _, _, cells, recvs, emask, esph = batches.popleft()
            d = self.c_dst[cells]
            deliver = d == recvs
            del_ids = deliver.nonzero()[0]
            cnt = del_ids.size
            if cnt:
                dc = cells[del_ids]
                metrics.cells_delivered += cnt
                metrics.payload_cells_delivered += cnt
                metrics._window_delivered += cnt
                latencies = metrics.cell_latencies
                room = metrics._cell_latency_cap - len(latencies)
                if room > 0:
                    lats = t - self.c_created[dc]
                    latencies.extend(
                        lats.tolist() if room >= cnt else lats[:room].tolist()
                    )
                self.delivered_vec[recvs[del_ids]] += 1
                if digest is not None:
                    fold = digest._fold
                    for fid, seq, src, dd, hp in zip(
                        self.c_fid[dc].tolist(), self.c_seq[dc].tolist(),
                        self.c_src[dc].tolist(), d[del_ids].tolist(),
                        self.c_hops[dc].tolist(),
                    ):
                        fold((_EV_DELIVERY, fid, seq, src, dd, hp, t))
                fids = self.c_fid[dc]
                fd = self.f_del[fids] + 1
                self.f_del[fids] = fd
                complete = fd >= self.f_size[fids]
                if np.count_nonzero(complete):
                    for fid in fids[complete].tolist():
                        flow = flows._active.get(fid)
                        if flow is None:
                            continue
                        flow.delivered = int(self.f_del[fid])
                        record = flows.finalize(flow, t)
                        if events is not None:
                            events.emit(t, "flow_end", {
                                "flow": record.flow_id, "src": record.src,
                                "dst": record.dst,
                                "cells": record.size_cells,
                                "fct": record.fct,
                            })
                self._free_cells(dc)
                fwd_ids = (~deliver).nonzero()[0]
                if fwd_ids.size:
                    self._forward(cells[fwd_ids], recvs[fwd_ids], t,
                                  d[fwd_ids], emask[fwd_ids], esph)
            elif cells.size:
                self._forward(cells, recvs, t, d, emask, esph)
            engine._in_flight_payload -= cells.size

    def _next_hops(self, fc, rv, dd):
        """Next-hop (phase, offset) per forwarded cell.

        Spraying cells take one ``randrange(1, r)`` draw each, in batch
        (= node-id) order; direct cells run the first-mismatched-digit scan
        from the carried phase hint.
        """
        n = self.n
        h = self.h
        digits = self.digits
        sph = self.c_sphase[fc]
        if h == 1:
            # single digit (coordinate == node id), no spraying: the
            # offset is the coordinate distance to the destination
            off = dd - rv
            np.add(off, self.r, out=off, where=off < 0)
            return sph, off
        if h == 2:
            # two rounds unrolled branch-free: if the hinted digit already
            # matches, the other one must differ (the cell isn't home yet)
            pn = sph * n
            mine0 = digits[pn + rv]
            want0 = digits[pn + dd]
            m0 = mine0 != want0
            p1 = sph ^ 1
            p1n = p1 * n
            mine1 = digits[p1n + rv]
            want1 = digits[p1n + dd]
            nphase = np.where(m0, sph, p1)
            offd = np.where(m0, want0 - mine0, want1 - mine1)
            np.add(offd, self.r, out=offd, where=offd < 0)
        else:
            p = self.c_sphase[fc].copy()
            nphase = np.full(fc.size, -1, dtype=np.int64)
            offd = np.empty(fc.size, dtype=np.int64)
            for _ in range(h):
                pn = p * n
                mine = digits[pn + rv]
                want = digits[pn + dd]
                mm = (nphase < 0) & (mine != want)
                if mm.any():
                    nphase[mm] = p[mm]
                    offd[mm] = (want[mm] - mine[mm]) % self.r
                p += 1
                p[p >= h] = 0
            if (nphase < 0).any():
                raise AssertionError("direct-hop cell already at destination")
        smask = self.c_sprays[fc] > 0
        ks = np.count_nonzero(smask)
        if ks:
            sv = np.empty(fc.size, dtype=np.int64)
            sv[smask] = self._draw(ks) + 1
            nphase = np.where(smask, sph, nphase)
            off = np.where(smask, sv, offd)
        else:
            off = offd
        return nphase, off

    def _forward(self, fc, rv, t, dd, emask, esph) -> None:
        """Enqueue forwarded cells at their receivers.

        ``dd`` is the cells' destination column (already gathered by the
        caller), ``emask`` flags same-slot emissions within the batch (the
        spraying cells at h <= 2) and ``esph`` is their common spray
        phase.  Receivers within a batch are distinct (the slot schedule
        is a permutation), so the scatter is conflict free.
        """
        if self.qsel is not None:
            # h=2 fast path: the precomputed tables resolve phase choice,
            # queue index and next-hop hint in two gathers, with spraying
            # draws overriding per spray cell in batch order
            idx = self.c_sphase[fc] * self.nn
            idx += rv * self.n
            idx += dd
            qn = self.qsel[idx]
            npl = self.nsel[idx]
            ks = np.count_nonzero(emask)
            if ks:
                sids = emask.nonzero()[0]
                # draw == randrange(1, r) - 1, which is the in-phase
                # queue offset the tables encode as (q * n); all sprays
                # in a batch share the emission slot's spray phase
                qn[sids] = self._draw(ks) * self.n + esph * self.rm1 * self.n
                npl[sids] = esph ^ 1
            lin = qn + rv
        else:
            nphase, off = self._next_hops(fc, rv, dd)
            lin = (nphase * self.rm1 + off - 1) * self.n + rv
            npl = nphase + 1
            npl[npl == self.h] = 0
        self.c_sphase[fc] = npl
        self.c_enqat[fc] = t
        tail = self.qf_tail
        qlen = self.qf_len
        peak = self.qf_peak
        nxt = self.c_nxt
        # sentinel tails make the append unconditional: an empty queue's
        # tail is its own sentinel row, whose nxt entry is the head pointer
        nxt[tail[lin]] = fc
        tail[lin] = fc
        nxt[fc] = -1
        newlen = qlen[lin] + 1
        qlen[lin] = newlen
        peak[lin] = np.maximum(peak[lin], newlen)
        metrics = self.engine.metrics
        mx = int(newlen.max())
        if mx > metrics.max_queue_length:
            metrics.max_queue_length = mx

    def _inject(self, t: int) -> None:
        engine = self.engine
        pending = engine._pending_flows
        flows = engine.flows
        events = engine.events
        while pending and pending[0][0] <= t:
            arrival, src, dst, size_cells, size_bytes = pending.popleft()
            flow = flows.new_flow(
                src, dst, size_cells, arrival, size_bytes=size_bytes
            )
            fid = flow.flow_id
            self._ensure_flow(fid)
            self.f_del[fid] = 0
            self.f_size[fid] = size_cells
            if self.has_flow[src]:
                self.waiting[src].append(flow)
            else:
                self.has_flow[src] = True
                self.cur_fid[src] = fid
                self.cur_dst[src] = dst
                self.cur_sent[src] = 0
                self.cur_size[src] = size_cells
                self.cur_flow[src] = flow
            if events is not None:
                events.emit(t, "flow_start", {
                    "flow": fid, "src": src, "dst": dst,
                    "cells": size_cells,
                })

    def _tx(self, t: int, slot: int, phase: int) -> None:
        engine = self.engine
        link = self.link_table[slot]
        head = self.heads2d[link]
        pop = head >= 0
        pop_ids = pop.nonzero()[0]
        npop = pop_ids.size
        if npop:
            c = head[pop_ids]
            nh = self.c_nxt[c]
            head[pop_ids] = nh
            # a queue emptied by this pop gets its tail re-pointed at its
            # own sentinel, so the next append lands on the head pointer
            emt = (nh < 0).nonzero()[0]
            if emt.size:
                ids = pop_ids[emt]
                self.q_tail[link][ids] = link * self.n + ids
            self.q_len[link][pop_ids] -= 1
            if self.hm1 <= 1:
                # h <= 2: every queued cell has at most one spray left,
                # so the saturating decrement always lands on zero
                self.c_sprays[c] = 0
            else:
                sp = self.c_sprays[c]
                self.c_sprays[c] = sp - (sp > 0)
            self.c_prev[c] = pop_ids
            self.c_hops[c] += 1
        emit = self.has_flow & ~pop
        e = emit.nonzero()[0]
        k = e.size
        esph = (phase + 1) % self.h
        if k:
            rows = self._alloc(k)
            # field order matches _SLAB_COLS
            V = self._ev[:, :k]
            V[0] = e                    # src
            V[1] = self.cur_dst[e]      # dst
            V[2] = self.cur_fid[e]      # flow id
            s = self.cur_sent[e]
            V[3] = s                    # seq
            V[4] = self.hm1             # sprays remaining
            V[5] = e                    # prev hop
            V[6] = t                    # created at
            V[7] = esph                 # spray phase hint
            sz = self.cur_size[e]
            V[8] = sz                   # flow size
            V[9] = 1                    # hops
            V[10] = t                   # enqueued at
            V[11] = -1                  # nxt
            self._slab[:, rows] = V
            s += 1
            self.cur_sent[e] = s
            engine.metrics.cells_injected += k
            done = s >= sz
            if np.count_nonzero(done):
                for i in e[done].tolist():
                    flow = self.cur_flow[i]
                    flow.sent = flow.size_cells
                    queue = self.waiting[i]
                    if queue:
                        nf = queue.popleft()
                        self.cur_fid[i] = nf.flow_id
                        self.cur_dst[i] = nf.dst
                        self.cur_sent[i] = nf.sent
                        self.cur_size[i] = nf.size_cells
                        self.cur_flow[i] = nf
                    else:
                        self.has_flow[i] = False
                        self.cur_flow[i] = None
        # merge pops and emissions into one sender-ascending batch (a node
        # either pops or emits, never both, so the id sets are disjoint)
        if npop and k:
            cat = np.concatenate((pop_ids, e))
            perm = cat.argsort(kind="stable")
            senders = cat[perm]
            cells = np.concatenate((c, rows))[perm]
            em = perm >= npop
        elif npop:
            senders = pop_ids
            cells = c
            em = self._em_false[:npop]
        elif k:
            senders = e
            cells = rows
            em = self._em_true[:k]
        else:
            return
        m = senders.size
        self.batches.append((
            t + self.delay, senders, cells, self.nbr[slot][senders],
            em, esph,
        ))
        metrics = engine.metrics
        metrics.cells_sent += m
        engine._in_flight_payload += m

    def _node_occupancy(self) -> np.ndarray:
        """Per-node total enqueued cells, summed from the queue lengths."""
        return self.q_len.sum(axis=0)

    def _sample(self, t: int) -> None:
        engine = self.engine
        metrics = engine.metrics
        total_enq = self._node_occupancy()
        metrics._buffer_samples.extend(total_enq)
        mb = int(total_enq.max()) if self.n else 0
        if mb > metrics.max_buffer_occupancy:
            metrics.max_buffer_occupancy = mb
        qt = self.q_len.T  # (n, L): node-major, link order within a node
        metrics._queue_samples.extend(qt[qt > 0])
        pk = int(self.q_peak.max())
        if pk > metrics.max_pieo_length:
            metrics.max_pieo_length = pk
        metrics.end_sample_window()
        if engine.telemetry is not None:
            engine.telemetry.on_window_stats(
                engine, t,
                queued=int(total_enq.sum()),
                max_queue=int(self.q_len.max()),
                max_buffer=mb,
                active_buckets=0,
            )

    # ------------------------------------------------------------------ #
    # the slot loop

    def advance(self, end: int, drain: bool) -> None:
        engine = self.engine
        metrics = engine.metrics
        flows = engine.flows
        pending = engine._pending_flows
        batches = self.batches
        epoch = self.epoch
        phase_table = self.phase_table
        warmup = metrics.warmup
        interval = metrics.sample_interval
        measuring = metrics._measuring
        profiler = engine.profiler
        t = engine.t
        if profiler is None:
            while t < end:
                if drain and not (
                    pending or flows._active or engine._in_flight_payload
                ):
                    break
                if not measuring and t >= warmup:
                    metrics.begin_measurement()
                    if engine.telemetry is not None:
                        engine.telemetry.resnapshot(metrics)
                    measuring = True
                slot = t % epoch
                if batches and batches[0][0] <= t:
                    self._rx(t)
                if pending and pending[0][0] <= t:
                    self._inject(t)
                self._tx(t, slot, phase_table[slot])
                if t >= warmup and t % interval == 0:
                    self._sample(t)
                t += 1
        else:
            # the section-timed twin (matches Engine._step_profiled's
            # brackets so profiled runs stay on the vector path)
            clock = profiler.clock
            add = profiler.add
            while t < end:
                if drain and not (
                    pending or flows._active or engine._in_flight_payload
                ):
                    break
                t0 = clock()
                if not measuring and t >= warmup:
                    metrics.begin_measurement()
                    if engine.telemetry is not None:
                        engine.telemetry.resnapshot(metrics)
                    measuring = True
                slot = t % epoch
                t1 = clock()
                if batches and batches[0][0] <= t:
                    self._rx(t)
                t2 = clock()
                if pending and pending[0][0] <= t:
                    self._inject(t)
                t3 = clock()
                self._tx(t, slot, phase_table[slot])
                t4 = clock()
                if t >= warmup and t % interval == 0:
                    self._sample(t)
                t5 = clock()
                t6 = clock()
                add(t1 - t0, t2 - t1, t3 - t2, t4 - t3, t5 - t4, t6 - t5)
                t += 1
        engine.t = t


@register_backend("vector")
class VectorBackend(EngineBackend):
    """Vectorized numpy slot stepper with per-state fallback.

    See the module docstring for the column layout and the RNG
    bit-exactness strategy; ``tests/test_backends.py`` pins equivalence
    against the object backend.
    """

    __slots__ = ("_nbr", "_link_table", "_qt")

    def __init__(self) -> None:
        self._nbr = None
        self._link_table = None
        self._qt = None

    def _tables(self, engine):
        """Per-slot link indices, the (epoch, n) neighbor table, and (for
        h=2) the flat next-hop table.

        Built once per backend (the engine's schedule and coordinate
        system are immutable).  The neighbor table comes from the nodes'
        own tables, so any registered schedule strategy works unchanged.
        The next-hop table, indexed ``phase * n**2 + receiver * n + dst``,
        holds ``link_index * n`` for the direct hop out of ``receiver``
        toward ``dst`` at ``phase`` — or -1 when that digit already
        matches — turning the per-cell digit scan into one gather per
        candidate phase.
        """
        if self._nbr is None:
            schedule = engine.schedule
            r = engine.coords.r
            rm1 = r - 1
            link_table = [
                schedule.phase_table[s] * rm1 + schedule.offset_table[s] - 1
                for s in range(schedule.epoch_length)
            ]
            n = engine.config.n
            h = engine.config.h
            nbr = np.empty((schedule.epoch_length, n), dtype=np.int64)
            for s in range(schedule.epoch_length):
                link = link_table[s]
                nbr[s] = [node.neighbors_flat[link] for node in engine.nodes]
            self._qt = build_hop_tables(n, h, r)
            self._link_table = link_table
            self._nbr = nbr
        return self._nbr, self._link_table, self._qt

    def _run(self, engine, end: int, step, drain: bool) -> None:
        if engine.t >= end:
            return
        if drain and not (
            engine._pending_flows
            or engine.flows.active_count
            or engine._in_flight_payload
        ):
            return
        reason = _fast_ineligible_reason(engine)
        if reason is None:
            nbr, link_table, qt = self._tables(engine)
            run = _VectorRun(engine, nbr, link_table, qt)
            if run.pack():
                run.advance(end, drain)
                run.unpack()
                return
            reason = "queued cells carry non-vectorizable headers"
        engine.note_backend_effective("object", reason)
        # reference fallback: states the stepper does not accelerate.
        # Without a failure manager nothing can change eligibility
        # mid-segment, and with one the segment is ineligible throughout,
        # so finishing on the object path is both correct and stable.
        if drain:
            while engine.t < end and (
                engine._pending_flows
                or engine.flows.active_count
                or engine._in_flight_payload
            ):
                step()
        else:
            while engine.t < end:
                step()

    def step_slots(self, engine, end: int, step) -> None:
        self._run(engine, end, step, drain=False)

    def drain_slots(self, engine, deadline: int, step) -> None:
        self._run(engine, deadline, step, drain=True)
