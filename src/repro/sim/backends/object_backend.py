"""The reference per-node object backend.

This module owns the engine's per-slot TX/RX loop bodies — the code that
used to live inline in ``Engine._run_tx`` / ``Engine._deliver_arrivals``
(the engine keeps thin delegating methods for manual steppers such as
:class:`~repro.sim.multiclass.MultiClassSimulation`).  Moving the bodies
here makes the object pipeline one backend among several behind
:class:`~repro.sim.backends.EngineBackend`, without changing a single
simulated event: the golden-trace suite pins this extraction bit-exactly.

Hot-path discipline carries over unchanged: these functions run once per
slot (``run_tx``) and once per arriving transmission (``deliver_arrivals``),
so they keep attribute access local and avoid allocation.
"""

from __future__ import annotations

from collections import deque

from ...core.cell import Cell
from ...core.header import TOKEN_REGULAR, Token
from ..node import Transmission
from . import EngineBackend, register_backend

__all__ = ["ObjectBackend", "run_tx", "deliver_arrivals"]


def deliver_arrivals(engine, t: int, rx_phase: int) -> None:
    """Deliver due transmissions; ``rx_phase`` is the phase the receivers
    are in *now*, which determines each payload cell's next hop."""
    in_flight = engine._in_flight
    nodes = engine.nodes
    manager = engine.failure_manager
    payload_arrived = 0
    popleft = in_flight.popleft
    pool = engine._tx_pool
    while in_flight and in_flight[0].arrival <= t:
        tx = popleft()
        cell = tx.cell
        if cell is not None and not cell.dummy:
            payload_arrived += 1
        if manager is not None:
            # the wire model: failed receivers, failed links, noise
            tx = manager.filter_arrival(engine, tx, t)
            if tx is None:
                continue
            nodes[tx.receiver].receive(tx, t, rx_phase)
            continue
        receiver = nodes[tx.receiver]
        if receiver.failed:
            if cell is not None and not cell.dummy:
                engine.wire_drop(tx)
            continue
        # Node.receive inlined for the manager-free wire (the common
        # case): no liveness bookkeeping, and deafness complaints only
        # matter to a failure manager, so regular-token credit/release
        # plus the cell dispatch is the whole RX pipeline.
        sender = tx.sender
        tokens = tx.tokens
        if tokens:
            if receiver.uses_hbh:
                spent = receiver._spent_map
                is_first = receiver._is_first_map
                refcount = receiver._refcount_map
                budget1 = receiver._budget1
                for token in tokens:
                    if token.kind == TOKEN_REGULAR:
                        dest = token.dest
                        sprays = token.sprays
                        key = (sender, dest, sprays)
                        if budget1:
                            spent.pop(key, None)
                        else:
                            used = spent.get(key, 0)
                            if used > 0:
                                if used == 1:
                                    del spent[key]
                                    is_first.pop(key, None)
                                else:
                                    spent[key] = used - 1
                        bucket = (dest, sprays)
                        count = refcount.get(bucket, 0)
                        if count > 1:
                            refcount[bucket] = count - 1
                        elif count:
                            del refcount[bucket]
                    else:
                        engine.failures_on_token(
                            receiver, sender, token, rx_phase
                        )
            else:
                for token in tokens:
                    if token.kind != TOKEN_REGULAR:
                        engine.failures_on_token(
                            receiver, sender, token, rx_phase
                        )
        if tx.ctrl:
            for msg in tx.ctrl:
                receiver._handle_ctrl(msg, t, rx_phase)
        if cell is not None and not cell.dummy:
            if cell.dst == tx.receiver:
                receiver._deliver(cell, t)
            else:
                receiver.enqueue_forward(cell, t, rx_phase)
        if len(pool) < 512:
            pool.append(tx)
    if payload_arrived:
        engine._in_flight_payload -= payload_arrived


def run_tx(engine, t: int, phase: int, offset: int) -> None:
    """Run every non-idle node's TX path and put the result on the wire."""
    arrival = t + engine.config.propagation_delay
    enqueue_tx = engine._in_flight.append
    metrics = engine.metrics
    tracer = engine.tracer
    digest = engine.digest
    nodes = engine.nodes
    pool = engine._tx_pool
    # every node meets its round-robin peer on the same link index
    link = phase * (engine.coords.r - 1) + offset - 1
    sent = dummies = payload = tokens_sent = 0
    if engine.force_full_scan:
        # reference path: scan every node with the original per-node
        # checks and leave the active set untouched
        candidates = nodes
        active = None
    else:
        # nodes outside the active set are guaranteed skippable (failed,
        # or idle with no failed neighbours / owed probe replies), so
        # only the active ones are visited — in node-id order, which the
        # shared RNG stream requires.  When everything is active (the
        # loaded steady state) the node list is already that order.
        active = engine._active_ids
        if len(active) == len(nodes):
            candidates = nodes
        else:
            candidates = [nodes[i] for i in sorted(active)]
    for node in candidates:
        if node.failed:
            if active is not None:
                active.discard(node.node_id)
            continue
        if (
            node.total_enqueued == 0
            and not node.local_flows
            and node.pending_tokens == 0
            and node.pending_ctrl == 0
            and not node.rtx_queue
            and not node.failed_neighbors
            and not node._force_dummy
        ):
            if active is not None:
                active.discard(node.node_id)
            continue
        if (
            active is None
            or not node._inline_tx
            or node.failed_neighbors
            or node._force_dummy
        ):
            # reference TX pipeline: force_full_scan runs, non-default
            # configurations, and nodes with failure state
            tx = node.transmit(t, phase, offset)
            if tx is None:
                continue
        else:
            # Node.transmit inlined for the common case (the simulator's
            # hottest loop).  Must stay step-for-step equivalent to the
            # reference; tests/test_golden_traces.py and the
            # force_full_scan property test lock the equivalence down.
            neighbor = node.neighbors_flat[link]
            node_id = node.node_id
            cell = None
            items = node._link_items[link]
            if items:
                if node.uses_hbh:
                    # budget-1 eligibility scan with the charge fused in
                    spent = node._spent_map
                    for i, c in enumerate(items):
                        dst = c.dst
                        if neighbor == dst:
                            del items[i]
                            cell = c
                            break
                        n = c.sprays_remaining
                        key = (neighbor, dst, n - 1 if n > 0 else 0)
                        if key not in spent:
                            del items[i]
                            cell = c
                            spent[key] = 1
                            break
                    if cell is not None:
                        # token upstream + bucket release
                        node.total_enqueued -= 1
                        n = cell.sprays_remaining
                        dst = cell.dst
                        prev = cell.prev_hop
                        bucket = (dst, n)
                        if prev >= 0:
                            queue = node.token_return.get(prev)
                            if queue is None:
                                queue = deque()
                                node.token_return[prev] = queue
                            tcache = node._token_cache
                            tok = tcache.get(bucket)
                            if tok is None:
                                tok = Token(dst, n, TOKEN_REGULAR)
                                tcache[bucket] = tok
                            queue.append(tok)
                            node.pending_tokens += 1
                        refcount = node._refcount_map
                        count = refcount.get(bucket, 0)
                        if count > 1:
                            refcount[bucket] = count - 1
                        elif count:
                            del refcount[bucket]
                        if n > 0:
                            cell.sprays_remaining = n - 1
                        cell.prev_hop = node_id
                        cell.hops += 1
                else:
                    cell = items.pop(0)
                    node.total_enqueued -= 1
                    n = cell.sprays_remaining
                    if n > 0:
                        cell.sprays_remaining = n - 1
                    cell.prev_hop = node_id
                    cell.hops += 1
            if cell is None and (node.local_flows or node.rtx_queue):
                if node.rtx_queue:
                    cell = node._admit_local_cell(t, phase, neighbor)
                else:
                    flow = None
                    for f in node.local_flows:
                        if f.sent < f.size_cells:
                            flow = f
                            break
                    if flow is not None and node.uses_hbh:
                        key = (neighbor, flow.dst, node._hm1)
                        if key in node._spent_map:
                            flow = node._pick_flow(t, neighbor, phase)
                    if flow is not None:
                        cell = node._emit_flow_cell(
                            flow, t, phase, neighbor
                        )
            tokens = ()
            if node.pending_tokens:
                queue = node.token_return.get(neighbor)
                if queue:
                    limit = node._tokens_per_header
                    if len(queue) <= limit:
                        tokens = tuple(queue)
                        queue.clear()
                        node.pending_tokens -= len(tokens)
                    else:
                        out = []
                        while len(out) < limit:
                            out.append(queue.popleft())
                        node.pending_tokens -= limit
                        tokens = tuple(out)
            ctrl = ()
            if node.pending_ctrl:
                queue = node.ctrl_out[link]
                if queue:
                    out = []
                    while queue and len(out) < 2:
                        out.append(queue.popleft())
                    node.pending_ctrl -= len(out)
                    ctrl = tuple(out)
            if cell is None:
                if not tokens and not ctrl:
                    continue
                cell = Cell.make_dummy(node_id, neighbor)
            if pool:
                tx = pool.pop()
                tx.sender = node_id
                tx.receiver = neighbor
                tx.cell = cell
                tx.tokens = tokens
                tx.ctrl = ctrl
            else:
                tx = Transmission(node_id, neighbor, cell, tokens, ctrl)
        cell = tx.cell
        sent += 1
        if cell.dummy:
            dummies += 1
        else:
            payload += 1
            if tracer is not None:
                tracer.on_hop(cell, tx.sender, tx.receiver, t)
        tokens = tx.tokens
        if tokens:
            tokens_sent += len(tokens)
            if digest is not None:
                digest.on_tokens(tx.sender, tx.receiver, tokens, t)
        tx.arrival = arrival
        enqueue_tx(tx)
    if sent:
        metrics.cells_sent += sent
        metrics.dummy_cells_sent += dummies
        metrics.tokens_sent += tokens_sent
        engine._in_flight_payload += payload


@register_backend("object")
class ObjectBackend(EngineBackend):
    """The default backend: one ``step()`` call per timeslot.

    The per-slot work itself lives in :func:`run_tx` /
    :func:`deliver_arrivals` above (reached through the engine's step);
    the backend contributes only the loop, so checkpoint writers and the
    profiled step twin keep their exact pre-backend timing.
    """

    __slots__ = ()

    def step_slots(self, engine, end: int, step) -> None:
        while engine.t < end:
            step()

    def drain_slots(self, engine, deadline: int, step) -> None:
        while engine.t < deadline and (
            engine._pending_flows
            or engine.flows.active_count
            or engine._in_flight_payload
        ):
            step()
