"""Pluggable engine execution backends.

The :class:`~repro.sim.engine.Engine` owns the simulated *state* — nodes,
queues, flows, the wire — while a backend owns the *slot loop* that advances
it.  Two backends ship:

* ``"object"`` — the reference backend: the per-node object pipelines
  (``Node.transmit`` / ``Node.receive`` and their inlined twins) exactly as
  they always ran.  Every mechanism, failure scenario and observer is
  supported; this is the default.
* ``"vector"`` — a vectorized slot stepper that keeps per-node queue heads,
  cell headers and flow cursors in flat numpy int64 columns and advances
  every node per timeslot with array operations (see
  :mod:`repro.sim.backends.vector`).  It reproduces the object backend
  *bit-exactly* — including CPython's ``randrange`` rejection-loop RNG
  consumption — for the configurations it accelerates, and transparently
  falls back to the reference pipeline for the rest (non-``vlb`` routing,
  congestion-control machinery, failure state, attached monitors/tracers).
* ``"shard"`` — a multi-process stepper that partitions the nodes along
  EBS phase-group boundaries across :func:`default_shards` worker
  processes advancing in lockstep, exchanging cross-shard cells through
  deterministic per-slot mailboxes (see :mod:`repro.sim.backends.shard`).
  Same bit-exactness contract and fallback rules as ``"vector"``; the
  shard count is an *execution* parameter, not part of the configuration,
  so it never enters cache keys or checkpoints.

Backends are registered by name, mirroring
:mod:`repro.core.strategies`: selection is
``SimConfig(backend="vector")`` or the runner's ``--backend`` flag, which
installs a process-wide default picked up by every config that does not name
a backend explicitly.  The chosen backend is part of the resolved config, so
it lands in cell-cache keys and checkpoint config validation automatically —
cached or resumed results can never silently mix backends.
"""

from __future__ import annotations

from typing import Dict, List, Type

__all__ = [
    "EngineBackend",
    "register_backend",
    "backend_names",
    "backend_class",
    "make_backend",
    "default_backend",
    "set_default_backend",
    "default_shards",
    "set_default_shards",
]


class EngineBackend:
    """Contract for engine slot-loop backends.

    A backend advances ``engine`` through timeslots.  It must leave the
    engine's object model authoritative whenever it returns: checkpoints,
    observers and manual :meth:`~repro.sim.engine.Engine.step` calls may
    read or mutate any engine state between backend calls.

    One backend instance is built per engine
    (:meth:`~repro.sim.engine.Engine.__init__`) and may cache per-engine
    state on itself.
    """

    __slots__ = ()

    #: registry name; set by :func:`register_backend`
    backend_name: str = ""

    def step_slots(self, engine, end: int, step) -> None:
        """Advance ``engine`` until ``engine.t >= end``.

        ``step`` is the engine's bound single-slot stepper for this run
        (:meth:`~repro.sim.engine.Engine.step`, or its profiled twin when a
        profiler is attached); backends that cannot accelerate the current
        engine state must fall back to calling it.
        """
        raise NotImplementedError

    def drain_slots(self, engine, deadline: int, step) -> None:
        """Advance ``engine`` until payload quiescence or ``deadline``.

        Quiescence is the :meth:`~repro.sim.engine.Engine.run_until_quiescent`
        predicate: no pending flow arrivals, no active flows, and no payload
        cells on the wire.
        """
        raise NotImplementedError


#: name -> backend class
_REGISTRY: Dict[str, Type[EngineBackend]] = {}

#: the process-wide default backend name, used by configs that do not name
#: one explicitly (installed by the runner's ``--backend``)
_default_name = "object"


def register_backend(name: str):
    """Class decorator registering an :class:`EngineBackend` under ``name``."""

    def decorate(cls: Type[EngineBackend]) -> Type[EngineBackend]:
        cls.backend_name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def _ensure_builtins() -> None:
    """Import the built-in backends so the registry is fully populated."""
    if "object" not in _REGISTRY:
        from . import object_backend  # noqa: F401 - registers "object"
    if "vector" not in _REGISTRY:
        from . import vector  # noqa: F401 - registers "vector"
    if "shard" not in _REGISTRY:
        from . import shard  # noqa: F401 - registers "shard"


def backend_names() -> List[str]:
    """Sorted names of every registered backend."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def backend_class(name: str) -> Type[EngineBackend]:
    """The backend class registered under ``name``.

    The empty string resolves to the ambient default, mirroring how an
    unset :attr:`SimConfig.backend` resolves at construction time.
    """
    _ensure_builtins()
    if not name:
        name = _default_name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def make_backend(name: str) -> EngineBackend:
    """A fresh backend instance for ``name``."""
    return backend_class(name)()


def default_backend() -> str:
    """The ambient backend name configs resolve to when they name none."""
    return _default_name


def set_default_backend(name: str) -> str:
    """Install ``name`` as the ambient default; returns the previous name.

    Validates ``name`` against the registry first, so a typo fails at the
    command line instead of deep inside the first engine construction.
    """
    global _default_name
    backend_class(name)  # raises for unknown names
    previous = _default_name
    _default_name = name
    return previous


#: the process-wide shard count used by the ``"shard"`` backend.  An
#: *execution* parameter like ``--workers``, deliberately kept out of
#: :class:`~repro.sim.config.SimConfig`: a K-shard run is bit-exact with a
#: single-process run, so the count must never enter cache keys,
#: checkpoints or manifests.
_default_shards = 4


def default_shards() -> int:
    """The ambient shard count for the ``"shard"`` backend."""
    return _default_shards


def set_default_shards(count: int) -> int:
    """Install ``count`` as the ambient shard count; returns the previous.

    Installed by the runner's ``--shards``; validated here so a bad value
    fails at the command line.
    """
    global _default_shards
    count = int(count)
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    previous = _default_shards
    _default_shards = count
    return previous
