"""Content-addressed on-disk cache for sweep grid cells.

Re-running a figure experiment recomputes every (mechanism x tuning x size)
cell from scratch even when nothing changed.  This module gives
:func:`repro.sim.parallel.sweep` a persistent cell cache: the *complete*
identity of a cell — the worker function, its keyword arguments, the
resolved :class:`~repro.sim.config.SimConfig` field defaults, and a
fingerprint of the package's source code — is hashed into a key, and the
cell's plain picklable outcome (result, its
:class:`~repro.sim.digest.DeterminismDigest` hexdigests, and the shipped
telemetry bundle when one was captured) is stored under it.

Correctness properties:

* **Hits are byte-identical to recomputation.**  The cache stores exactly
  what the worker returned; the golden-trace suite proves the cache is a
  pure observer (``tests/test_cellcache.py``).
* **Stale results cannot leak across versions.**  The cache schema version
  and the source-tree fingerprint are folded into every key, so any change
  to the code or the entry format makes all old keys unreachable.
* **Corrupt entries are misses.**  A truncated, unreadable or mismatched
  entry is treated as a miss and removed, then rewritten on the next run.
* **Writes are atomic.**  Entries are written to a temp file in the cache
  directory and ``os.replace``-d into place, so concurrent sweep workers
  (or concurrent runner invocations sharing a cache directory) never
  observe a torn entry.

Cell kwargs must be plain data (they already have to be picklable to cross
process boundaries); unknown objects fall back to ``repr`` in the key,
which is deterministic for value-like objects only.

The worker-pool *shard count* (``repro.sim.backends.default_shards``) is
deliberately **not** part of the key: the ``"shard"`` backend is bit-exact
with single-process execution for every shard count, so a cell computed at
``--shards 4`` must (and does) satisfy a later ``--shards 1`` run and vice
versa.  ``tests/test_shard_backend.py`` pins this with a key-equality
test across shard counts.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
from typing import Any, Callable, Dict, Optional

__all__ = [
    "CellCache",
    "MISS",
    "SCHEMA",
    "code_fingerprint",
    "default_cache",
    "set_default_cache",
]

#: cache entry format version; bump when the on-disk layout changes meaning
SCHEMA = 1


class _Miss:
    """Sentinel distinguishing 'no entry' from a cached ``None`` result."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return "MISS"


MISS = _Miss()

#: the process-wide default cache consulted by ``sweep`` when no explicit
#: cache is passed (installed by the runner's ``--cache`` / ``REPRO_CACHE``)
_default: Optional["CellCache"] = None


def default_cache() -> Optional["CellCache"]:
    """The ambient :class:`CellCache`, or None when caching is off."""
    return _default


def set_default_cache(cache: Optional["CellCache"]) -> Optional["CellCache"]:
    """Install ``cache`` as the ambient default; returns the previous one."""
    global _default
    previous = _default
    _default = cache
    return previous


_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` source in the ``repro`` package (memoized).

    Folding this into cache keys means editing *any* simulator/experiment
    source orphans all previously cached cells — conservative on purpose:
    a stale hit silently corrupting a figure is far worse than a cold
    recomputation.
    """
    global _fingerprint
    if _fingerprint is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


class CellCache:
    """One cache directory of content-addressed sweep cells.

    Attributes:
        directory: where entries live (created on construction).
        hits / misses / writes: running counters for this process; the
            runner reports per-experiment deltas.
    """

    def __init__(self, directory):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------ #
    # keys

    def key_for(self, fn: Callable, kwargs: Dict[str, Any],
                telemetry: bool = False) -> str:
        """Content key of one grid cell.

        Covers the worker function's qualified name, its kwargs, the full
        set of :class:`SimConfig` field values the cell resolves to (cell
        kwargs override the dataclass defaults where names match — so a
        changed *default* also invalidates), the cache schema version, the
        source fingerprint, and whether a telemetry capture is active
        (cached entries carry the shipped telemetry bundle, so entries
        recorded without one must not satisfy an instrumented run).
        """
        from ..obs.serialize import canonical_json, to_jsonable
        from .config import SimConfig

        resolved = to_jsonable(SimConfig())
        for name in resolved:
            if name in kwargs:
                resolved[name] = to_jsonable(kwargs[name])
        identity = {
            "schema": SCHEMA,
            "code": code_fingerprint(),
            "fn": f"{getattr(fn, '__module__', '?')}."
                  f"{getattr(fn, '__qualname__', repr(fn))}",
            "kwargs": to_jsonable(kwargs),
            "config": resolved,
            "telemetry": bool(telemetry),
        }
        return hashlib.sha256(canonical_json(identity).encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    # lookup / store

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        Any failure to read or validate the entry — truncated pickle,
        foreign schema, key mismatch — counts as a miss; the broken file is
        removed so the next write starts clean.
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            if (isinstance(entry, dict) and entry.get("schema") == SCHEMA
                    and entry.get("key") == key and "cell" in entry):
                self.hits += 1
                return entry["cell"]
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except Exception:
            pass
        # present but corrupt or mismatched: recover by dropping the entry
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing unlinks are fine
            pass
        self.misses += 1
        return MISS

    def put(self, key: str, cell: Any) -> None:
        """Store ``cell`` under ``key`` atomically (tmp file + rename)."""
        entry = {"schema": SCHEMA, "key": key, "cell": cell}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, int]:
        """Snapshot of the running counters."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"CellCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, writes={self.writes})")
