"""PIEO (Push-In-Extract-Out) queues.

A PIEO queue (Shrivastav, SIGCOMM 2019) maintains an ordered list of
elements and supports extracting the *first eligible* element, where
eligibility is an arbitrary predicate evaluated at dequeue time.  Shale's
hop-by-hop congestion control stores per-link queues of bucket ids in PIEO
queues so that a cell whose bucket is awaiting tokens does not head-of-line
block cells in other buckets (paper Section 3.3.2, second change).

The software implementation here preserves PIEO's semantics — strict
insertion order among equal-rank elements, first-eligible extraction — and
additionally tracks its occupancy high-water mark, which the hardware
resource model consumes (paper Fig. 13 reports max PIEO queue length).
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, List, Optional, Tuple, TypeVar

__all__ = ["PieoQueue"]

T = TypeVar("T")


class PieoQueue(Generic[T]):
    """An ordered queue supporting first-eligible extraction.

    Elements are ranked by ``(rank, arrival sequence)`` so ties preserve
    insertion order — exactly the behaviour of the hardware priority encoder.
    With the default rank of 0 for every element the queue behaves as a FIFO
    with eligibility filtering.

    Args:
        capacity: optional maximum occupancy; ``push`` raises
            ``OverflowError`` beyond it (models the fixed-size on-chip PIEO
            storage of the FPGA prototype).
        fifo: when True the queue promises every rank is 0 and stores bare
            elements instead of ``(rank, seq, element)`` entries.  Ordering
            is unchanged (rank-0 PIEO extraction *is* FIFO order); the flat
            representation just skips one tuple allocation and one
            indexing step per element on the simulator's hot path.  Pushing
            a non-zero rank into a fifo queue raises ``ValueError``.
    """

    __slots__ = ("_items", "_seq", "capacity", "fifo", "peak_occupancy")

    def __init__(self, capacity: Optional[int] = None, fifo: bool = False):
        # fifo: list of elements; ranked: list of (rank, seq, element)
        # kept sorted by (rank, seq).  The list object's identity is stable
        # for the queue's lifetime (hot paths hold direct references).
        self._items: List = []
        self._seq = 0
        self.capacity = capacity
        self.fifo = fifo
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterable[T]:
        if self.fifo:
            return iter(self._items)
        return (element for _, _, element in self._items)

    def push(self, element: T, rank: int = 0) -> None:
        """Insert ``element`` at its rank position (stable among equals)."""
        items = self._items
        if self.capacity is not None and len(items) >= self.capacity:
            raise OverflowError(
                f"PIEO queue full (capacity {self.capacity})"
            )
        if self.fifo:
            if rank != 0:
                raise ValueError("fifo PieoQueue only accepts rank 0")
            items.append(element)
            if len(items) > self.peak_occupancy:
                self.peak_occupancy = len(items)
            return
        entry = (rank, self._seq, element)
        self._seq += 1
        # Arrival sequence numbers strictly increase, so a rank no smaller
        # than the current tail's always belongs at the end — the common
        # case (FIFO ranks) is a plain append.
        if not items or items[-1][0] <= rank:
            items.append(entry)
        else:
            # Binary search for the insertion point keeps push O(log n)
            # compare + O(n) shift, matching the "push in" of the hardware
            # (which does it in O(1) with a shift register).
            lo, hi = 0, len(items)
            while lo < hi:
                mid = (lo + hi) // 2
                mid_entry = items[mid]
                if mid_entry[0] < rank or (
                    mid_entry[0] == rank and mid_entry[1] < entry[1]
                ):
                    lo = mid + 1
                else:
                    hi = mid
            items.insert(lo, entry)
        if len(items) > self.peak_occupancy:
            self.peak_occupancy = len(items)

    def extract_first_eligible(
        self, eligible: Callable[[T], bool]
    ) -> Optional[T]:
        """Remove and return the first (lowest-rank, oldest) eligible element.

        Returns ``None`` when no element is eligible.  The predicate is
        evaluated in queue order, mirroring the hardware's parallel
        eligibility test followed by a priority encoder.
        """
        items = self._items
        if self.fifo:
            for i, element in enumerate(items):
                if eligible(element):
                    del items[i]
                    return element
            return None
        for i, (_, _, element) in enumerate(items):
            if eligible(element):
                del items[i]
                return element
        return None

    def first_eligible(self, eligible: Callable[[T], bool]) -> Optional[T]:
        """Peek at the first eligible element without removing it."""
        for element in self:
            if eligible(element):
                return element
        return None

    def extract_head(self) -> Optional[T]:
        """Remove and return the head element unconditionally (FIFO pop)."""
        if not self._items:
            return None
        head = self._items.pop(0)
        return head if self.fifo else head[2]

    def peek_head(self) -> Optional[T]:
        """Return the head element without removing it."""
        if not self._items:
            return None
        return self._items[0] if self.fifo else self._items[0][2]

    def remove(self, element: T) -> bool:
        """Remove the first occurrence of ``element``; True if found."""
        items = self._items
        if self.fifo:
            for i, existing in enumerate(items):
                if existing == element:
                    del items[i]
                    return True
            return False
        for i, (_, _, existing) in enumerate(items):
            if existing == element:
                del items[i]
                return True
        return False

    def remove_if(self, predicate: Callable[[T], bool]) -> List[T]:
        """Remove and return every element matching ``predicate``."""
        kept: List = []
        removed: List[T] = []
        if self.fifo:
            for element in self._items:
                if predicate(element):
                    removed.append(element)
                else:
                    kept.append(element)
        else:
            for entry in self._items:
                if predicate(entry[2]):
                    removed.append(entry[2])
                else:
                    kept.append(entry)
        # in-place so the list object's identity is stable (hot paths hold
        # direct references to it)
        self._items[:] = kept
        return removed

    def clear(self) -> None:
        """Drop every element."""
        self._items.clear()

    def state_dict(
        self, encode: Optional[Callable[[T], object]] = None
    ) -> dict:
        """Queue contents as plain data (checkpoint encoding).

        ``encode`` converts each stored element; identity when omitted.
        """
        if self.fifo:
            items = ([encode(e) for e in self._items] if encode
                     else list(self._items))
        else:
            items = ([(rank, seq, encode(e)) for rank, seq, e in self._items]
                     if encode else list(self._items))
        return {
            "items": items,
            "seq": self._seq,
            "peak": self.peak_occupancy,
        }

    def load_state(
        self, state: dict, decode: Optional[Callable[[object], T]] = None
    ) -> None:
        """Restore :meth:`state_dict` output.

        The element list is refilled in place — its identity is part of the
        queue's contract (hot paths hold direct references to it).
        """
        if self.fifo:
            entries = ([decode(e) for e in state["items"]] if decode
                       else list(state["items"]))
        else:
            entries = ([(rank, seq, decode(e))
                        for rank, seq, e in state["items"]]
                       if decode else [tuple(e) for e in state["items"]])
        self._items[:] = entries
        self._seq = state["seq"]
        self.peak_occupancy = state["peak"]
