"""PIEO (Push-In-Extract-Out) queues.

A PIEO queue (Shrivastav, SIGCOMM 2019) maintains an ordered list of
elements and supports extracting the *first eligible* element, where
eligibility is an arbitrary predicate evaluated at dequeue time.  Shale's
hop-by-hop congestion control stores per-link queues of bucket ids in PIEO
queues so that a cell whose bucket is awaiting tokens does not head-of-line
block cells in other buckets (paper Section 3.3.2, second change).

The software implementation here preserves PIEO's semantics — strict
insertion order among equal-rank elements, first-eligible extraction — and
additionally tracks its occupancy high-water mark, which the hardware
resource model consumes (paper Fig. 13 reports max PIEO queue length).
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, List, Optional, Tuple, TypeVar

__all__ = ["PieoQueue"]

T = TypeVar("T")


class PieoQueue(Generic[T]):
    """An ordered queue supporting first-eligible extraction.

    Elements are ranked by ``(rank, arrival sequence)`` so ties preserve
    insertion order — exactly the behaviour of the hardware priority encoder.
    With the default rank of 0 for every element the queue behaves as a FIFO
    with eligibility filtering.

    Args:
        capacity: optional maximum occupancy; ``push`` raises
            ``OverflowError`` beyond it (models the fixed-size on-chip PIEO
            storage of the FPGA prototype).
    """

    __slots__ = ("_items", "_seq", "capacity", "peak_occupancy")

    def __init__(self, capacity: Optional[int] = None):
        # list of (rank, seq, element), kept sorted by (rank, seq)
        self._items: List[Tuple[int, int, T]] = []
        self._seq = 0
        self.capacity = capacity
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterable[T]:
        return (element for _, _, element in self._items)

    def push(self, element: T, rank: int = 0) -> None:
        """Insert ``element`` at its rank position (stable among equals)."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise OverflowError(
                f"PIEO queue full (capacity {self.capacity})"
            )
        entry = (rank, self._seq, element)
        self._seq += 1
        # Binary search for the insertion point keeps push O(log n) compare +
        # O(n) shift, matching the "push in" of the hardware (which does it
        # in O(1) with a shift register).
        items = self._items
        lo, hi = 0, len(items)
        while lo < hi:
            mid = (lo + hi) // 2
            if items[mid][:2] <= entry[:2]:
                lo = mid + 1
            else:
                hi = mid
        items.insert(lo, entry)
        if len(items) > self.peak_occupancy:
            self.peak_occupancy = len(items)

    def extract_first_eligible(
        self, eligible: Callable[[T], bool]
    ) -> Optional[T]:
        """Remove and return the first (lowest-rank, oldest) eligible element.

        Returns ``None`` when no element is eligible.  The predicate is
        evaluated in queue order, mirroring the hardware's parallel
        eligibility test followed by a priority encoder.
        """
        items = self._items
        for i, (_, _, element) in enumerate(items):
            if eligible(element):
                del items[i]
                return element
        return None

    def first_eligible(self, eligible: Callable[[T], bool]) -> Optional[T]:
        """Peek at the first eligible element without removing it."""
        for _, _, element in self._items:
            if eligible(element):
                return element
        return None

    def extract_head(self) -> Optional[T]:
        """Remove and return the head element unconditionally (FIFO pop)."""
        if not self._items:
            return None
        return self._items.pop(0)[2]

    def peek_head(self) -> Optional[T]:
        """Return the head element without removing it."""
        return self._items[0][2] if self._items else None

    def remove(self, element: T) -> bool:
        """Remove the first occurrence of ``element``; True if found."""
        for i, (_, _, existing) in enumerate(self._items):
            if existing == element:
                del self._items[i]
                return True
        return False

    def remove_if(self, predicate: Callable[[T], bool]) -> List[T]:
        """Remove and return every element matching ``predicate``."""
        kept: List[Tuple[int, int, T]] = []
        removed: List[T] = []
        for entry in self._items:
            if predicate(entry[2]):
                removed.append(entry[2])
            else:
                kept.append(entry)
        self._items = kept
        return removed

    def clear(self) -> None:
        """Drop every element."""
        self._items.clear()
