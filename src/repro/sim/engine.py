"""The packet-level simulation engine.

The engine advances a synchronous timeslot clock.  Per slot it:

1. delivers transmissions whose propagation deadline has passed (RX paths),
2. injects flows whose arrival time has come,
3. runs every non-idle node's TX path and puts the result on the wire,
4. samples metrics at the configured interval.

Propagation is modelled with a FIFO of in-flight transmissions: sends happen
in time order, so the deque stays sorted by arrival deadline and delivery is
O(1) per transmission.

The engine also hosts the two pieces of *global* machinery the paper's
baselines assume: the ISD clairvoyant flow registry (Section 5.3, baseline 3)
and the failure manager hooks (Section 3.4).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from ..core.coordinates import CoordinateSystem
from ..core.header import Token
from ..core.schedule import Schedule
from .config import SimConfig
from .flows import Flow, FlowTable
from .metrics import MetricsCollector
from .node import Node, Transmission

__all__ = ["Engine", "ScheduledFlow"]

#: A flow injection request: (arrival timeslot, src, dst, size in cells,
#: size in bytes).
ScheduledFlow = Tuple[int, int, int, int, int]


class Engine:
    """Simulates one Shale network running a single (sub-)schedule.

    Args:
        config: run parameters.
        workload: iterable of :data:`ScheduledFlow` tuples sorted by arrival
            time.  May also be supplied later via :meth:`schedule_flows`.
        failure_manager: optional failure-protocol implementation (an object
            with ``on_token`` and ``apply`` hooks; see
            :mod:`repro.failures.manager`).
    """

    def __init__(
        self,
        config: SimConfig,
        workload: Optional[Iterable[ScheduledFlow]] = None,
        failure_manager=None,
    ):
        self.config = config
        self.coords = CoordinateSystem(config.n, config.h)
        self.schedule = Schedule(self.coords)
        self.rng = random.Random(config.seed)
        self.flows = FlowTable()
        self.metrics = MetricsCollector(
            config.n,
            sample_interval=config.metrics_sample_interval,
            warmup=config.warmup,
        )
        self.nodes: List[Node] = [Node(i, self) for i in range(config.n)]
        self.t = 0
        self._in_flight: Deque[Tuple[int, Transmission]] = deque()
        #: payload (non-dummy) cells currently on the wire — part of the
        #: cell-conservation invariant and the quiescence condition
        self._in_flight_payload = 0
        #: currently failed *directed* links as (sender, receiver) pairs;
        #: transmissions crossing one are lost on the wire
        self.failed_links: Set[Tuple[int, int]] = set()
        #: optional RunMonitor (see repro.sim.monitor) called once per slot
        self.monitor = None
        self._pending_flows: Deque[ScheduledFlow] = deque()
        if workload is not None:
            self.schedule_flows(workload)
        self.failure_manager = failure_manager
        if failure_manager is not None:
            failure_manager.apply(self)
        #: optional CellTracer (see repro.sim.trace) recording cell paths
        self.tracer = None
        #: optional callable(cell, t) invoked on every payload delivery
        #: (used by repro.sim.reorder.ReorderTracker, among others)
        self.delivery_hook = None
        # ISD bookkeeping: last time each flow's credit was topped up
        self._isd_last: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # workload plumbing

    def schedule_flows(self, workload: Iterable[ScheduledFlow]) -> None:
        """Queue flow arrivals; they must be sorted by arrival timeslot."""
        last = self._pending_flows[-1][0] if self._pending_flows else -1
        for item in workload:
            if item[0] < last:
                raise ValueError("workload must be sorted by arrival time")
            last = item[0]
            self._pending_flows.append(item)

    def _inject_flows(self, t: int) -> None:
        pending = self._pending_flows
        while pending and pending[0][0] <= t:
            arrival, src, dst, size_cells, size_bytes = pending.popleft()
            node = self.nodes[src]
            if node.failed or self.nodes[dst].failed:
                continue
            flow = self.flows.new_flow(
                src, dst, size_cells, arrival, size_bytes=size_bytes
            )
            node.add_flow(flow)

    # ------------------------------------------------------------------ #
    # main loop

    def run(self, duration: Optional[int] = None) -> MetricsCollector:
        """Run for ``duration`` timeslots (default: ``config.duration``)."""
        end = self.t + (duration if duration is not None else self.config.duration)
        while self.t < end:
            self.step()
        return self.metrics

    def run_until_quiescent(self, max_extra: int = 1_000_000) -> MetricsCollector:
        """Keep stepping until every flow completes (or ``max_extra`` slots).

        Quiescence considers only *payload* traffic: with a failure manager
        attached, liveness probes keep crossing suspect links forever, so
        waiting for an empty wire would never terminate.
        """
        deadline = self.t + max_extra
        while self.t < deadline and (
            self._pending_flows
            or self.flows.active_count
            or self._in_flight_payload
        ):
            self.step()
        return self.metrics

    def step(self) -> None:
        """Advance the simulation by one timeslot."""
        t = self.t
        phase = self.schedule.phase_of(t)
        offset = self.schedule.offset_of(t)
        if self.failure_manager is not None:
            self.failure_manager.advance(self, t)
        self._deliver_arrivals(t, phase)
        self._inject_flows(t)
        self._run_tx(t, phase, offset)
        if self.metrics.should_sample(t):
            self._sample_metrics()
        if self.monitor is not None:
            self.monitor.on_step_end(self, t)
        self.t = t + 1

    def _deliver_arrivals(self, t: int, phase: int) -> None:
        in_flight = self._in_flight
        nodes = self.nodes
        manager = self.failure_manager
        while in_flight and in_flight[0][0] <= t:
            _, tx = in_flight.popleft()
            cell = tx.cell
            if cell is not None and not cell.dummy:
                self._in_flight_payload -= 1
            if manager is not None:
                # the wire model: failed receivers, failed links, noise
                tx = manager.filter_arrival(self, tx, t)
                if tx is None:
                    continue
            elif nodes[tx.receiver].failed:
                if cell is not None and not cell.dummy:
                    self.wire_drop(tx)
                continue
            # the phase the receiver is in *now* determines the next hop
            nodes[tx.receiver].receive(tx, t, self.schedule.phase_of(t))

    def wire_drop(self, tx: Transmission) -> None:
        """Account a payload cell lost on the wire and heal sender credit.

        The sender charged a token for the cell's next-hop bucket when it
        transmitted (``Node._finish_forward``); the cell will never arrive
        to return it, so the credit is restored here.  Final-hop cells were
        never charged.
        """
        self.metrics.on_wire_loss()
        cell = tx.cell
        sender = self.nodes[tx.sender]
        if (
            sender.uses_hbh
            and not sender.failed
            and tx.receiver != cell.dst
        ):
            # sprays_remaining was already decremented at transmit time, so
            # it names exactly the bucket that was charged
            sender.ledger.credit(tx.receiver, (cell.dst, cell.sprays_remaining))

    def _run_tx(self, t: int, phase: int, offset: int) -> None:
        arrival = t + self.config.propagation_delay
        in_flight = self._in_flight
        metrics = self.metrics
        tracer = self.tracer
        for node in self.nodes:
            if node.failed:
                continue
            if node.idle and not node.failed_neighbors and not node._force_dummy:
                continue
            tx = node.transmit(t, phase, offset)
            if tx is None:
                continue
            metrics.on_cell_sent(tx.cell.dummy)
            if not tx.cell.dummy:
                self._in_flight_payload += 1
            if tx.tokens:
                metrics.on_token_sent(len(tx.tokens))
            if tracer is not None and not tx.cell.dummy:
                tracer.on_hop(tx.cell, tx.sender, tx.receiver, t)
            in_flight.append((arrival, tx))

    def _sample_metrics(self) -> None:
        metrics = self.metrics
        for node in self.nodes:
            if node.failed:
                continue
            lengths = [len(q) for q in node.link_queues if q]
            metrics.sample_node(
                node.buffer_occupancy(),
                lengths,
                active_buckets=node.active_bucket_count(),
                pieo_length=node.max_pieo_occupancy(),
            )
        metrics.end_sample_window()

    # ------------------------------------------------------------------ #
    # ISD (idealized sender-driven) global rate control

    def isd_credit(self, flow: Flow, t: int) -> bool:
        """Top up and test the flow's ISD send credit.

        The global receiver-bandwidth budget ``R = isd_rate_factor / (2h)``
        is split evenly between the ``k`` flows currently addressing the
        destination, with instantaneous (clairvoyant) knowledge of ``k``.
        """
        rate = (
            self.config.isd_rate_factor
            * self.schedule.throughput_guarantee()
            / max(1, self.flows.flows_to(flow.dst))
        )
        last = self._isd_last.get(flow.flow_id, flow.arrival)
        if t > last:
            flow.credit = min(4.0, flow.credit + rate * (t - last))
            self._isd_last[flow.flow_id] = t
        return flow.credit >= 1.0

    # ------------------------------------------------------------------ #
    # failure hooks (delegated to the failure manager when present)

    def failures_on_token(self, node: Node, sender: int, token: Token,
                          phase: int) -> None:
        """Dispatch an invalidation/re-validation token to the manager."""
        if self.failure_manager is not None:
            self.failure_manager.on_token(self, node, sender, token, phase)

    # ------------------------------------------------------------------ #
    # conveniences

    def throughput(self) -> float:
        """Mean delivered payload per node per slot so far (line-rate frac)."""
        alive = sum(1 for n in self.nodes if not n.failed)
        return self.metrics.mean_throughput_cells_per_slot(max(1, self.t), alive)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Engine(n={self.config.n}, h={self.config.h}, "
            f"cc={self.config.congestion_control!r}, t={self.t})"
        )
