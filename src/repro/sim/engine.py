"""The packet-level simulation engine.

The engine advances a synchronous timeslot clock.  Per slot it:

1. delivers transmissions whose propagation deadline has passed (RX paths),
2. injects flows whose arrival time has come,
3. runs every non-idle node's TX path and puts the result on the wire,
4. samples metrics at the configured interval.

Propagation is modelled with a FIFO of in-flight transmissions: sends happen
in time order, so the deque stays sorted by arrival deadline and delivery is
O(1) per transmission.

The engine also hosts the two pieces of *global* machinery the paper's
baselines assume: the ISD clairvoyant flow registry (Section 5.3, baseline 3)
and the failure manager hooks (Section 3.4).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from ..core.cell import Cell
from ..core.header import TOKEN_REGULAR, Token
from ..core.strategies import make_router, shared_schedule
from .config import SimConfig
from .digest import DeterminismDigest
from .flows import Flow, FlowTable
from .metrics import MetricsCollector
from .node import Node, Transmission

__all__ = ["Engine", "ScheduledFlow"]

#: A flow injection request: (arrival timeslot, src, dst, size in cells,
#: size in bytes).
ScheduledFlow = Tuple[int, int, int, int, int]

#: Observers called with each freshly constructed Engine.  The telemetry
#: capture context (:class:`repro.obs.capture.TelemetryCapture`) registers
#: itself here so that engines built deep inside experiment modules pick up
#: instrumentation without any plumbing; the list is empty (one truthiness
#: check per construction) outside a capture context.
_construction_hooks: List[Callable[["Engine"], None]] = []


class Engine:
    """Simulates one Shale network running a single (sub-)schedule.

    Args:
        config: run parameters.
        workload: iterable of :data:`ScheduledFlow` tuples sorted by arrival
            time.  May also be supplied later via :meth:`schedule_flows`.
        failure_manager: optional failure-protocol implementation (an object
            with ``on_token`` and ``apply`` hooks; see
            :mod:`repro.failures.manager`).
    """

    def __init__(
        self,
        config: SimConfig,
        workload: Optional[Iterable[ScheduledFlow]] = None,
        failure_manager=None,
    ):
        self.config = config
        # schedule tables are immutable and depend only on (strategy, n, h):
        # every engine of a sweep shares one process-wide instance per size
        self.schedule = shared_schedule(config.schedule, config.n, config.h)
        self.coords = self.schedule.coords
        self.rng = random.Random(config.seed)
        #: routing strategy deciding each cell's admission shape; shares the
        #: engine RNG so strategy choice alone never forks the stream
        self.routing = make_router(config.routing, self.schedule, self.rng)
        self.flows = FlowTable()
        self.metrics = MetricsCollector(
            config.n,
            sample_interval=config.metrics_sample_interval,
            warmup=config.warmup,
        )
        #: node ids that may need to transmit (superset invariant: a node
        #: outside this set is failed, or idle with no failed neighbours and
        #: no owed probe replies).  Nodes add themselves on every idle->busy
        #: transition (``Node.wake``); ``_run_tx`` removes nodes it finds
        #: skippable.  Built before the nodes so ``wake`` works during setup.
        self._active_ids: Set[int] = set(range(config.n))
        #: debug/reference switch: scan every node per slot instead of the
        #: active set (must be event-identical; see tests/test_properties.py)
        self.force_full_scan = False
        #: recycled Transmission shells — a transmission dies as soon as its
        #: receiver processes it, so the wire re-uses the objects instead of
        #: allocating ~one per node per slot (identity is never observed).
        #: Built before the nodes, which cache a reference.
        self._tx_pool: List[Transmission] = []
        self.nodes: List[Node] = [Node(i, self) for i in range(config.n)]
        self.t = 0
        # hot-path caches for step()
        self._epoch_length = self.schedule.epoch_length
        self._phase_table = self.schedule.phase_table
        self._offset_table = self.schedule.offset_table
        self._in_flight: Deque[Transmission] = deque()
        #: payload (non-dummy) cells currently on the wire — part of the
        #: cell-conservation invariant and the quiescence condition
        self._in_flight_payload = 0
        #: currently failed *directed* links as (sender, receiver) pairs;
        #: transmissions crossing one are lost on the wire
        self.failed_links: Set[Tuple[int, int]] = set()
        #: optional RunMonitor (see repro.sim.monitor) called once per slot
        self.monitor = None
        #: optional TimeSeriesRecorder (repro.obs.timeseries) fed one row
        #: per closed sample window; attach via its ``attach`` method
        self.telemetry = None
        #: optional EventLog (repro.obs.events) receiving structured
        #: ``(t, kind, payload)`` run events; attach via its ``attach``
        self.events = None
        #: optional StepProfiler (repro.obs.profiler); when set the run
        #: loops dispatch to the timed step twin (:meth:`_step_profiled`),
        #: so the normal step pays nothing for the feature
        self.profiler = None
        self._pending_flows: Deque[ScheduledFlow] = deque()
        if workload is not None:
            self.schedule_flows(workload)
        self.failure_manager = failure_manager
        if failure_manager is not None:
            failure_manager.apply(self)
        #: optional CellTracer (see repro.sim.trace) recording cell paths
        self.tracer = None
        #: optional callable(cell, t) invoked on every payload delivery
        #: (used by repro.sim.reorder.ReorderTracker, among others)
        self.delivery_hook = None
        #: optional DeterminismDigest folding every delivery/drop/token
        #: event (see repro.sim.digest); attach via :meth:`enable_digest`
        self.digest: Optional[DeterminismDigest] = None
        # ISD bookkeeping: last time each flow's credit was topped up
        self._isd_last: Dict[int, int] = {}
        #: optional CheckpointWriter (repro.sim.checkpoint); when set the
        #: run loops dispatch to snapshot-aware twins, so the normal loops
        #: pay nothing for the feature (same pattern as the profiler)
        self._checkpointer = None
        #: loop marker restored from a checkpoint: ``(ordinal, end)`` of the
        #: run/drain loop the snapshot was taken inside (None otherwise)
        self._resume: Optional[Tuple[int, int]] = None
        #: run/drain loops entered so far; a checkpoint records the ordinal
        #: so resume can fast-forward loops that completed before it
        self._loops_entered = 0
        #: observer state from a restored checkpoint, waiting for a
        #: monitor/recorder/event log to be attached and absorb it
        self._pending_restore: Optional[Dict[str, object]] = None
        if _construction_hooks:
            for hook in _construction_hooks:
                hook(self)

    def enable_profiler(self):
        """Attach (and return) a step profiler; see repro.obs.profiler.

        Like the digest, the profiler is a pure observer: the simulated
        event stream is bit-identical with and without it (the timed step
        twin mirrors :meth:`step` exactly).
        """
        from ..obs.profiler import StepProfiler

        self.profiler = StepProfiler()
        return self.profiler

    def enable_digest(self) -> DeterminismDigest:
        """Attach (and return) a fresh event digest for equivalence tests.

        The digest is a pure observer: enabling it never changes simulated
        behavior, only records it.  Idempotent: a digest that already exists
        (e.g. restored from a checkpoint) is kept, so resumed runs keep
        accumulating the same event stream.
        """
        if self.digest is None:
            self.digest = DeterminismDigest()
        return self.digest

    # ------------------------------------------------------------------ #
    # workload plumbing

    def schedule_flows(self, workload: Iterable[ScheduledFlow]) -> None:
        """Queue flow arrivals; they must be sorted by arrival timeslot."""
        last = self._pending_flows[-1][0] if self._pending_flows else -1
        for item in workload:
            if item[0] < last:
                raise ValueError("workload must be sorted by arrival time")
            last = item[0]
            self._pending_flows.append(item)

    def _inject_flows(self, t: int) -> None:
        pending = self._pending_flows
        events = self.events
        while pending and pending[0][0] <= t:
            arrival, src, dst, size_cells, size_bytes = pending.popleft()
            node = self.nodes[src]
            if node.failed or self.nodes[dst].failed:
                continue
            flow = self.flows.new_flow(
                src, dst, size_cells, arrival, size_bytes=size_bytes
            )
            node.add_flow(flow)
            if events is not None:
                events.emit(t, "flow_start", {
                    "flow": flow.flow_id, "src": src, "dst": dst,
                    "cells": size_cells,
                })

    # ------------------------------------------------------------------ #
    # main loop

    def run(self, duration: Optional[int] = None) -> MetricsCollector:
        """Run for ``duration`` timeslots (default: ``config.duration``)."""
        end = self.t + (duration if duration is not None else self.config.duration)
        ordinal = self._loops_entered
        self._loops_entered = ordinal + 1
        if self._resume is not None:
            end = self._resume_end(ordinal, end)
            if end is None:
                return self.metrics  # loop completed before the snapshot
        step = self.step if self.profiler is None else self._step_profiled
        if self._checkpointer is not None:
            self._run_checkpointed(step, end, ordinal)
        else:
            while self.t < end:
                step()
        return self.metrics

    def run_until_quiescent(self, max_extra: int = 1_000_000) -> MetricsCollector:
        """Keep stepping until every flow completes (or ``max_extra`` slots).

        Quiescence considers only *payload* traffic: with a failure manager
        attached, liveness probes keep crossing suspect links forever, so
        waiting for an empty wire would never terminate.
        """
        deadline = self.t + max_extra
        ordinal = self._loops_entered
        self._loops_entered = ordinal + 1
        if self._resume is not None:
            deadline = self._resume_end(ordinal, deadline)
            if deadline is None:
                return self.metrics  # loop completed before the snapshot
        step = self.step if self.profiler is None else self._step_profiled
        if self._checkpointer is not None:
            self._drain_checkpointed(step, deadline, ordinal)
        else:
            while self.t < deadline and (
                self._pending_flows
                or self.flows.active_count
                or self._in_flight_payload
            ):
                step()
        return self.metrics

    def _resume_end(self, ordinal: int, end: int) -> Optional[int]:
        """Resolve a run/drain loop entry against a restored loop marker.

        A checkpoint taken inside loop ``k`` (by entry order) means loops
        ``< k`` already ran to completion before the snapshot — re-entering
        one is a no-op (returns None).  Loop ``k`` itself adopts the saved
        absolute end so the resumed run stops exactly where the original
        would have; later loops run normally.
        """
        resume_ordinal, resume_end = self._resume
        if ordinal < resume_ordinal:
            return None
        self._resume = None
        return resume_end if ordinal == resume_ordinal else end

    def _run_checkpointed(self, step, end: int, ordinal: int) -> None:
        """The :meth:`run` loop with the periodic snapshot hook.

        Kept out of :meth:`run` so the checkpoint-off loop stays exactly
        as tight as before the feature existed.
        """
        writer = self._checkpointer
        writer.arm(self.t)
        while self.t < end:
            step()
            if self.t >= writer.due_t:
                writer.write(self, ordinal, end)

    def _drain_checkpointed(self, step, deadline: int, ordinal: int) -> None:
        """The :meth:`run_until_quiescent` loop with the snapshot hook."""
        writer = self._checkpointer
        writer.arm(self.t)
        while self.t < deadline and (
            self._pending_flows
            or self.flows.active_count
            or self._in_flight_payload
        ):
            step()
            if self.t >= writer.due_t:
                writer.write(self, ordinal, deadline)

    # ------------------------------------------------------------------ #
    # checkpoint/restore (see repro.sim.checkpoint for the format)

    def enable_checkpoints(self, path, every: int) -> None:
        """Write a snapshot to ``path`` every ``every`` timeslots while a
        run/drain loop is active (atomic replace; the file always holds the
        latest complete snapshot)."""
        from .checkpoint import CheckpointWriter

        self._checkpointer = CheckpointWriter(path, every)

    def snapshot(self) -> "Checkpoint":
        """Capture the complete mutable simulation state as a
        :class:`~repro.sim.checkpoint.Checkpoint`."""
        from .checkpoint import snapshot_engine

        return snapshot_engine(self)

    @classmethod
    def restore(cls, checkpoint) -> "Engine":
        """Build a fresh engine resumed from ``checkpoint``.

        The resumed engine replays the remainder of the run bit-exactly:
        stepping it to the original end time yields the same digest,
        metrics and flow records as the uninterrupted run.
        """
        from .checkpoint import restore_engine

        return restore_engine(checkpoint)

    def _apply_checkpoint(self, checkpoint) -> None:
        """Overwrite this engine's state with ``checkpoint`` (same config)."""
        from .checkpoint import apply_checkpoint

        apply_checkpoint(self, checkpoint)

    def step(self) -> None:
        """Advance the simulation by one timeslot.

        Any change here must be mirrored in :meth:`_step_profiled`, the
        section-timed twin used when a profiler is attached.
        """
        t = self.t
        slot = t % self._epoch_length
        phase = self._phase_table[slot]
        offset = self._offset_table[slot]
        if self.failure_manager is not None:
            self.failure_manager.advance(self, t)
        metrics = self.metrics
        if not metrics._measuring and t >= metrics.warmup:
            # entering the measured interval: drop warm-up window state so
            # the first post-warmup throughput window starts clean
            metrics.begin_measurement()
            if self.telemetry is not None:
                self.telemetry.resnapshot(metrics)
        if self._in_flight:
            self._deliver_arrivals(t, phase)
        if self._pending_flows:
            self._inject_flows(t)
        self._run_tx(t, phase, offset)
        if t >= metrics.warmup and t % metrics.sample_interval == 0:
            self._sample_metrics()
        if self.monitor is not None:
            self.monitor.on_step_end(self, t)
        self.t = t + 1

    def _step_profiled(self) -> None:
        """:meth:`step` with each section bracketed by the profiler clock.

        Kept as a twin rather than inline flag checks so the un-profiled
        step pays nothing; the golden-trace tests pin both paths to the
        same event stream.
        """
        profiler = self.profiler
        clock = profiler.clock
        t = self.t
        slot = t % self._epoch_length
        phase = self._phase_table[slot]
        offset = self._offset_table[slot]
        t0 = clock()
        if self.failure_manager is not None:
            self.failure_manager.advance(self, t)
        metrics = self.metrics
        if not metrics._measuring and t >= metrics.warmup:
            metrics.begin_measurement()
            if self.telemetry is not None:
                self.telemetry.resnapshot(metrics)
        t1 = clock()
        if self._in_flight:
            self._deliver_arrivals(t, phase)
        t2 = clock()
        if self._pending_flows:
            self._inject_flows(t)
        t3 = clock()
        self._run_tx(t, phase, offset)
        t4 = clock()
        if t >= metrics.warmup and t % metrics.sample_interval == 0:
            self._sample_metrics()
        t5 = clock()
        if self.monitor is not None:
            self.monitor.on_step_end(self, t)
        t6 = clock()
        profiler.add(t1 - t0, t2 - t1, t3 - t2, t4 - t3, t5 - t4, t6 - t5)
        self.t = t + 1

    def _deliver_arrivals(self, t: int, rx_phase: int) -> None:
        """Deliver due transmissions; ``rx_phase`` is the phase the receivers
        are in *now*, which determines each payload cell's next hop."""
        in_flight = self._in_flight
        nodes = self.nodes
        manager = self.failure_manager
        payload_arrived = 0
        popleft = in_flight.popleft
        pool = self._tx_pool
        while in_flight and in_flight[0].arrival <= t:
            tx = popleft()
            cell = tx.cell
            if cell is not None and not cell.dummy:
                payload_arrived += 1
            if manager is not None:
                # the wire model: failed receivers, failed links, noise
                tx = manager.filter_arrival(self, tx, t)
                if tx is None:
                    continue
                nodes[tx.receiver].receive(tx, t, rx_phase)
                continue
            receiver = nodes[tx.receiver]
            if receiver.failed:
                if cell is not None and not cell.dummy:
                    self.wire_drop(tx)
                continue
            # Node.receive inlined for the manager-free wire (the common
            # case): no liveness bookkeeping, and deafness complaints only
            # matter to a failure manager, so regular-token credit/release
            # plus the cell dispatch is the whole RX pipeline.
            sender = tx.sender
            tokens = tx.tokens
            if tokens:
                if receiver.uses_hbh:
                    spent = receiver._spent_map
                    is_first = receiver._is_first_map
                    refcount = receiver._refcount_map
                    budget1 = receiver._budget1
                    for token in tokens:
                        if token.kind == TOKEN_REGULAR:
                            dest = token.dest
                            sprays = token.sprays
                            key = (sender, dest, sprays)
                            if budget1:
                                spent.pop(key, None)
                            else:
                                used = spent.get(key, 0)
                                if used > 0:
                                    if used == 1:
                                        del spent[key]
                                        is_first.pop(key, None)
                                    else:
                                        spent[key] = used - 1
                            bucket = (dest, sprays)
                            count = refcount.get(bucket, 0)
                            if count > 1:
                                refcount[bucket] = count - 1
                            elif count:
                                del refcount[bucket]
                        else:
                            self.failures_on_token(
                                receiver, sender, token, rx_phase
                            )
                else:
                    for token in tokens:
                        if token.kind != TOKEN_REGULAR:
                            self.failures_on_token(
                                receiver, sender, token, rx_phase
                            )
            if tx.ctrl:
                for msg in tx.ctrl:
                    receiver._handle_ctrl(msg, t, rx_phase)
            if cell is not None and not cell.dummy:
                if cell.dst == tx.receiver:
                    receiver._deliver(cell, t)
                else:
                    receiver.enqueue_forward(cell, t, rx_phase)
            if len(pool) < 512:
                pool.append(tx)
        if payload_arrived:
            self._in_flight_payload -= payload_arrived

    def wire_drop(self, tx: Transmission) -> None:
        """Account a payload cell lost on the wire and heal sender credit.

        The sender charged a token for the cell's next-hop bucket when it
        transmitted (``Node._finish_forward``); the cell will never arrive
        to return it, so the credit is restored here.  Final-hop cells were
        never charged.
        """
        self.metrics.on_wire_loss()
        cell = tx.cell
        if self.digest is not None:
            self.digest.on_wire_loss(cell, self.t)
        sender = self.nodes[tx.sender]
        if (
            sender.uses_hbh
            and not sender.failed
            and tx.receiver != cell.dst
        ):
            # sprays_remaining was already decremented at transmit time, so
            # it names exactly the bucket that was charged
            sender.ledger.credit(tx.receiver, (cell.dst, cell.sprays_remaining))

    def _run_tx(self, t: int, phase: int, offset: int) -> None:
        arrival = t + self.config.propagation_delay
        enqueue_tx = self._in_flight.append
        metrics = self.metrics
        tracer = self.tracer
        digest = self.digest
        nodes = self.nodes
        pool = self._tx_pool
        # every node meets its round-robin peer on the same link index
        link = phase * (self.coords.r - 1) + offset - 1
        sent = dummies = payload = tokens_sent = 0
        if self.force_full_scan:
            # reference path: scan every node with the original per-node
            # checks and leave the active set untouched
            candidates = nodes
            active = None
        else:
            # nodes outside the active set are guaranteed skippable (failed,
            # or idle with no failed neighbours / owed probe replies), so
            # only the active ones are visited — in node-id order, which the
            # shared RNG stream requires.  When everything is active (the
            # loaded steady state) the node list is already that order.
            active = self._active_ids
            if len(active) == len(nodes):
                candidates = nodes
            else:
                candidates = [nodes[i] for i in sorted(active)]
        for node in candidates:
            if node.failed:
                if active is not None:
                    active.discard(node.node_id)
                continue
            if (
                node.total_enqueued == 0
                and not node.local_flows
                and node.pending_tokens == 0
                and node.pending_ctrl == 0
                and not node.rtx_queue
                and not node.failed_neighbors
                and not node._force_dummy
            ):
                if active is not None:
                    active.discard(node.node_id)
                continue
            if (
                active is None
                or not node._inline_tx
                or node.failed_neighbors
                or node._force_dummy
            ):
                # reference TX pipeline: force_full_scan runs, non-default
                # configurations, and nodes with failure state
                tx = node.transmit(t, phase, offset)
                if tx is None:
                    continue
            else:
                # Node.transmit inlined for the common case (the simulator's
                # hottest loop).  Must stay step-for-step equivalent to the
                # reference; tests/test_golden_traces.py and the
                # force_full_scan property test lock the equivalence down.
                neighbor = node.neighbors_flat[link]
                node_id = node.node_id
                cell = None
                items = node._link_items[link]
                if items:
                    if node.uses_hbh:
                        # budget-1 eligibility scan with the charge fused in
                        spent = node._spent_map
                        for i, c in enumerate(items):
                            dst = c.dst
                            if neighbor == dst:
                                del items[i]
                                cell = c
                                break
                            n = c.sprays_remaining
                            key = (neighbor, dst, n - 1 if n > 0 else 0)
                            if key not in spent:
                                del items[i]
                                cell = c
                                spent[key] = 1
                                break
                        if cell is not None:
                            # token upstream + bucket release
                            node.total_enqueued -= 1
                            n = cell.sprays_remaining
                            dst = cell.dst
                            prev = cell.prev_hop
                            bucket = (dst, n)
                            if prev >= 0:
                                queue = node.token_return.get(prev)
                                if queue is None:
                                    queue = deque()
                                    node.token_return[prev] = queue
                                tcache = node._token_cache
                                tok = tcache.get(bucket)
                                if tok is None:
                                    tok = Token(dst, n, TOKEN_REGULAR)
                                    tcache[bucket] = tok
                                queue.append(tok)
                                node.pending_tokens += 1
                            refcount = node._refcount_map
                            count = refcount.get(bucket, 0)
                            if count > 1:
                                refcount[bucket] = count - 1
                            elif count:
                                del refcount[bucket]
                            if n > 0:
                                cell.sprays_remaining = n - 1
                            cell.prev_hop = node_id
                            cell.hops += 1
                    else:
                        cell = items.pop(0)
                        node.total_enqueued -= 1
                        n = cell.sprays_remaining
                        if n > 0:
                            cell.sprays_remaining = n - 1
                        cell.prev_hop = node_id
                        cell.hops += 1
                if cell is None and (node.local_flows or node.rtx_queue):
                    if node.rtx_queue:
                        cell = node._admit_local_cell(t, phase, neighbor)
                    else:
                        flow = None
                        for f in node.local_flows:
                            if f.sent < f.size_cells:
                                flow = f
                                break
                        if flow is not None and node.uses_hbh:
                            key = (neighbor, flow.dst, node._hm1)
                            if key in node._spent_map:
                                flow = node._pick_flow(t, neighbor, phase)
                        if flow is not None:
                            cell = node._emit_flow_cell(
                                flow, t, phase, neighbor
                            )
                tokens = ()
                if node.pending_tokens:
                    queue = node.token_return.get(neighbor)
                    if queue:
                        limit = node._tokens_per_header
                        if len(queue) <= limit:
                            tokens = tuple(queue)
                            queue.clear()
                            node.pending_tokens -= len(tokens)
                        else:
                            out = []
                            while len(out) < limit:
                                out.append(queue.popleft())
                            node.pending_tokens -= limit
                            tokens = tuple(out)
                ctrl = ()
                if node.pending_ctrl:
                    queue = node.ctrl_out[link]
                    if queue:
                        out = []
                        while queue and len(out) < 2:
                            out.append(queue.popleft())
                        node.pending_ctrl -= len(out)
                        ctrl = tuple(out)
                if cell is None:
                    if not tokens and not ctrl:
                        continue
                    cell = Cell.make_dummy(node_id, neighbor)
                if pool:
                    tx = pool.pop()
                    tx.sender = node_id
                    tx.receiver = neighbor
                    tx.cell = cell
                    tx.tokens = tokens
                    tx.ctrl = ctrl
                else:
                    tx = Transmission(node_id, neighbor, cell, tokens, ctrl)
            cell = tx.cell
            sent += 1
            if cell.dummy:
                dummies += 1
            else:
                payload += 1
                if tracer is not None:
                    tracer.on_hop(cell, tx.sender, tx.receiver, t)
            tokens = tx.tokens
            if tokens:
                tokens_sent += len(tokens)
                if digest is not None:
                    digest.on_tokens(tx.sender, tx.receiver, tokens, t)
            tx.arrival = arrival
            enqueue_tx(tx)
        if sent:
            metrics.cells_sent += sent
            metrics.dummy_cells_sent += dummies
            metrics.tokens_sent += tokens_sent
            self._in_flight_payload += payload

    def _sample_metrics(self) -> None:
        """Close one sample window: metrics sampling, then telemetry."""
        self.metrics.sample_engine_nodes(self.nodes)
        if self.telemetry is not None:
            self.telemetry.on_window(self, self.t)

    # ------------------------------------------------------------------ #
    # ISD (idealized sender-driven) global rate control

    def isd_credit(self, flow: Flow, t: int) -> bool:
        """Top up and test the flow's ISD send credit.

        The global receiver-bandwidth budget ``R = isd_rate_factor / (2h)``
        is split evenly between the ``k`` flows currently addressing the
        destination, with instantaneous (clairvoyant) knowledge of ``k``.
        """
        rate = (
            self.config.isd_rate_factor
            * self.schedule.throughput_guarantee()
            / max(1, self.flows.flows_to(flow.dst))
        )
        last = self._isd_last.get(flow.flow_id, flow.arrival)
        if t > last:
            flow.credit = min(4.0, flow.credit + rate * (t - last))
            self._isd_last[flow.flow_id] = t
        return flow.credit >= 1.0

    # ------------------------------------------------------------------ #
    # failure hooks (delegated to the failure manager when present)

    def failures_on_token(self, node: Node, sender: int, token: Token,
                          phase: int) -> None:
        """Dispatch an invalidation/re-validation token to the manager."""
        if self.failure_manager is not None:
            self.failure_manager.on_token(self, node, sender, token, phase)

    # ------------------------------------------------------------------ #
    # conveniences

    def throughput(self) -> float:
        """Mean delivered payload per node per slot so far (line-rate frac)."""
        alive = sum(1 for n in self.nodes if not n.failed)
        return self.metrics.mean_throughput_cells_per_slot(max(1, self.t), alive)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Engine(n={self.config.n}, h={self.config.h}, "
            f"cc={self.config.congestion_control!r}, t={self.t})"
        )
