"""The packet-level simulation engine.

The engine advances a synchronous timeslot clock.  Per slot it:

1. delivers transmissions whose propagation deadline has passed (RX paths),
2. injects flows whose arrival time has come,
3. runs every non-idle node's TX path and puts the result on the wire,
4. samples metrics at the configured interval.

Propagation is modelled with a FIFO of in-flight transmissions: sends happen
in time order, so the deque stays sorted by arrival deadline and delivery is
O(1) per transmission.

The engine also hosts the two pieces of *global* machinery the paper's
baselines assume: the ISD clairvoyant flow registry (Section 5.3, baseline 3)
and the failure manager hooks (Section 3.4).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from ..core.header import Token
from ..core.strategies import make_router, shared_schedule
from .backends import make_backend
from .backends import object_backend as _object_backend
from .config import SimConfig
from .digest import DeterminismDigest
from .flows import Flow, FlowTable
from .metrics import MetricsCollector
from .node import Node, Transmission

__all__ = ["Engine", "ScheduledFlow"]

#: A flow injection request: (arrival timeslot, src, dst, size in cells,
#: size in bytes).
ScheduledFlow = Tuple[int, int, int, int, int]

#: Observers called with each freshly constructed Engine.  The telemetry
#: capture context (:class:`repro.obs.capture.TelemetryCapture`) registers
#: itself here so that engines built deep inside experiment modules pick up
#: instrumentation without any plumbing; the list is empty (one truthiness
#: check per construction) outside a capture context.
_construction_hooks: List[Callable[["Engine"], None]] = []


class Engine:
    """Simulates one Shale network running a single (sub-)schedule.

    Args:
        config: run parameters.
        workload: iterable of :data:`ScheduledFlow` tuples sorted by arrival
            time.  May also be supplied later via :meth:`schedule_flows`.
        failure_manager: optional failure-protocol implementation (an object
            with ``on_token`` and ``apply`` hooks; see
            :mod:`repro.failures.manager`).
    """

    def __init__(
        self,
        config: SimConfig,
        workload: Optional[Iterable[ScheduledFlow]] = None,
        failure_manager=None,
    ):
        self.config = config
        # schedule tables are immutable and depend only on (strategy, n, h):
        # every engine of a sweep shares one process-wide instance per size
        self.schedule = shared_schedule(config.schedule, config.n, config.h)
        self.coords = self.schedule.coords
        self.rng = random.Random(config.seed)
        #: routing strategy deciding each cell's admission shape; shares the
        #: engine RNG so strategy choice alone never forks the stream
        self.routing = make_router(config.routing, self.schedule, self.rng)
        self.flows = FlowTable()
        self.metrics = MetricsCollector(
            config.n,
            sample_interval=config.metrics_sample_interval,
            warmup=config.warmup,
        )
        #: node ids that may need to transmit (superset invariant: a node
        #: outside this set is failed, or idle with no failed neighbours and
        #: no owed probe replies).  Nodes add themselves on every idle->busy
        #: transition (``Node.wake``); ``_run_tx`` removes nodes it finds
        #: skippable.  Built before the nodes so ``wake`` works during setup.
        self._active_ids: Set[int] = set(range(config.n))
        #: debug/reference switch: scan every node per slot instead of the
        #: active set (must be event-identical; see tests/test_properties.py)
        self.force_full_scan = False
        #: recycled Transmission shells — a transmission dies as soon as its
        #: receiver processes it, so the wire re-uses the objects instead of
        #: allocating ~one per node per slot (identity is never observed).
        #: Built before the nodes, which cache a reference.
        self._tx_pool: List[Transmission] = []
        self.nodes: List[Node] = [Node(i, self) for i in range(config.n)]
        self.t = 0
        # hot-path caches for step()
        self._epoch_length = self.schedule.epoch_length
        self._phase_table = self.schedule.phase_table
        self._offset_table = self.schedule.offset_table
        self._in_flight: Deque[Transmission] = deque()
        #: payload (non-dummy) cells currently on the wire — part of the
        #: cell-conservation invariant and the quiescence condition
        self._in_flight_payload = 0
        #: currently failed *directed* links as (sender, receiver) pairs;
        #: transmissions crossing one are lost on the wire
        self.failed_links: Set[Tuple[int, int]] = set()
        #: optional RunMonitor (see repro.sim.monitor) called once per slot
        self.monitor = None
        #: optional TimeSeriesRecorder (repro.obs.timeseries) fed one row
        #: per closed sample window; attach via its ``attach`` method
        self.telemetry = None
        #: optional EventLog (repro.obs.events) receiving structured
        #: ``(t, kind, payload)`` run events; attach via its ``attach``
        self.events = None
        #: optional StepProfiler (repro.obs.profiler); when set the run
        #: loops dispatch to the timed step twin (:meth:`_step_profiled`),
        #: so the normal step pays nothing for the feature
        self.profiler = None
        self._pending_flows: Deque[ScheduledFlow] = deque()
        if workload is not None:
            self.schedule_flows(workload)
        self.failure_manager = failure_manager
        if failure_manager is not None:
            failure_manager.apply(self)
        #: optional CellTracer (see repro.sim.trace) recording cell paths
        self.tracer = None
        #: optional callable(cell, t) invoked on every payload delivery
        #: (used by repro.sim.reorder.ReorderTracker, among others)
        self.delivery_hook = None
        #: optional DeterminismDigest folding every delivery/drop/token
        #: event (see repro.sim.digest); attach via :meth:`enable_digest`
        self.digest: Optional[DeterminismDigest] = None
        # ISD bookkeeping: last time each flow's credit was topped up
        self._isd_last: Dict[int, int] = {}
        #: optional CheckpointWriter (repro.sim.checkpoint); when set the
        #: run loops dispatch to snapshot-aware twins, so the normal loops
        #: pay nothing for the feature (same pattern as the profiler)
        self._checkpointer = None
        #: loop marker restored from a checkpoint: ``(ordinal, end)`` of the
        #: run/drain loop the snapshot was taken inside (None otherwise)
        self._resume: Optional[Tuple[int, int]] = None
        #: run/drain loops entered so far; a checkpoint records the ordinal
        #: so resume can fast-forward loops that completed before it
        self._loops_entered = 0
        #: observer state from a restored checkpoint, waiting for a
        #: monitor/recorder/event log to be attached and absorb it
        self._pending_restore: Optional[Dict[str, object]] = None
        #: the slot-loop backend (see repro.sim.backends): owns the
        #: run/drain loops; the object model stays authoritative between
        #: backend calls, so observers and manual step() always work
        self.backend = make_backend(config.backend)
        #: the pipeline that actually ran: starts as the configured backend
        #: name and is downgraded (sticky, with a one-line stderr notice) by
        #: note_backend_effective() when an accelerated backend falls back
        #: to the reference pipeline — so manifests record the truth instead
        #: of a silent de-acceleration
        self.backend_effective: str = self.backend.backend_name
        self._fallback_noted = False
        if _construction_hooks:
            for hook in _construction_hooks:
                hook(self)

    def note_backend_effective(self, name: str, reason: str = "") -> None:
        """Record that the slot loop ran as ``name`` (e.g. ``"object"``).

        Called by accelerated backends when they fall back to the reference
        pipeline.  Emits a single stderr notice per engine so a silently
        de-accelerated run is visible, and records the effective name for
        the run manifest.  Downgrades are sticky: once any segment of a run
        fell back, the manifest says so even if later segments re-engage.
        """
        if name == self.backend.backend_name:
            return
        self.backend_effective = name
        if not self._fallback_noted:
            self._fallback_noted = True
            import sys

            why = f" ({reason})" if reason else ""
            print(
                f"[repro] backend {self.backend.backend_name!r} fell back "
                f"to {name!r} pipeline{why}",
                file=sys.stderr,
            )

    def enable_profiler(self):
        """Attach (and return) a step profiler; see repro.obs.profiler.

        Like the digest, the profiler is a pure observer: the simulated
        event stream is bit-identical with and without it (the timed step
        twin mirrors :meth:`step` exactly).
        """
        from ..obs.profiler import StepProfiler

        self.profiler = StepProfiler()
        return self.profiler

    def enable_digest(self) -> DeterminismDigest:
        """Attach (and return) a fresh event digest for equivalence tests.

        The digest is a pure observer: enabling it never changes simulated
        behavior, only records it.  Idempotent: a digest that already exists
        (e.g. restored from a checkpoint) is kept, so resumed runs keep
        accumulating the same event stream.
        """
        if self.digest is None:
            self.digest = DeterminismDigest()
        return self.digest

    # ------------------------------------------------------------------ #
    # workload plumbing

    def schedule_flows(self, workload: Iterable[ScheduledFlow]) -> None:
        """Queue flow arrivals; they must be sorted by arrival timeslot."""
        last = self._pending_flows[-1][0] if self._pending_flows else -1
        for item in workload:
            if item[0] < last:
                raise ValueError("workload must be sorted by arrival time")
            last = item[0]
            self._pending_flows.append(item)

    def _inject_flows(self, t: int) -> None:
        pending = self._pending_flows
        events = self.events
        while pending and pending[0][0] <= t:
            arrival, src, dst, size_cells, size_bytes = pending.popleft()
            node = self.nodes[src]
            if node.failed or self.nodes[dst].failed:
                continue
            flow = self.flows.new_flow(
                src, dst, size_cells, arrival, size_bytes=size_bytes
            )
            node.add_flow(flow)
            if events is not None:
                events.emit(t, "flow_start", {
                    "flow": flow.flow_id, "src": src, "dst": dst,
                    "cells": size_cells,
                })

    # ------------------------------------------------------------------ #
    # main loop

    def run(self, duration: Optional[int] = None) -> MetricsCollector:
        """Run for ``duration`` timeslots (default: ``config.duration``)."""
        end = self.t + (duration if duration is not None else self.config.duration)
        ordinal = self._loops_entered
        self._loops_entered = ordinal + 1
        if self._resume is not None:
            end = self._resume_end(ordinal, end)
            if end is None:
                return self.metrics  # loop completed before the snapshot
        step = self.step if self.profiler is None else self._step_profiled
        if self._checkpointer is not None:
            self._run_checkpointed(step, end, ordinal)
        else:
            self.backend.step_slots(self, end, step)
        return self.metrics

    def run_until_quiescent(self, max_extra: int = 1_000_000) -> MetricsCollector:
        """Keep stepping until every flow completes (or ``max_extra`` slots).

        Quiescence considers only *payload* traffic: with a failure manager
        attached, liveness probes keep crossing suspect links forever, so
        waiting for an empty wire would never terminate.
        """
        deadline = self.t + max_extra
        ordinal = self._loops_entered
        self._loops_entered = ordinal + 1
        if self._resume is not None:
            deadline = self._resume_end(ordinal, deadline)
            if deadline is None:
                return self.metrics  # loop completed before the snapshot
        step = self.step if self.profiler is None else self._step_profiled
        if self._checkpointer is not None:
            self._drain_checkpointed(step, deadline, ordinal)
        else:
            self.backend.drain_slots(self, deadline, step)
        return self.metrics

    @property
    def has_pending_work(self) -> bool:
        """Whether payload work remains (the drain loop's continue test).

        True while flows are waiting to inject, flows are still active, or
        payload cells are on the wire — exactly the condition
        :meth:`run_until_quiescent` keeps stepping under.  Public so
        incremental drivers (the live service) can drain in bounded steps
        without reaching into engine internals.
        """
        return bool(
            self._pending_flows
            or self.flows.active_count
            or self._in_flight_payload
        )

    def _resume_end(self, ordinal: int, end: int) -> Optional[int]:
        """Resolve a run/drain loop entry against a restored loop marker.

        A checkpoint taken inside loop ``k`` (by entry order) means loops
        ``< k`` already ran to completion before the snapshot — re-entering
        one is a no-op (returns None).  Loop ``k`` itself adopts the saved
        absolute end so the resumed run stops exactly where the original
        would have; later loops run normally.
        """
        resume_ordinal, resume_end = self._resume
        if ordinal < resume_ordinal:
            return None
        self._resume = None
        return resume_end if ordinal == resume_ordinal else end

    def _run_checkpointed(self, step, end: int, ordinal: int) -> None:
        """The :meth:`run` loop with the periodic snapshot hook.

        Kept out of :meth:`run` so the checkpoint-off loop stays exactly
        as tight as before the feature existed.
        """
        writer = self._checkpointer
        writer.arm(self.t)
        while self.t < end:
            # advance in backend segments bounded by the next snapshot
            # instant, so snapshots land on the exact same slots as the
            # pre-backend per-step check did
            target = min(end, max(writer.due_t, self.t + 1))
            self.backend.step_slots(self, target, step)
            if self.t >= writer.due_t:
                writer.write(self, ordinal, end)

    def _drain_checkpointed(self, step, deadline: int, ordinal: int) -> None:
        """The :meth:`run_until_quiescent` loop with the snapshot hook."""
        writer = self._checkpointer
        writer.arm(self.t)
        while self.t < deadline and (
            self._pending_flows
            or self.flows.active_count
            or self._in_flight_payload
        ):
            target = min(deadline, max(writer.due_t, self.t + 1))
            self.backend.drain_slots(self, target, step)
            if self.t >= writer.due_t:
                writer.write(self, ordinal, deadline)

    # ------------------------------------------------------------------ #
    # checkpoint/restore (see repro.sim.checkpoint for the format)

    def enable_checkpoints(self, path, every: int) -> None:
        """Write a snapshot to ``path`` every ``every`` timeslots while a
        run/drain loop is active (atomic replace; the file always holds the
        latest complete snapshot)."""
        from .checkpoint import CheckpointWriter

        self._checkpointer = CheckpointWriter(path, every)

    def snapshot(self) -> "Checkpoint":
        """Capture the complete mutable simulation state as a
        :class:`~repro.sim.checkpoint.Checkpoint`."""
        from .checkpoint import snapshot_engine

        return snapshot_engine(self)

    @classmethod
    def restore(cls, checkpoint) -> "Engine":
        """Build a fresh engine resumed from ``checkpoint``.

        The resumed engine replays the remainder of the run bit-exactly:
        stepping it to the original end time yields the same digest,
        metrics and flow records as the uninterrupted run.
        """
        from .checkpoint import restore_engine

        return restore_engine(checkpoint)

    def discard_resume_plan(self) -> None:
        """Forget a restored loop marker; keep the restored state.

        A checkpoint taken inside a run/drain loop records which loop (by
        entry order) it interrupted, so code that *replays the original
        call sequence* — ``simulate()`` resuming its own checkpoint — can
        fast-forward completed loops and stop the interrupted one at its
        original end.  A live :class:`~repro.service.session.Session` does
        the opposite: it continues from the restored slot under a brand-new
        advance schedule, so it must drop the marker or its first
        ``advance()`` calls would be swallowed as already-completed loops.
        """
        self._resume = None
        self._loops_entered = 0

    def _apply_checkpoint(self, checkpoint) -> None:
        """Overwrite this engine's state with ``checkpoint`` (same config)."""
        from .checkpoint import apply_checkpoint

        apply_checkpoint(self, checkpoint)

    def step(self) -> None:
        """Advance the simulation by one timeslot.

        Any change here must be mirrored in :meth:`_step_profiled`, the
        section-timed twin used when a profiler is attached.
        """
        t = self.t
        slot = t % self._epoch_length
        phase = self._phase_table[slot]
        offset = self._offset_table[slot]
        if self.failure_manager is not None:
            self.failure_manager.advance(self, t)
        metrics = self.metrics
        if not metrics._measuring and t >= metrics.warmup:
            # entering the measured interval: drop warm-up window state so
            # the first post-warmup throughput window starts clean
            metrics.begin_measurement()
            if self.telemetry is not None:
                self.telemetry.resnapshot(metrics)
        if self._in_flight:
            self._deliver_arrivals(t, phase)
        if self._pending_flows:
            self._inject_flows(t)
        self._run_tx(t, phase, offset)
        if t >= metrics.warmup and t % metrics.sample_interval == 0:
            self._sample_metrics()
        if self.monitor is not None:
            self.monitor.on_step_end(self, t)
        self.t = t + 1

    def _step_profiled(self) -> None:
        """:meth:`step` with each section bracketed by the profiler clock.

        Kept as a twin rather than inline flag checks so the un-profiled
        step pays nothing; the golden-trace tests pin both paths to the
        same event stream.
        """
        profiler = self.profiler
        clock = profiler.clock
        t = self.t
        slot = t % self._epoch_length
        phase = self._phase_table[slot]
        offset = self._offset_table[slot]
        t0 = clock()
        if self.failure_manager is not None:
            self.failure_manager.advance(self, t)
        metrics = self.metrics
        if not metrics._measuring and t >= metrics.warmup:
            metrics.begin_measurement()
            if self.telemetry is not None:
                self.telemetry.resnapshot(metrics)
        t1 = clock()
        if self._in_flight:
            self._deliver_arrivals(t, phase)
        t2 = clock()
        if self._pending_flows:
            self._inject_flows(t)
        t3 = clock()
        self._run_tx(t, phase, offset)
        t4 = clock()
        if t >= metrics.warmup and t % metrics.sample_interval == 0:
            self._sample_metrics()
        t5 = clock()
        if self.monitor is not None:
            self.monitor.on_step_end(self, t)
        t6 = clock()
        profiler.add(t1 - t0, t2 - t1, t3 - t2, t4 - t3, t5 - t4, t6 - t5)
        self.t = t + 1

    def _deliver_arrivals(self, t: int, rx_phase: int) -> None:
        """Deliver due transmissions (the reference RX loop; see
        :func:`repro.sim.backends.object_backend.deliver_arrivals`)."""
        _object_backend.deliver_arrivals(self, t, rx_phase)

    def wire_drop(self, tx: Transmission) -> None:
        """Account a payload cell lost on the wire and heal sender credit.

        The sender charged a token for the cell's next-hop bucket when it
        transmitted (``Node._finish_forward``); the cell will never arrive
        to return it, so the credit is restored here.  Final-hop cells were
        never charged.
        """
        self.metrics.on_wire_loss()
        cell = tx.cell
        if self.digest is not None:
            self.digest.on_wire_loss(cell, self.t)
        sender = self.nodes[tx.sender]
        if sender.uses_hbh and tx.receiver != cell.dst:
            # sprays_remaining was already decremented at transmit time, so
            # it names exactly the bucket that was charged.  The heal also
            # applies to a sender that failed after transmitting: the credit
            # lives in the ledger state that reset_for_recovery preserves,
            # so skipping it would leak the charged bucket permanently
            # (crediting an uncharged pair is a tolerated no-op, which makes
            # the unconditional heal safe in every interleaving).
            sender.ledger.credit(tx.receiver, (cell.dst, cell.sprays_remaining))

    def _run_tx(self, t: int, phase: int, offset: int) -> None:
        """Run every non-idle node's TX path (the reference TX loop; see
        :func:`repro.sim.backends.object_backend.run_tx`)."""
        _object_backend.run_tx(self, t, phase, offset)

    def _sample_metrics(self) -> None:
        """Close one sample window: metrics sampling, then telemetry."""
        self.metrics.sample_engine_nodes(self.nodes)
        if self.telemetry is not None:
            self.telemetry.on_window(self, self.t)

    # ------------------------------------------------------------------ #
    # ISD (idealized sender-driven) global rate control

    def isd_credit(self, flow: Flow, t: int) -> bool:
        """Top up and test the flow's ISD send credit.

        The global receiver-bandwidth budget ``R = isd_rate_factor / (2h)``
        is split evenly between the ``k`` flows currently addressing the
        destination, with instantaneous (clairvoyant) knowledge of ``k``.
        """
        rate = (
            self.config.isd_rate_factor
            * self.schedule.throughput_guarantee()
            / max(1, self.flows.flows_to(flow.dst))
        )
        last = self._isd_last.get(flow.flow_id, flow.arrival)
        if t > last:
            flow.credit = min(4.0, flow.credit + rate * (t - last))
            self._isd_last[flow.flow_id] = t
        return flow.credit >= 1.0

    # ------------------------------------------------------------------ #
    # failure hooks (delegated to the failure manager when present)

    def failures_on_token(self, node: Node, sender: int, token: Token,
                          phase: int) -> None:
        """Dispatch an invalidation/re-validation token to the manager."""
        if self.failure_manager is not None:
            self.failure_manager.on_token(self, node, sender, token, phase)

    # ------------------------------------------------------------------ #
    # conveniences

    def throughput(self) -> float:
        """Mean delivered payload per node per slot so far (line-rate frac)."""
        alive = sum(1 for n in self.nodes if not n.failed)
        return self.metrics.mean_throughput_cells_per_slot(max(1, self.t), alive)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Engine(n={self.config.n}, h={self.config.h}, "
            f"cc={self.config.congestion_control!r}, t={self.t})"
        )
