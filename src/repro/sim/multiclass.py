"""Multi-class simulation over an interleaved schedule (paper Section 3.2.2).

Interleaving runs several sub-schedules side by side on the same physical
ports: the master clock hands each timeslot to exactly one sub-schedule, and
each cell lives entirely within one sub-schedule.  We therefore model an
interleaved network as a set of independent :class:`~repro.sim.engine.Engine`
instances — one per sub-schedule, each with its own queues and coordinate
system — stepped only on the master slots the interleave pattern assigns to
them.

Flow classification follows the interleave's flow-size cutoffs: short flows
ride the low-latency (high-``h``) sub-schedule, long flows the
high-throughput one.

Latency accounting is kept in *master* timeslots so that sub-schedule
dilation (the paper's "a sub-schedule allocated half of the timeslots will
take twice as long") shows up in the measured FCTs exactly as it would in a
real deployment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.interleave import InterleavedSchedule
from .config import SimConfig
from .engine import Engine, ScheduledFlow
from .flows import FlowRecord

__all__ = ["MultiClassSimulation"]


class MultiClassSimulation:
    """Drives one engine per sub-schedule under a shared master clock.

    Args:
        interleave: the interleaved schedule (shares and cutoffs).
        base_config: configuration template; ``n`` must match the
            sub-schedules and ``h`` is overridden per class.
        workload: master-clock flow arrivals ``(t, src, dst, cells, bytes)``.
    """

    def __init__(
        self,
        interleave: InterleavedSchedule,
        base_config: SimConfig,
        workload: Optional[Iterable[ScheduledFlow]] = None,
    ):
        self.interleave = interleave
        self.engines: List[Engine] = []
        for i, spec in enumerate(interleave.specs):
            if spec.schedule.n != base_config.n:
                raise ValueError(
                    f"sub-schedule {spec.name} is for {spec.schedule.n} nodes, "
                    f"config says {base_config.n}"
                )
            cfg = replace(base_config, h=spec.schedule.h, seed=base_config.seed + i)
            self.engines.append(Engine(cfg))
        self.t = 0
        self._pending: List[ScheduledFlow] = sorted(workload or [])
        self._next_flow = 0

    def schedule_flows(self, workload: Iterable[ScheduledFlow]) -> None:
        """Add master-clock flow arrivals (re-sorts the queue)."""
        remaining = self._pending[self._next_flow:]
        remaining.extend(workload)
        remaining.sort()
        self._pending = remaining
        self._next_flow = 0

    def step(self) -> None:
        """Advance the master clock by one timeslot."""
        t = self.t
        owner = self.interleave.owner(t)
        self._dispatch_flows(t)
        engine = self.engines[owner]
        # The sub-engine runs one of *its* slots, but all timestamps it
        # records must be master timestamps.
        engine.t = t
        saved_phase = engine.schedule  # noqa: F841  (clarity only)
        self._step_engine(engine, owner, t)
        self.t = t + 1

    def _step_engine(self, engine: Engine, owner: int, master_t: int) -> None:
        _, sub_t = self.interleave.sub_timeslot(master_t)
        phase = engine.schedule.phase_of(sub_t)
        offset = engine.schedule.offset_of(sub_t)
        # receivers decode their current phase from the *master* clock (the
        # sub-engine's wall time), not the sub-slot driving this TX step
        rx_phase = engine.schedule.phase_of(master_t)
        engine.t = master_t
        metrics = engine.metrics
        if not metrics._measuring and master_t >= metrics.warmup:
            metrics.begin_measurement()
            if engine.telemetry is not None:
                engine.telemetry.resnapshot(metrics)
        engine._deliver_arrivals(master_t, rx_phase)
        engine._inject_flows(master_t)
        engine._run_tx(master_t, phase, offset)
        if metrics.should_sample(master_t):
            engine._sample_metrics()

    def _dispatch_flows(self, t: int) -> None:
        pending = self._pending
        while self._next_flow < len(pending) and pending[self._next_flow][0] <= t:
            arrival, src, dst, cells, size_bytes = pending[self._next_flow]
            self._next_flow += 1
            cls = self.interleave.classify_flow(cells)
            self.engines[cls].schedule_flows([(arrival, src, dst, cells, size_bytes)])

    def run(self, duration: int) -> None:
        """Run ``duration`` master timeslots."""
        end = self.t + duration
        while self.t < end:
            self.step()

    def run_until_quiescent(self, max_extra: int = 1_000_000) -> None:
        """Run until all engines drain (or the safety cap is hit)."""
        deadline = self.t + max_extra
        while self.t < deadline and any(
            e._pending_flows or e.flows.active_count or e._in_flight
            for e in self.engines
        ) or self._next_flow < len(self._pending):
            if self.t >= deadline:
                break
            self.step()

    # ------------------------------------------------------------------ #
    # telemetry

    def attach_telemetry(self) -> List[object]:
        """Attach a time-series recorder to every sub-schedule engine.

        Returns the recorders in class order; engines that already carry a
        recorder keep it.  Each class records its own per-window series
        (master-clock timestamps), which is the per-class breakdown the
        interleaving experiments report.
        """
        from ..obs.timeseries import TimeSeriesRecorder

        recorders = []
        for engine in self.engines:
            recorder = engine.telemetry
            if recorder is None:
                recorder = TimeSeriesRecorder().attach(engine)
            recorders.append(recorder)
        return recorders

    def telemetry_by_class(self) -> Dict[int, Dict[str, List[int]]]:
        """Per-class time series (class index -> column dict)."""
        return {
            i: engine.telemetry.to_dict()
            for i, engine in enumerate(self.engines)
            if engine.telemetry is not None
        }

    # ------------------------------------------------------------------ #
    # results

    def completed_flows(self) -> List[FlowRecord]:
        """All completed flows across classes (master-clock FCTs)."""
        out: List[FlowRecord] = []
        for engine in self.engines:
            out.extend(engine.flows.completed)
        return out

    def completed_by_class(self) -> Dict[int, List[FlowRecord]]:
        """Completed flows grouped by sub-schedule index."""
        return {
            i: list(engine.flows.completed)
            for i, engine in enumerate(self.engines)
        }

    def total_delivered_cells(self) -> int:
        """Payload cells delivered across every class."""
        return sum(e.metrics.payload_cells_delivered for e in self.engines)
