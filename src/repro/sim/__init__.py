"""Packet-level discrete-timeslot simulator for Shale networks."""

from .backends import (
    EngineBackend,
    backend_names,
    default_backend,
    set_default_backend,
)
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointPolicy,
    CheckpointWriter,
    default_policy,
    discard_checkpoint,
    load_any_checkpoint_or_none,
    load_checkpoint,
    load_checkpoint_or_none,
    save_checkpoint,
    save_split_checkpoint,
    set_default_policy,
    shard_part_paths,
)
from .config import PAPER_TIMING, SimConfig, TimingModel
from .engine import Engine, ScheduledFlow
from .flows import Flow, FlowRecord, FlowTable
from .metrics import MetricsCollector, percentile
from .monitor import ConservationError, RunMonitor
from .multiclass import MultiClassSimulation
from .node import ControlMessage, Node, Transmission
from .parallel import default_workers, sweep
from .pieo import PieoQueue
from .reorder import ReorderBuffer, ReorderTracker
from .trace import CellTrace, CellTracer, TraceError, validate_trace

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointWriter",
    "ConservationError",
    "ControlMessage",
    "Engine",
    "EngineBackend",
    "backend_names",
    "default_backend",
    "set_default_backend",
    "default_policy",
    "discard_checkpoint",
    "load_any_checkpoint_or_none",
    "load_checkpoint",
    "load_checkpoint_or_none",
    "save_checkpoint",
    "save_split_checkpoint",
    "set_default_policy",
    "shard_part_paths",
    "RunMonitor",
    "Flow",
    "FlowRecord",
    "FlowTable",
    "MetricsCollector",
    "MultiClassSimulation",
    "Node",
    "PAPER_TIMING",
    "PieoQueue",
    "CellTrace",
    "CellTracer",
    "TraceError",
    "validate_trace",
    "ScheduledFlow",
    "SimConfig",
    "TimingModel",
    "Transmission",
    "percentile",
    "ReorderBuffer",
    "ReorderTracker",
    "default_workers",
    "sweep",
]
