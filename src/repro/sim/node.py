"""End-host model for the packet-level simulator.

Each :class:`Node` mirrors the structure of the paper's FPGA end-host
(Section 4.1): per-link send queues (PIEO under hop-by-hop), a token ledger
and per-neighbour token-return queues, local flow queues, and the RX/TX
processing paths.  The same node implementation hosts every congestion
control mechanism of Section 5.3 — ``none``, ``priority``, ``ISD``, ``RD``,
``NDP``, ``spray-short``, ``hop-by-hop`` and ``HBH+spray`` — selected by
:class:`~repro.sim.config.SimConfig` flags, so that mechanisms differ only in
the ways the paper says they differ.

Hot-path discipline: this module is executed once per node per timeslot, so
it avoids allocation where possible and keeps attribute access local.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..core.buckets import ActiveBucketTracker, TokenLedger
from ..core.cell import Cell
from ..core.header import TOKEN_INVALIDATE, TOKEN_REGULAR, Token
from .config import SimConfig
from .flows import Flow
from .pieo import PieoQueue

__all__ = ["Node", "Transmission", "ControlMessage",
           "LINK_SILENT", "LINK_DEAF"]

# control message kinds (receiver-driven protocols)
CTRL_PULL = "pull"
CTRL_TRIM = "trim"
CTRL_RTX = "rtx"
CTRL_PROBE = "probe"

# why a neighbour is marked down in ``Node._fail_cause`` (a bitmask — both
# causes can hold at once; the link re-validates only when both clear)
LINK_SILENT = 1  #: we stopped hearing the neighbour (missed-cell detection)
LINK_DEAF = 2  #: the neighbour told us it stopped hearing *us*


class ControlMessage:
    """A small end-to-end control message (PULL / trim notice / RTX request).

    Control messages ride in reserved header space (paper Section 5.3
    baseline 4) but are routed end-to-end through the same VLB paths as data
    cells, so they experience the network's queuing.
    """

    __slots__ = ("kind", "flow_id", "src", "dst", "seq", "sprays_remaining")

    def __init__(self, kind: str, flow_id: int, src: int, dst: int, seq: int = 0):
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.sprays_remaining = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Ctrl({self.kind}, flow={self.flow_id}, {self.src}->{self.dst})"

    def state(self) -> tuple:
        """All fields as a flat tuple (checkpoint encoding)."""
        return (self.kind, self.flow_id, self.src, self.dst, self.seq,
                self.sprays_remaining)

    @classmethod
    def from_state(cls, state: tuple) -> "ControlMessage":
        msg = cls(state[0], state[1], state[2], state[3], state[4])
        msg.sprays_remaining = state[5]
        return msg


class Transmission:
    """Everything sent over one link in one timeslot: a cell plus header
    sidecars (tokens and control messages)."""

    __slots__ = ("sender", "receiver", "cell", "tokens", "ctrl", "arrival")

    def __init__(
        self,
        sender: int,
        receiver: int,
        cell: Optional[Cell],
        tokens: Tuple[Token, ...] = (),
        ctrl: Tuple[ControlMessage, ...] = (),
    ):
        self.sender = sender
        self.receiver = receiver
        self.cell = cell
        self.tokens = tokens
        self.ctrl = ctrl
        #: wire delivery time, stamped by the engine when the transmission
        #: enters the in-flight queue (so the wire needs no wrapper tuples)
        self.arrival = -1

    def state(self) -> tuple:
        """All fields as plain data (checkpoint encoding)."""
        return (
            self.sender, self.receiver,
            None if self.cell is None else self.cell.state(),
            tuple(token.state() for token in self.tokens),
            tuple(msg.state() for msg in self.ctrl),
            self.arrival,
        )

    @classmethod
    def from_state(cls, state: tuple) -> "Transmission":
        sender, receiver, cell, tokens, ctrl, arrival = state
        tx = cls(
            sender, receiver,
            None if cell is None else Cell.from_state(cell),
            tuple(Token.from_state(t) for t in tokens),
            tuple(ControlMessage.from_state(m) for m in ctrl),
        )
        tx.arrival = arrival
        return tx


class Node:
    """One end host participating in the Shale schedule."""

    __slots__ = (
        "node_id",
        "engine",
        "coords",
        "h",
        "r",
        "config",
        "rng",
        "mode",
        "uses_hbh",
        "uses_spray_short",
        "is_ndp",
        "is_rd_family",
        "neighbors",
        "link_queues",
        "token_return",
        "ledger",
        "bucket_tracker",
        "local_flows",
        "rtx_queue",
        "ctrl_out",
        "total_enqueued",
        "pending_tokens",
        "pending_ctrl",
        "failed",
        "failed_neighbors",
        "known_failed",
        "link_invalid",
        "_fail_cause",
        "_force_dummy",
        "epoch_length",
        "_recv_counts",
        # hot-path caches (derived, never authoritative)
        "neighbors_flat",
        "_rm1",
        "_is_priority",
        "_fifo_hbh",
        "_tokens_per_header",
        "_my_digits",
        "_weights",
        "_active",
        "_randrange",
        "_getrandbits",
        "_spray_bits",
        "_phase_queues",
        "_phase_items",
        "_token_cache",
        "_spent_map",
        "_is_first_map",
        "_refcount_map",
        "_budget1",
        "_fh_budget",
        "_hm1",
        "_simple_pick",
        "_metrics",
        "_tx_pool",
        "_inline_tx",
        "_link_items",
        "_routing",
        "_default_routing",
    )

    def __init__(self, node_id: int, engine) -> None:
        self.node_id = node_id
        self.engine = engine
        self.coords = engine.coords
        self.h = engine.coords.h
        self.r = engine.coords.r
        config: SimConfig = engine.config
        self.config = config
        self.rng: random.Random = engine.rng
        self.mode = config.congestion_control
        self.uses_hbh = config.uses_hop_by_hop
        self.uses_spray_short = config.uses_spray_short
        self.is_ndp = self.mode == "ndp"
        self.is_rd_family = self.mode in ("rd", "ndp")
        self.epoch_length = engine.schedule.epoch_length
        #: the engine's routing strategy (admission-shape decisions)
        self._routing = engine.routing
        #: True under reference VLB routing: admission sprays are always
        #: ``h - 1``, which the fused TX paths hard-code.  Any other strategy
        #: routes through the reference picker/emitter, which consult
        #: ``_routing.admission_sprays`` per cell.
        self._default_routing = config.routing == "vlb"

        # neighbors[p][k-1] = phase-p neighbour at round-robin offset k
        self.neighbors: List[List[int]] = [
            [self.coords.neighbor_at_offset(node_id, p, k) for k in range(1, self.r)]
            for p in range(self.h)
        ]
        #: same table flattened so neighbors_flat[link_index] is the peer
        self.neighbors_flat = self.coords.neighbor_table(node_id)
        self._rm1 = self.r - 1
        self._hm1 = self.h - 1
        self._is_priority = self.mode == "priority"
        #: True when flow admission is unconditional (every mode except
        #: priority ranking, ISD pacing and the RD/NDP window)
        self._simple_pick = not (
            self.mode in ("priority", "isd") or self.mode in ("rd", "ndp")
        )
        self._fifo_hbh = config.use_fifo_for_hbh
        self._tokens_per_header = config.tokens_per_header
        self._my_digits = self.coords.coords(node_id)
        self._weights = self.coords._weights
        self._active = engine._active_ids
        #: the engine's collector and transmission freelist (both live for
        #: the whole run), cached to skip an attribute chain per hot call
        self._metrics = engine.metrics
        self._tx_pool = engine._tx_pool
        self._randrange = engine.rng.randrange
        # randrange(1, r) == 1 + _randbelow(r - 1), and CPython's
        # _randbelow draws bit_length(r - 1) bits until the value fits;
        # the hot paths replay that loop inline on the raw generator so
        # the draw sequence (and thus behaviour) is bit-identical
        self._getrandbits = engine.rng.getrandbits
        self._spray_bits = (self.r - 1).bit_length()
        #: interned regular tokens by (dest, sprays) — tokens are value
        #: objects and never mutated, so hops can share one instance
        self._token_cache: Dict[Tuple[int, int], Token] = {}
        links = self.h * (self.r - 1)
        cap = config.ndp_queue_limit if self.is_ndp else None
        # only priority ranking ever pushes a non-zero rank; every other
        # mode gets the cheaper bare-cell fifo representation
        self.link_queues: List[PieoQueue] = [
            PieoQueue(fifo=not self._is_priority) for _ in range(links)
        ]
        #: link_queues grouped by phase (the spray scan iterates one phase)
        self._phase_queues: Tuple[List[PieoQueue], ...] = tuple(
            self.link_queues[p * self._rm1:(p + 1) * self._rm1]
            for p in range(self.h)
        )
        #: the queues' backing lists, same grouping — their identity is
        #: stable (PieoQueue never reassigns ``_items``), so ``map(len, …)``
        #: over one phase reads every queue length without Python frames
        self._phase_items: Tuple[List[list], ...] = tuple(
            [q._items for q in group] for group in self._phase_queues
        )
        #: the same backing lists, flat by link index (the TX hot path)
        self._link_items: Tuple[list, ...] = tuple(
            q._items for q in self.link_queues
        )
        # NDP's cap is enforced by trimming at enqueue, not by push overflow,
        # so the queues themselves stay uncapped.
        del cap
        self.token_return: Dict[int, Deque[Token]] = {}
        if self.uses_hbh:
            self.ledger = TokenLedger(
                budget=config.token_budget,
                first_hop_budget=config.first_hop_token_budget,
            )
            self.bucket_tracker = ActiveBucketTracker()
        else:
            self.ledger = None
            self.bucket_tracker = None
        self._cache_hbh_state()
        #: True when the engine may run its inlined copy of the common-case
        #: TX pipeline for this node (see Engine._run_tx): unconditional
        #: flow admission, fifo bare-cell queues, and — under hop-by-hop —
        #: the uniform budget-1 ledger.  Every other configuration (and any
        #: node with failure state) goes through the reference transmit().
        self._inline_tx = (
            self._simple_pick
            and not self._is_priority
            and self._default_routing
            and (not self.uses_hbh or (self._budget1 and not self._fifo_hbh))
        )
        self.local_flows: List[Flow] = []
        self.rtx_queue: Deque[Tuple[int, int, int]] = deque()  # (flow_id, dst, seq)
        self.ctrl_out: List[Deque[ControlMessage]] = [deque() for _ in range(links)]
        self.total_enqueued = 0
        self.pending_tokens = 0
        self.pending_ctrl = 0
        self.failed = False
        self.failed_neighbors: Set[int] = set()
        #: destinations this node currently has *no valid direct route* to
        #: (it has announced them unreachable to its neighbours)
        self.known_failed: Set[int] = set()
        #: (via, dest) pairs invalidated by a neighbour's route token:
        #: ``via`` announced it cannot reach ``dest`` on the direct-path tree
        self.link_invalid: Set[Tuple[int, int]] = set()
        #: neighbour id -> LINK_SILENT/LINK_DEAF bitmask explaining why the
        #: neighbour sits in ``failed_neighbors``
        self._fail_cause: Dict[int, int] = {}
        #: neighbours owed one explicit dummy (a probe reply) even when idle
        self._force_dummy: Set[int] = set()
        # per-flow delivered counts for PULL pacing at the receiver
        self._recv_counts: Dict[int, int] = {}

    def _cache_hbh_state(self) -> None:
        """Refresh the hot-path aliases of the ledger/tracker internals.

        Must be re-run whenever ``self.ledger`` / ``self.bucket_tracker``
        are replaced (construction and crash recovery).
        """
        if self.uses_hbh:
            self._spent_map = self.ledger._spent
            self._is_first_map = self.ledger._is_first
            self._refcount_map = self.bucket_tracker._refcount
            self._fh_budget = self.ledger.first_hop_budget
            # with a uniform budget of one token, "has credit" degenerates
            # to "no outstanding token for this (neighbour, bucket) pair"
            self._budget1 = (
                self.ledger.budget == 1 and self.ledger.first_hop_budget == 1
            )
        else:
            self._spent_map = None
            self._is_first_map = None
            self._refcount_map = None
            self._fh_budget = 0
            self._budget1 = False

    # ------------------------------------------------------------------ #
    # link helpers

    def link_index(self, phase: int, offset: int) -> int:
        """Flat index of the link used in ``phase`` at round-robin ``offset``."""
        return phase * (self.r - 1) + (offset - 1)

    def queue_length(self, phase: int, offset: int) -> int:
        """Current occupancy of one send queue."""
        return len(self.link_queues[self.link_index(phase, offset)])

    @property
    def idle(self) -> bool:
        """Fast check: nothing to transmit this slot under any policy."""
        return (
            self.total_enqueued == 0
            and not self.local_flows
            and self.pending_tokens == 0
            and self.pending_ctrl == 0
            and not self.rtx_queue
        )

    def wake(self) -> None:
        """Put this node back on the engine's active-node schedule.

        Must be called on every transition that can give an idle node work
        (enqueue, new flow, queued token/control, failed-neighbour marking,
        owed probe reply, recovery) — the engine only visits active nodes.
        """
        self._active.add(self.node_id)

    # ------------------------------------------------------------------ #
    # flow management

    def add_flow(self, flow: Flow) -> None:
        """Register a locally originated flow."""
        self.local_flows.append(flow)
        self._active.add(self.node_id)

    def _prune_local_flows(self) -> None:
        if any(f.done_sending for f in self.local_flows):
            self.local_flows = [f for f in self.local_flows if not f.done_sending]

    # ------------------------------------------------------------------ #
    # TX path

    def transmit(self, t: int, phase: int, offset: int) -> Optional[Transmission]:
        """Run the TX pipeline for timeslot ``t``; returns what goes on the wire.

        Returns ``None`` when the node has neither data, tokens nor control
        messages for the current neighbour (a real network would send an
        empty dummy cell; the simulator elides it).

        This is the simulator's hottest function; the cell selection and the
        token/bucket bookkeeping of ``_select_forwarded_cell`` /
        ``_finish_forward`` are inlined here (those methods remain the
        readable reference implementation and must stay equivalent).
        """
        link = phase * self._rm1 + offset - 1
        neighbor = self.neighbors_flat[link]
        if self.failed_neighbors and neighbor in self.failed_neighbors:
            return self._probe_failed_neighbor(neighbor, phase, offset)

        force = False
        if self._force_dummy and neighbor in self._force_dummy:
            # any transmission satisfies the probe reply
            self._force_dummy.discard(neighbor)
            force = True

        cell = None
        node_id = self.node_id
        items = self._link_items[link]
        if items:
            if not self.uses_hbh:
                # priority queues store ranked (rank, seq, cell) entries;
                # every other mode uses the bare-cell fifo representation
                cell = items.pop(0)
                if self._is_priority:
                    cell = cell[2]
                self.total_enqueued -= 1
                n = cell.sprays_remaining
                if n > 0:
                    cell.sprays_remaining = n - 1
                cell.prev_hop = node_id
                cell.hops += 1
            elif self._fifo_hbh:
                # FIFO ablation: only the head may be sent; if it lacks
                # credit the whole queue head-of-line blocks
                if self._hbh_eligible(items[0], neighbor):
                    cell = items.pop(0)
                    self.total_enqueued -= 1
                    self._finish_forward(cell, neighbor)
            else:
                # first eligible cell wins: final hops are free, other hops
                # need next-hop bucket credit (cf. _hbh_eligible); the
                # _finish_forward charge is fused into the scan — the hit's
                # eligibility check just guaranteed the credit exists
                spent = self._spent_map
                if self._budget1:
                    # uniform budget T = T_F = 1: one credit remains exactly
                    # when the (neighbour, bucket) pair has nothing spent
                    for i, c in enumerate(items):
                        dst = c.dst
                        if neighbor == dst:
                            del items[i]
                            cell = c
                            break
                        n = c.sprays_remaining
                        key = (neighbor, dst, n - 1 if n > 0 else 0)
                        if key not in spent:
                            del items[i]
                            cell = c
                            spent[key] = 1
                            break
                else:
                    ledger = self.ledger
                    is_first = ledger._is_first
                    budget = ledger.budget
                    fh_budget = ledger.first_hop_budget
                    for i, c in enumerate(items):
                        dst = c.dst
                        if neighbor == dst:
                            del items[i]
                            cell = c
                            break
                        n = c.sprays_remaining
                        key = (neighbor, dst, n - 1 if n > 0 else 0)
                        used = spent.get(key, 0)
                        if (fh_budget if is_first.get(key) else budget) > used:
                            del items[i]
                            cell = c
                            spent[key] = used + 1
                            break
                if cell is not None:
                    # rest of _finish_forward: token upstream, bucket release
                    self.total_enqueued -= 1
                    n = cell.sprays_remaining
                    dst = cell.dst
                    prev = cell.prev_hop
                    bucket = (dst, n)
                    if prev >= 0:
                        queue = self.token_return.get(prev)
                        if queue is None:
                            queue = deque()
                            self.token_return[prev] = queue
                        tcache = self._token_cache
                        tok = tcache.get(bucket)
                        if tok is None:
                            tok = Token(dst, n, TOKEN_REGULAR)
                            tcache[bucket] = tok
                        queue.append(tok)
                        self.pending_tokens += 1
                    refcount = self._refcount_map
                    count = refcount.get(bucket, 0)
                    if count > 1:
                        refcount[bucket] = count - 1
                    elif count:
                        del refcount[bucket]
                    if n > 0:
                        cell.sprays_remaining = n - 1
                    cell.prev_hop = node_id
                    cell.hops += 1
        if cell is None and (self.local_flows or self.rtx_queue):
            if self.rtx_queue or not self._simple_pick \
                    or not self._default_routing:
                cell = self._admit_local_cell(t, phase, neighbor)
            else:
                # _pick_flow's unconditional-admission path inlined: the
                # first unfinished flow wins, subject only to the hop-by-hop
                # first-hop credit check
                flow = None
                for f in self.local_flows:
                    if f.sent < f.size_cells:
                        flow = f
                        break
                if flow is not None and self.uses_hbh:
                    spent = self._spent_map
                    key = (neighbor, flow.dst, self._hm1)
                    if (key in spent) if self._budget1 \
                            else self._fh_budget <= spent.get(key, 0):
                        # blocked: re-run the full picker (its fallback scans
                        # for any other flow that still has credit)
                        flow = self._pick_flow(t, neighbor, phase)
                if flow is not None:
                    cell = self._emit_flow_cell(flow, t, phase, neighbor)

        tokens: Tuple[Token, ...] = ()
        if self.pending_tokens:
            queue = self.token_return.get(neighbor)
            if queue:
                limit = self._tokens_per_header
                if len(queue) <= limit:
                    # common case: the whole backlog fits in one header
                    tokens = tuple(queue)
                    queue.clear()
                    self.pending_tokens -= len(tokens)
                else:
                    out = []
                    while len(out) < limit:
                        out.append(queue.popleft())
                    self.pending_tokens -= limit
                    tokens = tuple(out)
        ctrl: Tuple[ControlMessage, ...] = ()
        if self.pending_ctrl:
            queue = self.ctrl_out[link]
            if queue:
                out = []
                while queue and len(out) < 2:
                    out.append(queue.popleft())
                self.pending_ctrl -= len(out)
                ctrl = tuple(out)
        if cell is None and not tokens and not ctrl and not force:
            return None
        if cell is None:
            cell = Cell.make_dummy(self.node_id, neighbor)
        pool = self._tx_pool
        if pool:
            tx = pool.pop()
            tx.sender = node_id
            tx.receiver = neighbor
            tx.cell = cell
            tx.tokens = tokens
            tx.ctrl = ctrl
            return tx
        return Transmission(node_id, neighbor, cell, tokens, ctrl)

    def _probe_failed_neighbor(self, neighbor: int, phase: int,
                               offset: int) -> Transmission:
        """Probe a neighbour this node believes is down (Section 3.4).

        A real Shale node transmits a (dummy) cell on every link in every
        connected slot; that constant chatter is what lets the other side of
        a recovered link notice it is alive again.  The simulator elides
        dummies on healthy links, so links under suspicion must send them
        explicitly — once per epoch, since a pair meets once per epoch.
        While we cannot *hear* the neighbour, the probe also carries a
        deafness complaint token so a one-way link failure shuts the link
        down on both sides (symmetric detection).
        """
        tokens: List[Token] = []
        if self._fail_cause.get(neighbor, 0) & LINK_SILENT:
            tokens.append(Token(self.node_id, 1, TOKEN_INVALIDATE))
        queue = self.token_return.get(neighbor)
        if queue:
            limit = self.config.tokens_per_header
            while queue and len(tokens) < limit:
                tokens.append(queue.popleft())
                self.pending_tokens -= 1
        ctrl = (ControlMessage(CTRL_PROBE, -1, self.node_id, neighbor),)
        ctrl += self._pop_ctrl(self.link_index(phase, offset))
        cell = Cell.make_dummy(self.node_id, neighbor)
        return Transmission(self.node_id, neighbor, cell, tuple(tokens), ctrl)

    def _select_forwarded_cell(self, link: int, neighbor: int) -> Optional[Cell]:
        """Dequeue the first eligible forwarded cell for this link, if any."""
        queue = self.link_queues[link]
        if not queue:
            return None
        if self.uses_hbh and not self.config.use_fifo_for_hbh:
            cell = queue.extract_first_eligible(
                lambda c: self._hbh_eligible(c, neighbor)
            )
            if cell is None:
                return None
        elif self.uses_hbh:
            # FIFO ablation: only the head may be sent; if it lacks credit the
            # whole queue head-of-line blocks (paper Section 3.3.2, change 2).
            head = queue.peek_head()
            if head is None or not self._hbh_eligible(head, neighbor):
                return None
            cell = queue.extract_head()
        else:
            cell = queue.extract_head()
            if cell is None:
                return None
        self.total_enqueued -= 1
        self._finish_forward(cell, neighbor)
        return cell

    def _hbh_eligible(self, cell: Cell, neighbor: int) -> bool:
        """Hop-by-hop eligibility: final hops are free, others need credit."""
        if neighbor == cell.dst:
            return True
        n = cell.sprays_remaining
        next_bucket = (cell.dst, n - 1) if n > 0 else (cell.dst, 0)
        return self.ledger.can_send(neighbor, next_bucket)

    def _finish_forward(self, cell: Cell, neighbor: int) -> None:
        """Charge tokens, return a token upstream, update the cell header."""
        n = cell.sprays_remaining
        if self.uses_hbh:
            if neighbor != cell.dst:
                next_bucket = (cell.dst, n - 1) if n > 0 else (cell.dst, 0)
                self.ledger.charge(neighbor, next_bucket)
            # Token back to the hop we received this cell from, naming the
            # bucket the cell occupied here (paper Fig. 5).
            prev = cell.prev_hop
            if prev >= 0:
                self._queue_token(prev, Token(cell.dst, n, TOKEN_REGULAR))
            self.bucket_tracker.release((cell.dst, n))
        if n > 0:
            cell.sprays_remaining = n - 1
        cell.prev_hop = self.node_id
        cell.hops += 1

    def _admit_local_cell(self, t: int, phase: int, neighbor: int) -> Optional[Cell]:
        """Generate a cell from a local flow (or the NDP retransmit queue)."""
        # Retransmissions first: NDP receivers have explicitly requested them.
        if self.rtx_queue:
            cell = self._admit_retransmission(t, phase, neighbor)
            if cell is not None:
                return cell
        if not self.local_flows:
            return None
        flow = self._pick_flow(t, neighbor, phase)
        if flow is None:
            return None
        return self._emit_flow_cell(flow, t, phase, neighbor)

    def _admit_retransmission(self, t: int, phase: int, neighbor: int) -> Optional[Cell]:
        flow_id, dst, seq = self.rtx_queue[0]
        if neighbor == dst and self.h == 1:
            # fine: spray hop straight to the destination still delivers
            pass
        self.rtx_queue.popleft()
        flow = self.engine.flows.get(flow_id)
        size = flow.size_cells if flow is not None else 1
        sprays = self._hm1 if self._default_routing else \
            self._routing.admission_sprays(self.node_id, dst, phase, neighbor)
        cell = Cell(
            self.node_id, dst, flow_id=flow_id, seq=seq,
            sprays_remaining=sprays, created_at=t, flow_size=size,
        )
        cell.prev_hop = self.node_id
        cell.hops = 1
        cell.spray_phase = (phase + 1) % self.h
        self.engine.metrics.on_retransmission()
        self.engine.metrics.on_cell_injected()
        return cell

    def _pick_flow(self, t: int, neighbor: int, phase: int = 0) -> Optional[Flow]:
        """Choose which local flow (if any) may emit a cell this slot."""
        candidates = self.local_flows
        mode = self.mode
        chosen: Optional[Flow] = None
        if self._is_priority:
            best_rank = None
            for flow in candidates:
                if flow.done_sending:
                    continue
                rank = flow.arrival + flow.size_cells * self.epoch_length
                if best_rank is None or rank < best_rank:
                    best_rank, chosen = rank, flow
        elif mode == "isd":
            engine = self.engine
            for flow in candidates:
                if flow.done_sending:
                    continue
                if engine.isd_credit(flow, t):
                    chosen = flow
                    break
        elif self.is_rd_family:
            window = self.config.initial_window
            for flow in candidates:
                if flow.done_sending:
                    continue
                if flow.sent < window + flow.credit:
                    chosen = flow
                    break
        else:
            # every remaining mode admits unconditionally
            for flow in candidates:
                if not flow.done_sending:
                    chosen = flow
                    break
        if chosen is not None and self.uses_hbh:
            # can_send(..., first_hop=True) inlined: limit is always the
            # first-hop budget regardless of the pair's _is_first marking.
            # The ledger key's bucket must name the sprays the cell will
            # actually be admitted with (the routing strategy's decision),
            # or the charge in _emit_flow_cell would hit a different bucket
            # and token conservation would silently break.
            default_routing = self._default_routing
            spent = self._spent_map
            sprays = self._hm1 if default_routing else \
                self._routing.admission_sprays(
                    self.node_id, chosen.dst, phase, neighbor)
            key = (neighbor, chosen.dst, sprays)
            if (key in spent) if self._budget1 \
                    else self._fh_budget <= spent.get(key, 0):
                # look for any other transport-eligible flow with credit
                chosen = None
                for flow in candidates:
                    if flow.done_sending:
                        continue
                    if not self._transport_eligible(flow, t, neighbor):
                        continue
                    sprays = self._hm1 if default_routing else \
                        self._routing.admission_sprays(
                            self.node_id, flow.dst, phase, neighbor)
                    if self.ledger.can_send(
                        neighbor, (flow.dst, sprays), first_hop=True
                    ):
                        chosen = flow
                        break
        if chosen is not None and chosen.done_sending:
            return None
        return chosen

    def _transport_eligible(self, flow: Flow, t: int, neighbor: int) -> bool:
        """End-to-end admission policy (ISD rate limit / RD-NDP pulls)."""
        mode = self.mode
        if mode == "isd":
            return self.engine.isd_credit(flow, t)
        if self.is_rd_family:
            granted = self.config.initial_window + flow.credit
            return flow.sent < granted
        return True

    def _emit_flow_cell(self, flow: Flow, t: int, phase: int, neighbor: int) -> Cell:
        sprays = self._hm1 if self._default_routing else \
            self._routing.admission_sprays(
                self.node_id, flow.dst, phase, neighbor)
        # positional args: Cell(src, dst, flow_id, seq, sprays, created, size)
        cell = Cell(
            self.node_id, flow.dst, flow.flow_id, flow.sent,
            sprays, t, flow.size_cells,
        )
        cell.prev_hop = self.node_id
        cell.hops = 1
        cell.spray_phase = (phase + 1) % self.h
        if self.uses_hbh:
            # charge(..., first_hop=True) inlined; _pick_flow just verified
            # the credit exists, so the over-budget branch cannot trigger
            key = (neighbor, flow.dst, sprays)
            spent = self._spent_map
            if self._budget1:
                # with T == T_F the first-hop marking cannot change any
                # budget decision, so the ledger skips maintaining it
                spent[key] = 1
            else:
                self._is_first_map[key] = True
                spent[key] = spent.get(key, 0) + 1
        if self.mode == "isd":
            flow.credit -= 1.0
        flow.sent += 1
        self._metrics.cells_injected += 1
        if flow.sent >= flow.size_cells:
            self._prune_local_flows()
        return cell

    # ------------------------------------------------------------------ #
    # token plumbing

    def _queue_token(self, neighbor: int, token: Token) -> None:
        queue = self.token_return.get(neighbor)
        if queue is None:
            queue = deque()
            self.token_return[neighbor] = queue
        queue.append(token)
        self.pending_tokens += 1
        self._active.add(self.node_id)

    def _pop_tokens(self, neighbor: int) -> Tuple[Token, ...]:
        queue = self.token_return.get(neighbor)
        if not queue:
            return ()
        limit = self.config.tokens_per_header
        out = []
        while queue and len(out) < limit:
            out.append(queue.popleft())
        self.pending_tokens -= len(out)
        return tuple(out)

    def _pop_ctrl(self, link: int) -> Tuple[ControlMessage, ...]:
        queue = self.ctrl_out[link]
        if not queue:
            return ()
        out = []
        while queue and len(out) < 2:
            out.append(queue.popleft())
        self.pending_ctrl -= len(out)
        return tuple(out)

    # ------------------------------------------------------------------ #
    # RX path

    def receive(self, tx: Transmission, t: int, phase: int) -> None:
        """Run the RX pipeline for a transmission arriving this slot.

        Hot path: the regular-token credit/release of
        :meth:`~repro.core.buckets.TokenLedger.credit` and
        :meth:`~repro.core.buckets.ActiveBucketTracker.release` is inlined.
        """
        sender = tx.sender
        engine = self.engine
        manager = engine.failure_manager
        complaint = False
        if tx.tokens:
            uses_hbh = self.uses_hbh
            if uses_hbh:
                spent = self._spent_map
                is_first = self._is_first_map
                refcount = self._refcount_map
                budget1 = self._budget1
            for token in tx.tokens:
                if token.kind == TOKEN_REGULAR:
                    if uses_hbh:
                        dest = token.dest
                        sprays = token.sprays
                        key = (sender, dest, sprays)
                        if budget1:
                            # spent counts are always exactly one, and the
                            # first-hop marking is never written in this mode
                            spent.pop(key, None)
                        else:
                            used = spent.get(key, 0)
                            if used > 0:
                                if used == 1:
                                    del spent[key]
                                    is_first.pop(key, None)
                                else:
                                    spent[key] = used - 1
                        bucket = (dest, sprays)
                        count = refcount.get(bucket, 0)
                        if count > 1:
                            refcount[bucket] = count - 1
                        elif count:
                            del refcount[bucket]
                else:
                    # failure-protocol tokens flow in every CC mode
                    if token.sprays >= 1 and token.kind == TOKEN_INVALIDATE \
                            and token.dest == sender:
                        complaint = True
                    engine.failures_on_token(self, sender, token, phase)
        if manager is not None:
            # every arrival is a liveness observation: hearing the sender
            # clears a SILENT marking, and hearing it *without* a deafness
            # complaint clears a DEAF marking
            manager.on_contact(engine, self, sender, t, complaint)
        if tx.ctrl:
            for msg in tx.ctrl:
                self._handle_ctrl(msg, t, phase)
        cell = tx.cell
        if cell is None or cell.dummy:
            return
        if cell.dst == self.node_id:
            self._deliver(cell, t)
            return
        self.enqueue_forward(cell, t, phase)

    def _deliver(self, cell: Cell, t: int) -> None:
        """Final-hop delivery: reorder queue + flow accounting + pulls."""
        engine = self.engine
        # on_cell_delivered, inlined (this runs once per delivered cell)
        metrics = self._metrics
        metrics.cells_delivered += 1
        metrics.payload_cells_delivered += 1
        metrics._window_delivered += 1
        per_node = metrics.delivered_per_node
        nid = self.node_id
        per_node[nid] = per_node.get(nid, 0) + 1
        latencies = metrics.cell_latencies
        if len(latencies) < metrics._cell_latency_cap:
            latencies.append(t - cell.created_at)
        if engine.digest is not None:
            engine.digest.on_delivery(cell, t)
        if engine.tracer is not None:
            engine.tracer.on_deliver(cell, t)
        if engine.delivery_hook is not None:
            engine.delivery_hook(cell, t)
        # record_delivery inlined: count the cell, finalise only on the last
        flows = engine.flows
        flow = flows._active.get(cell.flow_id)
        record = None
        if flow is not None:
            flow.delivered += 1
            if flow.delivered >= flow.size_cells:
                record = flows.finalize(flow, t)
                if engine.events is not None:
                    engine.events.emit(t, "flow_end", {
                        "flow": record.flow_id, "src": record.src,
                        "dst": record.dst, "cells": record.size_cells,
                        "fct": record.fct,
                    })
        if self.is_rd_family and record is None:
            # flow still running: maybe request more cells from the sender
            count = self._recv_counts.get(cell.flow_id, 0) + 1
            self._recv_counts[cell.flow_id] = count
            if count % self.config.pull_batch == 0:
                self._send_ctrl(
                    ControlMessage(CTRL_PULL, cell.flow_id, self.node_id, cell.src),
                    t,
                )
        elif record is not None:
            self._recv_counts.pop(cell.flow_id, None)

    def enqueue_forward(self, cell: Cell, t: int, arrival_phase: int) -> None:
        """Assign the cell's next hop and enqueue it (the RX enqueue step).

        The next hop's phase follows the *previous hop's wire phase* (the
        ``spray_phase`` hint carried on the cell), not the arrival slot's
        phase: with a long propagation delay the arrival slot may already
        belong to the next phase, and using it would skip a coordinate in
        the spraying semi-path, breaking the EBS path structure.
        """
        hint = cell.spray_phase
        if hint < 0:
            hint = (arrival_phase + 1) % self.h
        n = cell.sprays_remaining
        if n > 0:
            next_phase = hint
            # common case of _choose_spray_offset: plain VLB spraying with
            # nothing to avoid is a single RNG draw
            if not self.uses_spray_short and not self.failed_neighbors \
                    and not self.known_failed:
                # randrange(1, r) unrolled onto the raw generator
                getrandbits = self._getrandbits
                bits = self._spray_bits
                rm1 = self._rm1
                v = getrandbits(bits)
                while v >= rm1:
                    v = getrandbits(bits)
                offset = v + 1
            elif self.uses_spray_short and not self.failed_neighbors \
                    and not self.known_failed:
                # shortest-queue spraying with nothing to avoid, inlined
                # from _choose_spray_offset's fast path; min/count/index do
                # the scanning in C
                lengths = list(map(len, self._phase_items[next_phase]))
                shortest = min(lengths)
                count = lengths.count(shortest)
                if count == 1:
                    offset = lengths.index(shortest) + 1
                else:
                    # randrange(count) unrolled onto the raw generator,
                    # then walk to the drawn tie (same draw, same pick)
                    getrandbits = self._getrandbits
                    bits = count.bit_length()
                    v = getrandbits(bits)
                    while v >= count:
                        v = getrandbits(bits)
                    idx = lengths.index(shortest)
                    while v:
                        idx = lengths.index(shortest, idx + 1)
                        v -= 1
                    offset = idx + 1
            else:
                offset = self._choose_spray_offset(cell, next_phase)
                if offset is None:
                    self.release_upstream(cell)
                    engine = self.engine
                    engine.metrics.on_drop()
                    if engine.digest is not None:
                        engine.digest.on_drop(cell, t)
                    return
        elif not self.failed_neighbors and not self.known_failed \
                and not self.link_invalid:
            # direct hop with no failure state: _choose_direct_hop's loop
            # inlined (no reroute/drop possible when the avoid sets are empty)
            dst = cell.dst
            h = self.h
            r = self.r
            weights = self._weights
            my_digits = self._my_digits
            p = hint
            next_phase = -1
            for _ in range(h):
                mine = my_digits[p]
                want = (dst // weights[p]) % r
                if mine != want:
                    next_phase = p
                    offset = (want - mine) % r
                    break
                p += 1
                if p >= h:
                    p -= h
            if next_phase < 0:
                raise AssertionError(
                    f"direct-hop cell for {dst} already at destination "
                    f"{self.node_id}"
                )
        else:
            hop = self._choose_direct_hop(cell, hint)
            if hop is None:
                return  # dropped inside
            next_phase, offset = hop
            n = cell.sprays_remaining  # may have been reset by a reroute
        cell.spray_phase = (next_phase + 1) % self.h
        queue = self.link_queues[next_phase * self._rm1 + offset - 1]
        items = queue._items
        if self.is_ndp and len(items) >= self.config.ndp_queue_limit:
            self._trim(cell, t)
            return
        cell.enqueued_at = t
        if self._is_priority:
            # ranked push (the only mode with non-zero ranks)
            queue.push(
                cell, cell.created_at + cell.flow_size * self.epoch_length
            )
            length = len(items)
        else:
            # PieoQueue.push inlined for the bare-cell fifo representation
            # (node send queues are uncapped): a plain append
            items.append(cell)
            length = len(items)
            if length > queue.peak_occupancy:
                queue.peak_occupancy = length
        self.total_enqueued += 1
        self._active.add(self.node_id)
        if self.uses_hbh:
            tracker = self.bucket_tracker
            refcount = self._refcount_map
            bucket = (cell.dst, n)
            count = refcount.get(bucket, 0) + 1
            refcount[bucket] = count
            if count == 1 and len(refcount) > tracker.peak:
                tracker.peak = len(refcount)
        metrics = self._metrics
        if length > metrics.max_queue_length:
            metrics.max_queue_length = length

    def _choose_spray_offset(self, cell: Cell, phase: int) -> Optional[int]:
        """Pick the spraying next hop: random, or shortest-queue (spray-short)."""
        neighbors = self.neighbors[phase]
        avoid = self.failed_neighbors or self.known_failed
        base = phase * self._rm1
        if self.uses_spray_short:
            queues = self.link_queues
            best_offsets: List[int] = []
            best_len = None
            if not avoid:
                # fast path: every neighbour is a candidate
                for i in range(self._rm1):
                    length = len(queues[base + i]._items)
                    if best_len is None or length < best_len:
                        best_len = length
                        best_offsets = [i + 1]
                    elif length == best_len:
                        best_offsets.append(i + 1)
            else:
                for i, nb in enumerate(neighbors):
                    if nb in self.failed_neighbors or nb in self.known_failed:
                        continue
                    length = len(queues[base + i]._items)
                    if best_len is None or length < best_len:
                        best_len = length
                        best_offsets = [i + 1]
                    elif length == best_len:
                        best_offsets.append(i + 1)
            if not best_offsets:
                return None
            if len(best_offsets) == 1:
                return best_offsets[0]
            return best_offsets[self._randrange(len(best_offsets))]
        if not avoid:
            return self._randrange(1, self.r)
        options = [
            i + 1
            for i, nb in enumerate(neighbors)
            if nb not in self.failed_neighbors and nb not in self.known_failed
        ]
        if not options:
            return None
        return options[self._randrange(len(options))]

    def _choose_direct_hop(self, cell: Cell, start_phase: int) -> Optional[Tuple[int, int]]:
        """Pick the next direct hop phase/offset, handling failed routes.

        Scans phases cyclically starting at ``start_phase`` (the phase after
        the previous hop's wire phase).  Returns ``None`` when the cell was
        dropped instead.
        """
        dst = cell.dst
        h = self.h
        r = self.r
        weights = self._weights
        my_digits = self._my_digits
        for i in range(h):
            p = start_phase + i
            if p >= h:
                p -= h
            mine = my_digits[p]
            weight = weights[p]
            want = (dst // weight) % r
            if mine == want:
                continue
            target = self.node_id + (want - mine) * weight
            if (
                (self.failed_neighbors and target in self.failed_neighbors)
                or (self.known_failed and target in self.known_failed)
                or (self.link_invalid and (target, dst) in self.link_invalid)
            ):
                return self._reroute_around_failure(cell, target, p)
            return p, (want - mine) % r
        # all coordinates already match: this IS the destination — but then
        # receive() would have delivered it.  Treat as corrupt state.
        raise AssertionError(
            f"direct-hop cell for {dst} already at destination {self.node_id}"
        )

    def release_upstream(self, cell: Cell) -> None:
        """Return the upstream hop's token when a cell leaves its bucket
        abnormally (reroute or drop).

        Without this, the upstream's per-(neighbour, bucket) credit would
        leak on every failure reroute and, with T=1, permanently block the
        bucket.  After the release the cell no longer owes a token.
        """
        prev = cell.prev_hop
        if (
            self.uses_hbh
            and prev >= 0
            and prev != self.node_id
            and prev not in self.failed_neighbors
            and prev not in self.known_failed
        ):
            self._queue_token(
                prev, Token(cell.dst, cell.sprays_remaining, TOKEN_REGULAR)
            )
        cell.prev_hop = -1

    def _reroute_around_failure(
        self, cell: Cell, failed_target: int, phase: int
    ) -> Optional[Tuple[int, int]]:
        """Appendix A: direct hops through failures reset to fresh sprays."""
        self.release_upstream(cell)
        if self.engine.tracer is not None:
            self.engine.tracer.on_reroute(cell)
        if failed_target == cell.dst:
            self.engine.metrics.on_drop()
            if self.engine.digest is not None:
                self.engine.digest.on_drop(cell, self.engine.t)
            return None
        # Reset to the first spraying hop: the cell will take h spray hops
        # from here (its bucket index at this node becomes h transiently).
        cell.sprays_remaining = self.h
        next_phase = (phase + 1) % self.h if self.h > 1 else phase
        offset = self._choose_spray_offset(cell, next_phase)
        if offset is None:
            self.engine.metrics.on_drop()
            if self.engine.digest is not None:
                self.engine.digest.on_drop(cell, self.engine.t)
            return None
        return next_phase, offset

    # ------------------------------------------------------------------ #
    # control-message handling (RD / NDP)

    def _send_ctrl(self, msg: ControlMessage, t: int) -> None:
        """Originate a control message: enqueue it for a spraying first hop."""
        msg.sprays_remaining = self.h - 1
        phase = self.rng.randrange(self.h)
        offset = self.rng.randrange(1, self.r)
        link = self.link_index(phase, offset)
        self.ctrl_out[link].append(msg)
        self.pending_ctrl += 1
        self._active.add(self.node_id)
        self.engine.metrics.control_messages += 1

    def _handle_ctrl(self, msg: ControlMessage, t: int, arrival_phase: int) -> None:
        """Route or consume one control message on arrival."""
        if msg.dst == self.node_id:
            self._consume_ctrl(msg, t)
            return
        n = msg.sprays_remaining
        if n > 0:
            msg.sprays_remaining = n - 1
            phase = (arrival_phase + 1) % self.h
            offset = self.rng.randrange(1, self.r)
        else:
            coords = self.coords
            phase = offset = None
            for i in range(1, self.h + 1):
                p = (arrival_phase + i) % self.h
                mine = coords.coordinate(self.node_id, p)
                want = coords.coordinate(msg.dst, p)
                if mine != want:
                    phase, offset = p, (want - mine) % self.r
                    break
            if phase is None:
                # already at destination coordinates — consume defensively
                self._consume_ctrl(msg, t)
                return
        link = self.link_index(phase, offset)
        self.ctrl_out[link].append(msg)
        self.pending_ctrl += 1
        self._active.add(self.node_id)

    def _consume_ctrl(self, msg: ControlMessage, t: int) -> None:
        if msg.kind == CTRL_PROBE:
            # A liveness probe: reply with an explicit dummy at the next
            # meeting so the prober hears us even if we are idle.  Replies
            # carry no probe marker, which is what stops two healthy idle
            # nodes from ping-ponging dummies forever.
            self._force_dummy.add(msg.src)
            self._active.add(self.node_id)
            return
        if msg.kind == CTRL_PULL:
            flow = self.engine.flows.get(msg.flow_id)
            if flow is not None and flow.src == self.node_id:
                flow.credit += self.config.pull_batch
        elif msg.kind == CTRL_TRIM:
            # receiver learns of a trimmed cell; ask the sender to resend
            self._send_ctrl(
                ControlMessage(CTRL_RTX, msg.flow_id, self.node_id, msg.src, msg.seq),
                t,
            )
        elif msg.kind == CTRL_RTX:
            self.rtx_queue.append((msg.flow_id, msg.src, msg.seq))
            self._active.add(self.node_id)

    def _trim(self, cell: Cell, t: int) -> None:
        """NDP trimming: drop the payload, forward the header as control."""
        self.engine.metrics.on_trim()
        notice = ControlMessage(CTRL_TRIM, cell.flow_id, cell.src, cell.dst, cell.seq)
        self._send_ctrl(notice, t)

    # ------------------------------------------------------------------ #
    # recovery

    def reset_for_recovery(self, t: int) -> None:
        """Wipe all pre-failure state when this node rejoins the network.

        A crashed-and-rebooted host loses its queues and its learned failure
        knowledge; carrying either across the crash would let it re-transmit
        dead cells or route on stale invalidations.  Queued payload cells
        are accounted as drops (their upstream token credit was already
        healed by ``TokenLedger.reset_neighbor`` at the neighbours when they
        detected the crash).  Locally originated flows keep their source
        data — the host still has it — and simply resume sending.
        """
        metrics = self.engine.metrics
        digest = self.engine.digest
        dropped = 0
        for queue in self.link_queues:
            stale = queue.remove_if(lambda c: True)
            dropped += len(stale)
            for cell in stale:
                cell.prev_hop = -1
                if digest is not None:
                    digest.on_drop(cell, t)
        if dropped:
            metrics.on_drop(dropped)
        self.total_enqueued = 0
        self.token_return.clear()
        self.pending_tokens = 0
        for queue in self.ctrl_out:
            queue.clear()
        self.pending_ctrl = 0
        self.rtx_queue.clear()
        self._recv_counts.clear()
        self.failed_neighbors.clear()
        self.known_failed.clear()
        self.link_invalid.clear()
        self._fail_cause.clear()
        self._force_dummy.clear()
        if self.uses_hbh:
            self.ledger = TokenLedger(
                budget=self.config.token_budget,
                first_hop_budget=self.config.first_hop_token_budget,
            )
            self.bucket_tracker = ActiveBucketTracker()
            self._cache_hbh_state()
        # the node may resume sending its surviving local flows immediately
        self._active.add(self.node_id)

    # ------------------------------------------------------------------ #
    # shard-backend receive hook

    def absorb_shard_state(self, per_link_cells, per_link_peaks) -> None:
        """Install gathered queue contents from a shard worker, in place.

        ``per_link_cells`` holds one FIFO-ordered cell list per link index
        and ``per_link_peaks`` the matching peak occupancies.  The queues'
        backing lists are aliased by this node's TX caches, so they are
        mutated in place, never rebound — the boundary-crossing receive
        side of the ``"shard"`` backend (see repro.sim.backends.shard).
        """
        total = 0
        for queue, cells, peak in zip(
            self.link_queues, per_link_cells, per_link_peaks
        ):
            queue._items[:] = cells
            queue.peak_occupancy = peak
            total += len(cells)
        self.total_enqueued = total

    # ------------------------------------------------------------------ #
    # checkpoint support

    def state_dict(self) -> dict:
        """This node's authoritative state as plain data.

        Hot-path caches (the slots below the marker in ``__slots__``) are
        derived and rebuilt by construction; only the authoritative state
        is captured.  ``local_flows`` stores flow ids — the Flow objects
        belong to the engine's :class:`~repro.sim.flows.FlowTable` and are
        re-resolved on restore so aliasing is preserved.
        """
        return {
            "queues": [q.state_dict(encode=Cell.state)
                       for q in self.link_queues],
            "token_return": sorted(
                (nb, [token.state() for token in dq])
                for nb, dq in self.token_return.items()
            ),
            "ledger": (None if self.ledger is None
                       else self.ledger.state_dict()),
            "tracker": (None if self.bucket_tracker is None
                        else self.bucket_tracker.state_dict()),
            "local_flows": [flow.flow_id for flow in self.local_flows],
            "rtx_queue": list(self.rtx_queue),
            "ctrl_out": [[msg.state() for msg in dq] for dq in self.ctrl_out],
            "total_enqueued": self.total_enqueued,
            "pending_tokens": self.pending_tokens,
            "pending_ctrl": self.pending_ctrl,
            "failed": self.failed,
            "failed_neighbors": sorted(self.failed_neighbors),
            "known_failed": sorted(self.known_failed),
            "link_invalid": sorted(self.link_invalid),
            "fail_cause": sorted(self._fail_cause.items()),
            "force_dummy": sorted(self._force_dummy),
            "recv_counts": sorted(self._recv_counts.items()),
        }

    def load_state(self, state: dict, flow_lookup) -> None:
        """Restore :meth:`state_dict` output onto a freshly built node.

        Containers are refilled in place wherever the hot path aliases them
        (queue backing lists, ledger/tracker dicts); ``flow_lookup`` maps a
        flow id back to the engine's live Flow object.
        """
        for queue, queue_state in zip(self.link_queues, state["queues"]):
            queue.load_state(queue_state, decode=Cell.from_state)
        self.token_return.clear()
        for nb, tokens in state["token_return"]:
            self.token_return[nb] = deque(
                Token.from_state(t) for t in tokens
            )
        if self.ledger is not None and state["ledger"] is not None:
            self.ledger.load_state(state["ledger"])
        if self.bucket_tracker is not None and state["tracker"] is not None:
            self.bucket_tracker.load_state(state["tracker"])
        self._cache_hbh_state()
        self.local_flows[:] = [
            flow for flow in (flow_lookup(fid) for fid in state["local_flows"])
            if flow is not None
        ]
        self.rtx_queue.clear()
        self.rtx_queue.extend(tuple(item) for item in state["rtx_queue"])
        for dq, messages in zip(self.ctrl_out, state["ctrl_out"]):
            dq.clear()
            dq.extend(ControlMessage.from_state(m) for m in messages)
        self.total_enqueued = state["total_enqueued"]
        self.pending_tokens = state["pending_tokens"]
        self.pending_ctrl = state["pending_ctrl"]
        self.failed = state["failed"]
        self.failed_neighbors.clear()
        self.failed_neighbors.update(state["failed_neighbors"])
        self.known_failed.clear()
        self.known_failed.update(state["known_failed"])
        self.link_invalid.clear()
        self.link_invalid.update(tuple(k) for k in state["link_invalid"])
        self._fail_cause.clear()
        self._fail_cause.update(dict(state["fail_cause"]))
        self._force_dummy.clear()
        self._force_dummy.update(state["force_dummy"])
        self._recv_counts.clear()
        self._recv_counts.update(dict(state["recv_counts"]))

    # ------------------------------------------------------------------ #
    # metrics

    def buffer_occupancy(self) -> int:
        """Total data cells enqueued at this node (all send queues)."""
        return self.total_enqueued

    def max_pieo_occupancy(self) -> int:
        """Largest peak occupancy among this node's PIEO queues."""
        return max((q.peak_occupancy for q in self.link_queues), default=0)

    def active_bucket_count(self) -> int:
        """Currently active buckets (0 when hop-by-hop is off)."""
        return self.bucket_tracker.active if self.bucket_tracker else 0
