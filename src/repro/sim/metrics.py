"""Metrics collection for simulation runs.

Collects everything the paper's evaluation reports:

* per-flow completion times (via :class:`~repro.sim.flows.FlowTable`),
* per-node total buffer occupancy samples (Fig. 10/11 top rows report the
  99.99th percentile),
* per-queue length high-water marks and samples (Figs. 15/16),
* delivered-cell throughput over time (Figs. 8/12),
* hardware resource proxies: maximum active buckets and PIEO occupancy
  (Figs. 7/13).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["MetricsCollector", "percentile"]


class _IntBuffer:
    """A growable int64 sample buffer backed by one numpy array.

    The hot sampling path appends scalars; the reporting path reads the
    filled prefix as a zero-copy view.  Doubling growth keeps appends
    amortised O(1) without per-sample list/object allocation.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, capacity: int = 1024):
        self._data = np.empty(capacity, dtype=np.int64)
        self._size = 0

    def append(self, value: int) -> None:
        data = self._data
        size = self._size
        if size == data.shape[0]:
            data = np.resize(data, size * 2)
            self._data = data
        data[size] = value
        self._size = size + 1

    def extend(self, values: np.ndarray) -> None:
        """Append a whole int64 array of samples at once.

        The bulk twin of :meth:`append` for vectorized callers (see
        :mod:`repro.sim.backends.vector`): one copy per batch instead of
        one Python call per sample.
        """
        count = len(values)
        if count == 0:
            return
        data = self._data
        size = self._size
        need = size + count
        if need > data.shape[0]:
            capacity = data.shape[0]
            while capacity < need:
                capacity *= 2
            data = np.resize(data, capacity)
            self._data = data
        data[size:need] = values
        self._size = need

    def view(self) -> np.ndarray:
        """The filled prefix (zero-copy; invalidated by the next growth)."""
        return self._data[: self._size]

    def __len__(self) -> int:
        return self._size

    def state(self) -> list:
        """The filled prefix as a plain list (checkpoint encoding)."""
        return self._data[: self._size].tolist()

    def load(self, values: list) -> None:
        """Replace the buffer contents with ``values``.

        Capacity is at least the default so a restored empty buffer can
        still grow by doubling (``np.resize(data, 0 * 2)`` would wedge it).
        """
        size = len(values)
        self._data = np.empty(max(1024, size), dtype=np.int64)
        self._data[:size] = values
        self._size = size


# numpy renamed ``interpolation=`` to ``method=`` in 1.22; resolve the
# keyword once at import so the hot reporting path doesn't re-probe
try:
    np.percentile(np.zeros(1), 50.0, method="lower")
    _PERCENTILE_LOWER = {"method": "lower"}
except TypeError:  # pragma: no cover - numpy < 1.22
    _PERCENTILE_LOWER = {"interpolation": "lower"}


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values`` (0.0 when empty).

    Uses the 'lower' interpolation so tail percentiles never exceed the
    maximum observed value, matching how tail statistics are usually
    reported for queue lengths.
    """
    if len(values) == 0:
        return 0.0
    return float(
        np.percentile(
            np.asarray(values, dtype=np.float64), q, **_PERCENTILE_LOWER
        )
    )


class MetricsCollector:
    """Accumulates run statistics with bounded memory.

    Queue length *samples* are collected at a fixed timeslot interval; the
    maxima are tracked exactly (updated on every enqueue).
    """

    def __init__(self, n: int, sample_interval: int = 50, warmup: int = 0):
        self.n = n
        self.sample_interval = max(1, sample_interval)
        self.warmup = warmup
        # exact counters
        self.cells_injected = 0
        self.cells_delivered = 0
        self.payload_cells_delivered = 0
        self.cells_sent = 0
        self.dummy_cells_sent = 0
        self.cells_dropped = 0
        self.wire_losses = 0
        self.cells_trimmed = 0
        self.retransmissions = 0
        self.tokens_sent = 0
        self.control_messages = 0
        # per-node buffer occupancy samples (all queues at the node summed)
        self._buffer_samples = _IntBuffer()
        # per-queue length samples
        self._queue_samples = _IntBuffer()
        # exact maxima
        self.max_queue_length = 0
        self.max_buffer_occupancy = 0
        self.max_active_buckets = 0
        self.max_pieo_length = 0
        # cell latency histogram support
        self.cell_latencies: List[int] = []
        self._cell_latency_cap = 2_000_000
        # throughput time series: delivered payload cells per sample window
        self.throughput_series: List[int] = []
        self._window_delivered = 0
        #: whether the measured interval has begun (False only while a
        #: non-zero warm-up is still running; see :meth:`begin_measurement`)
        self._measuring = warmup <= 0
        # per-destination delivered counts (failure experiment)
        self.delivered_per_node: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # event hooks (hot path — keep them light)

    def on_cell_injected(self, count: int = 1) -> None:
        """A payload cell entered the network (flow emission or RTX).

        Together with the delivery/drop/trim counters and the queued and
        in-flight populations this gives the cell-conservation invariant
        checked by :class:`~repro.sim.monitor.RunMonitor`.
        """
        self.cells_injected += count

    def on_wire_loss(self, count: int = 1) -> None:
        """A payload cell was lost on the wire (failed receiver/link/noise)."""
        self.cells_dropped += count
        self.wire_losses += count

    def on_cell_sent(self, dummy: bool) -> None:
        self.cells_sent += 1
        if dummy:
            self.dummy_cells_sent += 1

    def on_cell_delivered(self, dst: int, latency: int) -> None:
        self.cells_delivered += 1
        self.payload_cells_delivered += 1
        self._window_delivered += 1
        self.delivered_per_node[dst] = self.delivered_per_node.get(dst, 0) + 1
        if len(self.cell_latencies) < self._cell_latency_cap:
            self.cell_latencies.append(latency)

    def on_queue_length(self, length: int) -> None:
        if length > self.max_queue_length:
            self.max_queue_length = length

    def on_drop(self, count: int = 1) -> None:
        self.cells_dropped += count

    def on_trim(self) -> None:
        self.cells_trimmed += 1

    def on_retransmission(self) -> None:
        self.retransmissions += 1

    def on_token_sent(self, count: int = 1) -> None:
        self.tokens_sent += count

    # ------------------------------------------------------------------ #
    # periodic sampling

    def should_sample(self, t: int) -> bool:
        """Whether timeslot ``t`` is a sampling instant (post warm-up)."""
        return t >= self.warmup and t % self.sample_interval == 0

    def begin_measurement(self) -> None:
        """Enter the measured interval (called once, at the end of warm-up).

        Deliveries during warm-up still increment the cumulative counters,
        but must not contaminate the first post-warmup throughput window —
        without this reset, ``throughput_series[0]`` silently included
        every cell delivered since t=0.
        """
        self._measuring = True
        self._window_delivered = 0

    @property
    def buffer_samples(self) -> np.ndarray:
        """Per-node total-buffer occupancy samples, as an int64 array."""
        return self._buffer_samples.view()

    @property
    def queue_samples(self) -> np.ndarray:
        """Per-queue length samples (non-empty queues only), as int64."""
        return self._queue_samples.view()

    def sample_node(
        self,
        buffer_occupancy: int,
        queue_lengths: Optional[Sequence[int]] = None,
        active_buckets: int = 0,
        pieo_length: int = 0,
    ) -> None:
        """Record one node's state at a sampling instant."""
        self._buffer_samples.append(buffer_occupancy)
        if buffer_occupancy > self.max_buffer_occupancy:
            self.max_buffer_occupancy = buffer_occupancy
        if queue_lengths:
            for length in queue_lengths:
                self._queue_samples.append(length)
        if active_buckets > self.max_active_buckets:
            self.max_active_buckets = active_buckets
        if pieo_length > self.max_pieo_length:
            self.max_pieo_length = pieo_length

    def sample_engine_nodes(self, nodes) -> None:
        """Sample every live node and close the throughput window.

        The bulk equivalent of calling :meth:`sample_node` per node followed
        by :meth:`end_sample_window`, without building per-node length lists:
        the engine's sampling step is allocation-free apart from buffer
        growth.

        Queues and bucket trackers are read through their public surface
        (``len()`` / ``peak_occupancy``) only: this method once reached into
        ``PieoQueue._items`` and ``ActiveBucketTracker._refcount`` and broke
        silently when the queue representation changed.
        """
        buf = self._buffer_samples
        qbuf = self._queue_samples
        max_buf = self.max_buffer_occupancy
        max_ab = self.max_active_buckets
        max_pieo = self.max_pieo_length
        for node in nodes:
            if node.failed:
                continue
            occ = node.total_enqueued
            buf.append(occ)
            if occ > max_buf:
                max_buf = occ
            peak = 0
            for queue in node.link_queues:
                length = len(queue)
                if length:
                    qbuf.append(length)
                if queue.peak_occupancy > peak:
                    peak = queue.peak_occupancy
            if peak > max_pieo:
                max_pieo = peak
            tracker = node.bucket_tracker
            if tracker is not None:
                active = len(tracker)
                if active > max_ab:
                    max_ab = active
        self.max_buffer_occupancy = max_buf
        self.max_active_buckets = max_ab
        self.max_pieo_length = max_pieo
        self.end_sample_window()

    def end_sample_window(self) -> None:
        """Close a throughput accounting window."""
        self.throughput_series.append(self._window_delivered)
        self._window_delivered = 0

    # ------------------------------------------------------------------ #
    # summary statistics

    def buffer_occupancy_percentile(self, q: float = 99.99) -> float:
        """Tail total-buffer occupancy across (node, sample) pairs."""
        return percentile(self.buffer_samples, q)

    def queue_length_percentile(self, q: float = 99.0) -> float:
        """Tail per-queue length across (queue, sample) pairs."""
        return percentile(self.queue_samples, q)

    def cell_latency_percentile(self, q: float = 99.9) -> float:
        """Tail single-cell latency in timeslots."""
        return percentile(self.cell_latencies, q)

    def mean_throughput_cells_per_slot(self, duration: int, n: int) -> float:
        """Average delivered payload cells per node per timeslot.

        This is *destination throughput* as a fraction of line rate (each
        node can receive at most one cell per slot).
        """
        if duration <= 0 or n <= 0:
            return 0.0
        return self.payload_cells_delivered / (duration * n)

    def goodput_fraction(self) -> float:
        """Delivered payload cells / total (non-dummy) cells sent."""
        real = self.cells_sent - self.dummy_cells_sent
        if real <= 0:
            return 0.0
        return self.payload_cells_delivered / real

    #: counters and maxima captured verbatim by checkpoints
    _SCALAR_FIELDS = (
        "cells_injected", "cells_delivered", "payload_cells_delivered",
        "cells_sent", "dummy_cells_sent", "cells_dropped", "wire_losses",
        "cells_trimmed", "retransmissions", "tokens_sent",
        "control_messages", "max_queue_length", "max_buffer_occupancy",
        "max_active_buckets", "max_pieo_length",
    )

    def state_dict(self) -> dict:
        """Every mutable statistic as plain data (checkpoint encoding)."""
        return {
            "scalars": {name: getattr(self, name)
                        for name in self._SCALAR_FIELDS},
            "buffer_samples": self._buffer_samples.state(),
            "queue_samples": self._queue_samples.state(),
            "cell_latencies": list(self.cell_latencies),
            "throughput_series": list(self.throughput_series),
            "window_delivered": self._window_delivered,
            "measuring": self._measuring,
            "delivered_per_node": sorted(self.delivered_per_node.items()),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output *in place*.

        The collector object is aliased by the engine and every node, so
        its containers are mutated rather than replaced.
        """
        for name, value in state["scalars"].items():
            setattr(self, name, value)
        self._buffer_samples.load(state["buffer_samples"])
        self._queue_samples.load(state["queue_samples"])
        self.cell_latencies[:] = state["cell_latencies"]
        self.throughput_series[:] = state["throughput_series"]
        self._window_delivered = state["window_delivered"]
        self._measuring = state["measuring"]
        self.delivered_per_node.clear()
        self.delivered_per_node.update(dict(state["delivered_per_node"]))

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of headline statistics."""
        return {
            "cells_injected": float(self.cells_injected),
            "cells_sent": float(self.cells_sent),
            "cells_delivered": float(self.cells_delivered),
            "dummy_cells": float(self.dummy_cells_sent),
            "drops": float(self.cells_dropped),
            "wire_losses": float(self.wire_losses),
            "trims": float(self.cells_trimmed),
            "retransmissions": float(self.retransmissions),
            "max_queue_length": float(self.max_queue_length),
            "queue_p99": self.queue_length_percentile(99.0),
            "buffer_p9999": self.buffer_occupancy_percentile(99.99),
            "max_buffer": float(self.max_buffer_occupancy),
            "max_active_buckets": float(self.max_active_buckets),
            "max_pieo_length": float(self.max_pieo_length),
        }
