"""Run-health watchdog: cell conservation, stall detection, resilience report.

Fault-injection runs are exactly the runs where silent accounting bugs hide:
a cell that vanishes at a failed receiver without a drop counter, a queue
that leaks on recovery, a credit deadlock that freezes the run while dummy
traffic keeps flowing.  :class:`RunMonitor` plugs into the engine's step
loop and checks, every sample window, the cell-conservation invariant

    injected == delivered + dropped + trimmed + queued + in-flight

over *payload* cells, and watches for stalls (backlog without progress) and
livelock (backlog without progress while the wire stays busy).  At the end
of a run :meth:`report` emits a structured resilience report — conservation
checks, violations, stalls, per-failure-event detection latency and drop
attribution — that is byte-identical across runs with the same seed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["RunMonitor", "ConservationError"]


class ConservationError(RuntimeError):
    """The cell-conservation invariant failed (a cell leaked or was forged)."""


class RunMonitor:
    """Watchdog attached to an :class:`~repro.sim.engine.Engine`.

    Args:
        check_interval: slots between conservation checks (default: the
            engine's ``metrics_sample_interval``).
        stall_window_epochs: epochs without any progress (while payload
            backlog exists) before a stall is recorded.
        strict: raise :class:`ConservationError` on the first violation
            instead of recording it.

    Usage::

        monitor = RunMonitor(strict=True).attach(engine)
        engine.run()
        print(monitor.format_report())
    """

    def __init__(self, check_interval: Optional[int] = None,
                 stall_window_epochs: int = 50, strict: bool = False):
        if stall_window_epochs < 1:
            raise ValueError("stall window must be at least one epoch")
        self.check_interval = check_interval
        self.stall_window_epochs = stall_window_epochs
        self.strict = strict
        self._engine = None
        self._interval = 1
        self._stall_slots = 0
        self.checks = 0
        self.violations: List[Dict[str, int]] = []
        self.stalls: List[Dict[str, int]] = []
        self._last_progress = -1
        self._last_progress_t = 0
        self._sent_at_progress = 0
        self._stalled = False
        self._report_emitted = False

    def attach(self, engine) -> "RunMonitor":
        """Hook this monitor into ``engine`` and return it."""
        self._engine = engine
        engine.monitor = self
        self._interval = self.check_interval \
            or engine.config.metrics_sample_interval
        self._stall_slots = self.stall_window_epochs * engine.schedule.epoch_length
        self._last_progress_t = engine.t
        # a restored engine may carry monitor state from its checkpoint,
        # waiting for a monitor to be attached
        pending = engine._pending_restore
        if pending and "monitor" in pending:
            self.load_state(pending.pop("monitor"))
        return self

    def state_dict(self) -> dict:
        """Counters and progress markers (checkpoint encoding)."""
        return {
            "checks": self.checks,
            "violations": [dict(v) for v in self.violations],
            "stalls": [dict(s) for s in self.stalls],
            "last_progress": self._last_progress,
            "last_progress_t": self._last_progress_t,
            "sent_at_progress": self._sent_at_progress,
            "stalled": self._stalled,
        }

    def load_state(self, state: dict) -> None:
        self.checks = state["checks"]
        self.violations[:] = [dict(v) for v in state["violations"]]
        self.stalls[:] = [dict(s) for s in state["stalls"]]
        self._last_progress = state["last_progress"]
        self._last_progress_t = state["last_progress_t"]
        self._sent_at_progress = state["sent_at_progress"]
        self._stalled = state["stalled"]

    # ------------------------------------------------------------------ #
    # per-step hook (called by Engine.step)

    def on_step_end(self, engine, t: int) -> None:
        if t % self._interval:
            return
        self.check(engine, t)

    def check(self, engine, t: int) -> None:
        """Run one conservation + progress check at slot ``t``."""
        metrics = engine.metrics
        queued = sum(node.total_enqueued for node in engine.nodes)
        in_flight = engine._in_flight_payload
        accounted = (
            metrics.payload_cells_delivered
            + metrics.cells_dropped
            + metrics.cells_trimmed
            + queued
            + in_flight
        )
        self.checks += 1
        if metrics.cells_injected != accounted:
            violation = {
                "t": t,
                "injected": metrics.cells_injected,
                "delivered": metrics.payload_cells_delivered,
                "dropped": metrics.cells_dropped,
                "trimmed": metrics.cells_trimmed,
                "queued": queued,
                "in_flight": in_flight,
                "missing": metrics.cells_injected - accounted,
            }
            self.violations.append(violation)
            if engine.events is not None:
                engine.events.emit(t, "conservation_violation",
                                   dict(violation))
            if self.strict:
                raise ConservationError(
                    f"cell conservation violated at t={t}: "
                    f"{violation['missing']:+d} cells unaccounted "
                    f"(injected={violation['injected']}, "
                    f"delivered={violation['delivered']}, "
                    f"dropped={violation['dropped']}, "
                    f"trimmed={violation['trimmed']}, "
                    f"queued={queued}, in_flight={in_flight})"
                )
        progress = (
            metrics.payload_cells_delivered
            + metrics.cells_dropped
            + metrics.cells_trimmed
        )
        backlog = queued + in_flight
        if progress != self._last_progress or backlog == 0:
            self._last_progress = progress
            self._last_progress_t = t
            self._sent_at_progress = metrics.cells_sent
            self._stalled = False
        elif not self._stalled and t - self._last_progress_t >= self._stall_slots:
            self._stalled = True
            busy = metrics.cells_sent > self._sent_at_progress
            stall = {
                "t": t,
                "since": self._last_progress_t,
                "backlog": backlog,
                "kind": "livelock" if busy else "stall",
            }
            self.stalls.append(stall)
            if engine.events is not None:
                engine.events.emit(t, "stall", dict(stall))

    # ------------------------------------------------------------------ #
    # reporting

    def report(self) -> Dict[str, object]:
        """Structured resilience report (JSON-serialisable, deterministic)."""
        engine = self._engine
        if engine is None:
            raise RuntimeError("monitor is not attached to an engine")
        metrics = engine.metrics
        queued = sum(node.total_enqueued for node in engine.nodes)
        out: Dict[str, object] = {
            "t": engine.t,
            "checks": self.checks,
            "violations": self.violations,
            "stalls": self.stalls,
            "totals": {
                "injected": metrics.cells_injected,
                "delivered": metrics.payload_cells_delivered,
                "dropped": metrics.cells_dropped,
                "wire_losses": metrics.wire_losses,
                "trimmed": metrics.cells_trimmed,
                "queued": queued,
                "in_flight": engine._in_flight_payload,
            },
        }
        manager = engine.failure_manager
        if manager is not None and hasattr(manager, "resilience_summary"):
            out["failures"] = manager.resilience_summary()
        return out

    def report_json(self) -> str:
        """The report as canonical JSON (byte-identical for a given seed)."""
        return json.dumps(self.report(), sort_keys=True)

    def scorecard_metrics(self) -> Dict[str, object]:
        """The report reduced to the flat metrics resilience scoring uses.

        One code path for the scenario scorecards, the ``--telemetry``
        runtime sidecar and ad-hoc runs: everything here is derived from
        :meth:`report`, so the numbers can never disagree between surfaces.
        Deterministic for a given seed.
        """
        rep = self.report()
        totals = rep["totals"]
        injected = totals["injected"]
        fail_events = []
        failures = rep.get("failures")
        if failures:
            fail_events = [e for e in failures["events"]
                           if e["action"] == "fail"]
        detected = [e["detect_first_slots"] for e in fail_events
                    if e["detect_first_slots"] is not None]
        return {
            "t": rep["t"],
            "delivery_ratio": (totals["delivered"] / injected
                               if injected else 1.0),
            "conserved": not rep["violations"],
            "checks": rep["checks"],
            "violations": len(rep["violations"]),
            "stalls": len(rep["stalls"]),
            "livelocks": sum(1 for s in rep["stalls"]
                             if s["kind"] == "livelock"),
            "dropped": totals["dropped"],
            "wire_losses": totals["wire_losses"],
            "backlog": totals["queued"] + totals["in_flight"],
            "failure_events": len(fail_events),
            "failures_detected": len(detected),
            "failures_undetected": len(fail_events) - len(detected),
            "detection_mean_slots": (sum(detected) / len(detected)
                                     if detected else None),
        }

    def emit_report_event(self) -> bool:
        """Emit the structured report into the engine's event log, once.

        Called by :class:`~repro.obs.capture.TelemetryCapture` at
        collection time so ``<experiment>.events.jsonl`` carries the same
        resilience report the scorecards score; safe to call repeatedly
        (only the first call emits) and a no-op without an event log.
        """
        engine = self._engine
        if engine is None or engine.events is None or self._report_emitted:
            return False
        self._report_emitted = True
        engine.events.emit(engine.t, "resilience_report", self.report())
        return True

    def format_report(self) -> str:
        """Human-readable rendering of :meth:`report`."""
        rep = self.report()
        totals = rep["totals"]
        lines = [
            f"run health @ t={rep['t']}: {rep['checks']} conservation checks, "
            f"{len(rep['violations'])} violations, {len(rep['stalls'])} stalls",
            "  cells: injected={injected}  delivered={delivered}  "
            "dropped={dropped} (wire {wire_losses})  trimmed={trimmed}  "
            "queued={queued}  in-flight={in_flight}".format(**totals),
        ]
        for stall in rep["stalls"]:
            lines.append(
                f"  {stall['kind']} at t={stall['t']}: no progress since "
                f"t={stall['since']} with backlog {stall['backlog']}"
            )
        failures = rep.get("failures")
        if failures:
            lines.append(
                f"  failure protocol: {failures['detections']} detections, "
                f"{failures['deaf_notices']} deaf notices, "
                f"{failures['undetects']} re-validations"
            )
            for event in failures["events"]:
                target = "/".join(str(x) for x in event["target"])
                detect = event["detect_first_slots"]
                detail = "undetected" if detect is None else (
                    f"first reaction +{detect} slots "
                    f"({event['detect_first_epochs']} epochs), "
                    f"{event['reactions']} reactions"
                )
                lines.append(
                    f"    t={event['t']:>6} {event['action']:>7} "
                    f"{event['kind']} {target}: {detail}, "
                    f"{event['drops_after']} drops in window"
                )
        return "\n".join(lines)
