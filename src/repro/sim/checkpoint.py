"""Versioned snapshots of a running simulation, with bit-exact resume.

The paper's headline experiments run millions of timeslots; an interrupted
cell (crash, OOM, preemption) used to lose everything.  This module
captures the *complete* mutable state of an :class:`~repro.sim.engine.Engine`
— timeslot cursor, RNG generator state, per-node queues/ledgers/failure
markings, the flow table, metrics and telemetry buffers, monitor counters
and failure-protocol state — so a run can be stopped at slot ``k`` and
resumed to produce exactly the cells, drops, tokens and artifacts of the
uninterrupted run (pinned by :class:`~repro.sim.digest.DeterminismDigest`
and the golden-trace suite).

File format (same integrity idiom as :mod:`repro.sim.cellcache`)::

    MAGIC (10 bytes) | pickled payload | sha256(payload) (32 bytes)

Writes are atomic (``tempfile.mkstemp`` + ``os.replace``), so the file on
disk is always a complete snapshot.  Loads are *self-healing* through
:func:`load_checkpoint_or_none`: a truncated, corrupted, foreign-versioned
or config-mismatched file is treated as "no checkpoint" (and removed), so a
resume can always fall back to slot 0 rather than crash.

What is **not** captured, by design:

* ``Schedule`` / ``CoordinateSystem`` — immutable, derived from ``(n, h)``.
* The engine's ``Transmission`` freelist — identity is never observed;
  the resumed engine simply re-grows it.
* ``StepProfiler`` timings — volatile measurements, not simulation state.
* Engines driven by manual ``step()`` dispatch (``MultiClassSimulation``)
  never pass through the run loops, so periodic checkpointing does not
  cover them; :meth:`Engine.snapshot` still works for manual use.

The ambient :class:`CheckpointPolicy` mirrors the cell cache's
``default_cache`` pattern: installing one (runner ``--checkpoint-dir``)
makes every sweep cell periodically checkpoint each engine it builds and
transparently resume from an existing snapshot after a crash.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointWriter",
    "CellScope",
    "apply_checkpoint",
    "compose_checkpoint",
    "default_policy",
    "discard_checkpoint",
    "load_any_checkpoint_or_none",
    "load_checkpoint",
    "load_checkpoint_or_none",
    "restore_engine",
    "save_checkpoint",
    "save_split_checkpoint",
    "set_default_policy",
    "shard_part_paths",
    "snapshot_engine",
    "split_checkpoint",
]

#: bump on any change to the payload layout; old files self-heal as misses
CHECKPOINT_VERSION = 1

_MAGIC = b"SHALECKPT\n"
_SHA256_BYTES = 32


class CheckpointError(RuntimeError):
    """A checkpoint file or object could not be used."""


class Checkpoint:
    """One snapshot: format version, the run's ``SimConfig``, state payload.

    The state payload is a plain-data dict (ints, strings, tuples, lists)
    produced by :func:`snapshot_engine`; the config rides along so restore
    can verify the snapshot belongs to the engine it is applied to.
    """

    __slots__ = ("version", "config", "state")

    def __init__(self, version: int, config, state: Dict[str, object]):
        self.version = version
        self.config = config
        self.state = state

    @property
    def t(self) -> int:
        """The timeslot at which the snapshot was taken."""
        return self.state["t"]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Checkpoint(v{self.version}, t={self.t}, "
            f"n={self.config.n}, seed={self.config.seed})"
        )


# ---------------------------------------------------------------------- #
# file I/O

def save_checkpoint(checkpoint: Checkpoint, path) -> None:
    """Write ``checkpoint`` to ``path`` atomically (tmp file + rename)."""
    payload = pickle.dumps(
        {
            "version": checkpoint.version,
            "config": checkpoint.config,
            "state": checkpoint.state,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    footer = hashlib.sha256(payload).digest()
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(payload)
            fh.write(footer)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path) -> Checkpoint:
    """Read and verify a checkpoint; raises :class:`CheckpointError`."""
    try:
        data = pathlib.Path(path).read_bytes()
    except OSError as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if len(data) < len(_MAGIC) + _SHA256_BYTES or not data.startswith(_MAGIC):
        raise CheckpointError(f"not a checkpoint file: {path}")
    payload = data[len(_MAGIC):-_SHA256_BYTES]
    footer = data[-_SHA256_BYTES:]
    if hashlib.sha256(payload).digest() != footer:
        raise CheckpointError(f"checkpoint integrity check failed: {path}")
    try:
        entry = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"undecodable checkpoint {path}: {exc}") from exc
    if not isinstance(entry, dict) or entry.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version in {path}: "
            f"{entry.get('version') if isinstance(entry, dict) else '?'} "
            f"(want {CHECKPOINT_VERSION})"
        )
    return Checkpoint(entry["version"], entry["config"], entry["state"])


def load_checkpoint_or_none(path) -> Optional[Checkpoint]:
    """Self-healing load: anything wrong means ``None``, never an exception.

    A bad file (truncated write from a crash, stale version, random bytes)
    is removed so the next save starts clean.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return None
    try:
        return load_checkpoint(path)
    except CheckpointError:
        try:
            path.unlink()
        except OSError:
            pass
        return None


# ---------------------------------------------------------------------- #
# engine state capture

def snapshot_engine(engine, loop: Optional[Tuple[int, int]] = None) -> Checkpoint:
    """Capture every mutable piece of ``engine`` into a :class:`Checkpoint`.

    ``loop`` marks the run/drain loop the snapshot was taken inside, as
    ``(loop ordinal, absolute end slot)`` — the periodic writer passes it so
    a resumed engine re-entering the same cell code can fast-forward loops
    that completed before the snapshot and stop the interrupted loop at the
    original end.  Manual snapshots leave it None.
    """
    telemetry = engine.telemetry
    if telemetry is not None and not hasattr(telemetry, "state_dict"):
        telemetry = None  # a recorder we don't know how to capture
    state = {
        "t": engine.t,
        "loop": loop,
        "rng": engine.rng.getstate(),
        "pending_flows": [tuple(item) for item in engine._pending_flows],
        "in_flight": [tx.state() for tx in engine._in_flight],
        "in_flight_payload": engine._in_flight_payload,
        "failed_links": sorted(engine.failed_links),
        "active_ids": sorted(engine._active_ids),
        "isd_last": sorted(engine._isd_last.items()),
        "force_full_scan": engine.force_full_scan,
        "flows": engine.flows.state_dict(),
        "metrics": engine.metrics.state_dict(),
        "nodes": [node.state_dict() for node in engine.nodes],
        "digest": (None if engine.digest is None
                   else engine.digest.state_dict()),
        "monitor": (None if engine.monitor is None
                    else engine.monitor.state_dict()),
        "telemetry": (None if telemetry is None
                      else telemetry.state_dict()),
        "events": (None if engine.events is None
                   else engine.events.state_dict()),
        "failure_manager": (None if engine.failure_manager is None
                            else engine.failure_manager.state_dict()),
    }
    return Checkpoint(CHECKPOINT_VERSION, engine.config, state)


def apply_checkpoint(engine, checkpoint: Checkpoint) -> None:
    """Overwrite ``engine``'s state with ``checkpoint``.

    The engine must have been built from the same :class:`SimConfig`.
    Containers aliased by the hot path (queue backing lists, ledger dicts,
    the metrics collector, the active-id set) are mutated in place so every
    cached reference inside the engine and its nodes stays valid.

    Observer state (monitor/telemetry/events) restores directly onto
    already-attached observers; otherwise it is parked on
    ``engine._pending_restore`` and absorbed by the observer's ``attach``.
    """
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} != "
            f"{CHECKPOINT_VERSION}"
        )
    if checkpoint.config != engine.config:
        raise CheckpointError(
            "checkpoint was taken under a different configuration"
        )
    from ..failures.manager import FailureManager
    from .node import Transmission

    state = checkpoint.state
    engine.rng.setstate(state["rng"])
    engine._pending_flows.clear()
    engine._pending_flows.extend(tuple(i) for i in state["pending_flows"])
    engine.flows.load_state(state["flows"])
    flow_lookup = engine.flows.get
    for node, node_state in zip(engine.nodes, state["nodes"]):
        node.load_state(node_state, flow_lookup)
    engine._active_ids.clear()
    engine._active_ids.update(state["active_ids"])
    engine.failed_links.clear()
    engine.failed_links.update(tuple(link) for link in state["failed_links"])
    engine._in_flight.clear()
    engine._in_flight.extend(
        Transmission.from_state(s) for s in state["in_flight"]
    )
    engine._in_flight_payload = state["in_flight_payload"]
    engine._isd_last.clear()
    engine._isd_last.update(dict(state["isd_last"]))
    engine.force_full_scan = state["force_full_scan"]
    engine.metrics.load_state(state["metrics"])

    pending: Dict[str, object] = {}
    if state["digest"] is not None:
        if engine.digest is None:
            engine.enable_digest()
        engine.digest.load_state(state["digest"])
    if state["monitor"] is not None:
        if engine.monitor is not None:
            engine.monitor.load_state(state["monitor"])
        else:
            pending["monitor"] = state["monitor"]
    if state["telemetry"] is not None:
        recorder = engine.telemetry
        if recorder is not None and hasattr(recorder, "load_state"):
            recorder.load_state(state["telemetry"])
        else:
            pending["telemetry"] = state["telemetry"]
    if state["events"] is not None:
        if engine.events is not None:
            engine.events.load_state(state["events"])
        else:
            pending["events"] = state["events"]
    if state["failure_manager"] is not None:
        manager = engine.failure_manager
        if manager is None:
            manager = FailureManager.from_state(state["failure_manager"])
            engine.failure_manager = manager
        manager.load_state(engine, state["failure_manager"])
    engine._pending_restore = pending or None

    engine.t = state["t"]
    engine._loops_entered = 0
    engine._resume = (None if state["loop"] is None
                      else tuple(state["loop"]))


def split_checkpoint(checkpoint: Checkpoint, count: int) -> List[Checkpoint]:
    """Split one snapshot into ``count`` per-shard parts.

    Node state is partitioned along the same phase-group boundaries the
    ``"shard"`` backend uses (:func:`repro.sim.backends.shard.shard_ranges`),
    so each part holds exactly the nodes one shard worker owns; part 0
    additionally carries the run-global remainder (RNG, flow table, metrics,
    wire, observers).  Parts are ordinary :class:`Checkpoint` objects —
    :func:`save_checkpoint` / :func:`load_checkpoint` work on each — and
    :func:`compose_checkpoint` reassembles the original snapshot bit-exactly,
    so a sharded run can persist each shard's slice independently and still
    resume as one run.
    """
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} != {CHECKPOINT_VERSION}"
        )
    from .backends.shard import shard_ranges

    config = checkpoint.config
    r = round(config.n ** (1.0 / config.h))
    ranges = shard_ranges(config.n, r, int(count))
    state = checkpoint.state
    nodes = state["nodes"]
    if len(nodes) != config.n:
        raise CheckpointError(
            f"snapshot holds {len(nodes)} node states for n={config.n}"
        )
    rest = {key: value for key, value in state.items() if key != "nodes"}
    parts: List[Checkpoint] = []
    for k, (lo, hi) in enumerate(ranges):
        part_state: Dict[str, object] = {
            "t": state["t"],
            "shard": (k, len(ranges), lo, hi),
            "nodes": nodes[lo:hi],
        }
        if k == 0:
            part_state["rest"] = rest
        parts.append(Checkpoint(CHECKPOINT_VERSION, config, part_state))
    return parts


def compose_checkpoint(parts: List[Checkpoint]) -> Checkpoint:
    """Reassemble :func:`split_checkpoint` parts into one snapshot.

    Validates that the parts share a version, config and timeslot, that
    their node ranges tile ``[0, n)`` exactly, and that the run-global
    remainder is present; any gap, overlap or mixture raises
    :class:`CheckpointError` rather than composing a corrupt resume point.
    """
    if not parts:
        raise CheckpointError("no checkpoint shards to compose")
    ordered = sorted(parts, key=lambda p: p.state["shard"][2])
    config = ordered[0].config
    t = ordered[0].state["t"]
    total = ordered[0].state["shard"][1]
    if len(ordered) != total:
        raise CheckpointError(
            f"have {len(ordered)} checkpoint shards of {total}"
        )
    rest: Optional[Dict[str, object]] = None
    nodes: List[object] = []
    cursor = 0
    for part in ordered:
        if part.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint shard version {part.version} != "
                f"{CHECKPOINT_VERSION}"
            )
        if part.config != config or part.state["t"] != t:
            raise CheckpointError(
                "checkpoint shards come from different runs"
            )
        _, k_total, lo, hi = part.state["shard"]
        if (k_total != total or lo != cursor
                or len(part.state["nodes"]) != hi - lo):
            raise CheckpointError(
                "checkpoint shards do not tile the node space"
            )
        nodes.extend(part.state["nodes"])
        cursor = hi
        if "rest" in part.state:
            rest = part.state["rest"]
    if cursor != config.n or rest is None:
        raise CheckpointError(
            "checkpoint shards are incomplete (missing nodes or the "
            "run-global remainder)"
        )
    state = dict(rest)
    state["nodes"] = nodes
    return Checkpoint(CHECKPOINT_VERSION, config, state)


def shard_part_paths(path, count: Optional[int] = None) -> List[pathlib.Path]:
    """Per-shard split-file names for checkpoint ``path``.

    Part ``k`` of a split snapshot lives at ``<path>.partK`` by convention
    (one file per shard worker slice).  With ``count`` the expected names
    are returned; without it, the parts that actually exist on disk are
    globbed and returned in part order.
    """
    path = pathlib.Path(path)
    if count is not None:
        return [path.with_name(f"{path.name}.part{k}")
                for k in range(int(count))]
    found = []
    for candidate in path.parent.glob(f"{path.name}.part*"):
        suffix = candidate.name[len(path.name) + len(".part"):]
        if suffix.isdigit():
            found.append((int(suffix), candidate))
    return [p for _, p in sorted(found)]


def save_split_checkpoint(checkpoint: Checkpoint, path, count: int) -> List[pathlib.Path]:
    """Persist ``checkpoint`` as ``count`` per-shard parts next to ``path``.

    Splits along :func:`split_checkpoint`'s shard boundaries and writes
    each part atomically to its :func:`shard_part_paths` name.  Stale parts
    from an earlier split with a *larger* shard count are removed, so the
    on-disk part set always composes to exactly this snapshot.
    """
    parts = split_checkpoint(checkpoint, count)
    paths = shard_part_paths(path, len(parts))
    for part, part_path in zip(parts, paths):
        save_checkpoint(part, part_path)
    for stale in shard_part_paths(path)[len(parts):]:
        try:
            stale.unlink()
        except OSError:
            pass
    return paths


def load_any_checkpoint_or_none(path) -> Optional[Checkpoint]:
    """Self-healing load of a whole snapshot *or* its split parts.

    The single file at ``path`` wins when it is present and valid;
    otherwise the per-shard parts (``<path>.partK``) are loaded and
    composed.  Anything wrong — a corrupt file, a missing part, parts from
    different runs — means ``None``, with the unusable files removed so
    the next save starts clean (same contract as
    :func:`load_checkpoint_or_none`).
    """
    whole = load_checkpoint_or_none(path)
    if whole is not None:
        return whole
    part_paths = shard_part_paths(path)
    if not part_paths:
        return None
    parts = []
    for part_path in part_paths:
        part = load_checkpoint_or_none(part_path)
        if part is None or "shard" not in part.state:
            parts = None
            break
        parts.append(part)
    if parts is not None:
        try:
            return compose_checkpoint(parts)
        except CheckpointError:
            pass
    for part_path in part_paths:
        try:
            part_path.unlink()
        except OSError:
            pass
    return None


def discard_checkpoint(path) -> None:
    """Remove a checkpoint *and* any per-shard split parts beside it.

    The clean-completion path must use this rather than unlinking ``path``
    alone: a sharded run persists per-shard part files, and composing them
    on resume leaves the parts behind — a later run with the same path
    would otherwise resurrect the stale parts as a resume point.
    """
    path = pathlib.Path(path)
    try:
        path.unlink()
    except OSError:
        pass
    for part_path in shard_part_paths(path):
        try:
            part_path.unlink()
        except OSError:
            pass


def restore_engine(checkpoint: Checkpoint):
    """Build a fresh :class:`Engine` resumed from ``checkpoint``."""
    from .engine import Engine

    engine = Engine(checkpoint.config)
    apply_checkpoint(engine, checkpoint)
    return engine


# ---------------------------------------------------------------------- #
# periodic writer (driven by the engine's run loops)

class CheckpointWriter:
    """Writes a snapshot of one engine every ``every`` timeslots.

    The engine's checkpoint-aware run loops call :meth:`write` whenever the
    cursor passes :attr:`due_t`; each write atomically replaces ``path``,
    so the file always holds the latest complete snapshot.
    """

    __slots__ = ("path", "every", "due_t", "written", "last_t")

    def __init__(self, path, every: int):
        if every is None or every <= 0:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.path = pathlib.Path(path)
        self.every = int(every)
        self.due_t = 0
        #: snapshots written so far
        self.written = 0
        #: timeslot of the latest snapshot (-1 before the first)
        self.last_t = -1

    def arm(self, t: int) -> None:
        """Schedule the next write relative to the loop's starting slot."""
        self.due_t = t + self.every

    def write(self, engine, ordinal: int, end: int) -> None:
        """Snapshot ``engine`` mid-loop and advance the due time."""
        save_checkpoint(snapshot_engine(engine, loop=(ordinal, end)),
                        self.path)
        self.written += 1
        self.last_t = engine.t
        self.due_t = engine.t + self.every


# ---------------------------------------------------------------------- #
# ambient policy (sweep cells, runner --checkpoint-dir)

_default_policy: Optional["CheckpointPolicy"] = None


def default_policy() -> Optional["CheckpointPolicy"]:
    """The ambient checkpoint policy, or None."""
    return _default_policy


def set_default_policy(
    policy: Optional["CheckpointPolicy"],
) -> Optional["CheckpointPolicy"]:
    """Install ``policy`` as ambient; returns the previous one."""
    global _default_policy
    previous = _default_policy
    _default_policy = policy
    return previous


class CheckpointPolicy:
    """Directory + interval for ambient sweep-cell checkpointing.

    Installed by the runner's ``--checkpoint-dir`` (or programmatically via
    :func:`set_default_policy` / the experiment ``checkpoint_dir=`` keyword).
    ``parallel.sweep`` opens a :class:`CellScope` per cell; each engine the
    cell builds gets a content-addressed checkpoint file, resumes from it
    when one survives a crash, and the files are removed when the cell
    completes cleanly.
    """

    def __init__(self, directory, every: int = 100_000):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if every is None or every <= 0:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.every = int(every)

    def key_for(self, fn: Callable, kwargs: Dict[str, object]) -> str:
        """Content-addressed cell key: code fingerprint + fn + kwargs.

        Mirrors the cell cache's keying so a checkpoint can never be
        resumed by a cell running different code or parameters — such a
        file is simply never looked up.
        """
        from ..obs.serialize import canonical_json
        from .cellcache import code_fingerprint

        identity = {
            "code": code_fingerprint(),
            "fn": f"{getattr(fn, '__module__', '?')}."
                  f"{getattr(fn, '__qualname__', repr(fn))}",
            "kwargs": kwargs,
        }
        raw = canonical_json(identity).encode()
        return hashlib.sha256(raw).hexdigest()[:32]

    @contextmanager
    def cell_scope(self, key: str):
        """Checkpoint every engine built while the scope is active.

        Must be entered *after* any telemetry/digest construction hooks, so
        a restored engine's observer state lands on observers that are
        already attached.
        """
        from . import engine as _engine_mod

        scope = CellScope(self, key)
        _engine_mod._construction_hooks.append(scope._on_engine)
        try:
            yield scope
        finally:
            _engine_mod._construction_hooks.remove(scope._on_engine)


class CellScope:
    """Per-cell checkpoint namespace: one file per engine built, in order."""

    def __init__(self, policy: CheckpointPolicy, key: str):
        self.policy = policy
        self.key = key
        self.ordinal = 0
        self.paths: List[pathlib.Path] = []
        #: (engine ordinal, resumed-at slot) for every restored engine
        self.resumed: List[Tuple[int, int]] = []

    def _on_engine(self, engine) -> None:
        path = self.policy.directory / f"{self.key}-{self.ordinal:02d}.ckpt"
        self.ordinal += 1
        self.paths.append(path)
        checkpoint = load_checkpoint_or_none(path)
        if checkpoint is not None:
            try:
                apply_checkpoint(engine, checkpoint)
            except CheckpointError:
                # e.g. the cell's engine was built with other parameters
                # than the snapshot's; start this engine from slot 0
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                self.resumed.append((self.ordinal - 1, engine.t))
        engine.enable_checkpoints(path, self.policy.every)

    @property
    def resume_slot(self) -> Optional[int]:
        """Earliest slot any engine of this cell resumed from (telemetry)."""
        return min((t for _, t in self.resumed), default=None)

    def discard(self) -> None:
        """Remove this cell's checkpoint files (cell completed cleanly)."""
        for path in self.paths:
            try:
                path.unlink()
            except OSError:
                pass
