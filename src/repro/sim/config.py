"""Simulation configuration.

All tunables of the paper's evaluation setup live here, with the paper's
values as defaults where they matter and down-scaled defaults where the
paper's values only set wall-clock scale.  The config object is plain data:
constructing one performs validation but has no side effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SimConfig", "TimingModel", "PAPER_TIMING"]


@dataclass(frozen=True)
class TimingModel:
    """Physical timing constants (paper Section 5) for unit conversions.

    The simulator is timeslot-denominated; this model converts slots to
    nanoseconds for reporting.  With eight 50 Gbps lanes running staggered
    schedules, a new timeslot begins every ``slot_ns / lanes`` on average.
    """

    #: usable slot time plus guard band, in nanoseconds
    slot_ns: float = 45.056
    #: guard band within each slot, in nanoseconds
    guard_ns: float = 4.096
    #: parallel lanes per link
    lanes: int = 8
    #: per-lane bandwidth in Gbps
    lane_gbps: float = 50.0

    @property
    def usable_ns(self) -> float:
        """Usable transmission time per slot."""
        return self.slot_ns - self.guard_ns

    @property
    def effective_slot_ns(self) -> float:
        """Mean time between timeslot starts across the staggered lanes."""
        return self.slot_ns / self.lanes

    @property
    def cell_bytes(self) -> int:
        """Cell size implied by usable time x lane rate (256B in the paper)."""
        return round(self.usable_ns * self.lane_gbps / 8)

    @property
    def aggregate_gbps(self) -> float:
        """Total per-node bandwidth."""
        return self.lanes * self.lane_gbps

    def slots_to_ns(self, slots: float) -> float:
        """Convert a timeslot count to nanoseconds."""
        return slots * self.effective_slot_ns

    def ns_to_slots(self, ns: float) -> float:
        """Convert nanoseconds to (fractional) timeslots."""
        return ns / self.effective_slot_ns


#: The exact timing used throughout the paper's evaluation (Section 5).
PAPER_TIMING = TimingModel()


@dataclass
class SimConfig:
    """Configuration for one packet-level simulation run.

    Attributes:
        n: number of nodes; must equal ``r**h`` for integer ``r >= 2``.
        h: Shale tuning parameter (1 == SRRD == RotorNet/Shoal/Sirius).
        propagation_delay: one-way propagation delay in timeslots
            (the paper's datacenter setting is 89 slots = 0.5 us).
        duration: number of timeslots to simulate.
        seed: RNG seed for reproducibility.
        congestion_control: name of the mechanism
            (none | priority | isd | rd | ndp | spray-short | hop-by-hop |
            hbh+spray).
        token_budget: hop-by-hop ``T`` (Appendix D).
        first_hop_token_budget: hop-by-hop ``T_F`` (0 == same as ``T``).
        tokens_per_header: header token slots (paper reserves 2).
        ndp_queue_limit: per-queue cap before trimming (NDP only).
        pull_batch: cells per PULL message (RD/NDP; paper uses 20).
        initial_window: cells a sender may emit before the first PULL
            (RD/NDP).
        isd_rate_factor: the ISD receiver-bandwidth parameter ``R``
            expressed as a multiple of the throughput guarantee ``1/(2h)``
            (paper uses 1.25).
        drain_after: extra timeslots after the last flow arrival during
            which no new flows start but the network keeps draining.
        warmup: timeslots excluded from measurement at the start of a run.
        use_fifo_for_hbh: ablation switch — run hop-by-hop with plain FIFO
            queues instead of PIEO (head-of-line blocking study).
        metrics_sample_interval: timeslots between buffer-occupancy samples.
        schedule: registered connection-schedule strategy name
            (``"ebs"`` | ``"srrd"`` | any name added via
            :func:`repro.core.register_schedule`).
        routing: registered routing strategy name (``"vlb"`` |
            ``"semi_oblivious"`` | any name added via
            :func:`repro.core.register_routing`).
        backend: registered engine backend name (``"object"`` |
            ``"vector"``; see :mod:`repro.sim.backends`).  The empty
            string (the default) resolves to the ambient process default —
            normally ``"object"``, overridable via the runner's
            ``--backend`` — at construction time, so a resolved config
            always names its backend explicitly (cache keys and checkpoint
            validation therefore never mix backends silently).
    """

    n: int = 64
    h: int = 2
    propagation_delay: int = 8
    duration: int = 5_000
    seed: int = 1
    congestion_control: str = "hbh+spray"
    token_budget: int = 1
    first_hop_token_budget: int = 0
    tokens_per_header: int = 2
    ndp_queue_limit: int = 100
    pull_batch: int = 20
    initial_window: int = 40
    isd_rate_factor: float = 1.25
    drain_after: int = 0
    warmup: int = 0
    use_fifo_for_hbh: bool = False
    metrics_sample_interval: int = 50
    timing: TimingModel = field(default_factory=TimingModel)
    schedule: str = "ebs"
    routing: str = "vlb"
    backend: str = ""

    VALID_CC = (
        "none",
        "priority",
        "isd",
        "rd",
        "ndp",
        "spray-short",
        "hop-by-hop",
        "hbh+spray",
    )

    def __post_init__(self) -> None:
        from ..core.strategies import validate_design
        from .backends import backend_class, default_backend

        # raises with a registry-aware message for unknown strategy names
        # and a strategy-specific one for infeasible (n, h)
        validate_design(self.schedule, self.routing, self.n, self.h)
        if not self.backend:
            self.backend = default_backend()
        backend_class(self.backend)  # registry-aware error for unknown names
        if self.congestion_control not in self.VALID_CC:
            raise ValueError(
                f"unknown congestion control {self.congestion_control!r}; "
                f"expected one of {self.VALID_CC}"
            )
        if self.propagation_delay < 0:
            raise ValueError("propagation delay must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.token_budget < 1:
            raise ValueError("token budget must be >= 1")
        if self.tokens_per_header < 1:
            raise ValueError("need at least one token slot per header")

    @property
    def uses_spray_short(self) -> bool:
        """Whether spraying hops pick the shortest queue."""
        return self.congestion_control in ("spray-short", "hbh+spray")

    @property
    def uses_hop_by_hop(self) -> bool:
        """Whether the token protocol is active."""
        return self.congestion_control in ("hop-by-hop", "hbh+spray")

    def line_rate_cells_per_slot(self) -> float:
        """Each node sends exactly one cell per timeslot."""
        return 1.0
