"""Multiprocess parameter sweeps for experiment grids.

The figure experiments are embarrassingly parallel across their grid cells
(mechanism x tuning x size): each cell is an independent simulation.  This
module maps a pure function over a list of keyword-argument dictionaries
using a process pool, with a sequential fallback for ``workers <= 1`` (and
for environments where forking is unavailable).

Only module-level functions can cross process boundaries, so experiments
pass a top-level worker like::

    def _cell(mechanism, h, n, duration):
        engine = run_cc_experiment(...)
        return extract_plain_results(engine)   # picklable data only

    results = sweep(_cell, grid, workers=4)

Results are returned in grid order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["sweep", "default_workers"]


def default_workers(cap: int = 8) -> int:
    """A sensible worker count: physical parallelism, capped."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(cap, cores - 1))


def _invoke(payload):
    fn, kwargs = payload
    # Workers forked under a TelemetryCapture inherit the parent's capture
    # object, but engines registered there would die with the process: wrap
    # the cell in a private capture and ship the telemetry home with the
    # result instead (imported lazily to keep sim importable without obs).
    from ..obs import capture as _capture

    if _capture.current_capture() is None:
        return fn(**kwargs)
    with _capture.TelemetryCapture() as cell_capture:
        result = fn(**kwargs)
    runs, runtimes, events = cell_capture.collect_bundle()
    return _capture.SweepTelemetry(result, runs, runtimes, events)


def _unwrap(results, active_capture):
    """Merge shipped-home telemetry (grid order) and strip the wrappers."""
    from ..obs.capture import SweepTelemetry

    out = []
    for item in results:
        if isinstance(item, SweepTelemetry):
            if active_capture is not None:
                active_capture.merge(item)
            out.append(item.result)
        else:
            out.append(item)
    return out


def sweep(
    fn: Callable[..., Any],
    grid: Sequence[Dict[str, Any]],
    workers: Optional[int] = None,
) -> List[Any]:
    """Evaluate ``fn(**cell)`` for every cell of ``grid``.

    Args:
        fn: a picklable (module-level) function.
        grid: keyword-argument dictionaries, one per cell.
        workers: process count; ``None`` or ``<= 1`` runs sequentially.

    Returns:
        Results in the same order as ``grid``.
    """
    cells = list(grid)
    if workers is None:
        workers = 1
    if workers <= 1 or len(cells) <= 1:
        return [fn(**cell) for cell in cells]
    payloads = [(fn, cell) for cell in cells]
    # fork keeps imports cheap; fall back to sequential when a start method
    # is unavailable (e.g. restricted sandboxes).
    try:
        context = multiprocessing.get_context("fork")
        pool_size = min(workers, len(cells))
        # chunked dispatch amortises IPC overhead across grid cells while
        # still leaving ~4 chunks per worker for load balancing
        chunksize = max(1, len(cells) // (pool_size * 4))
        with context.Pool(processes=pool_size) as pool:
            results = pool.map(_invoke, payloads, chunksize=chunksize)
    except (OSError, ValueError):
        return [fn(**cell) for cell in cells]
    from ..obs.capture import current_capture

    return _unwrap(results, current_capture())
