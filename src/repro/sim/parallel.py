"""Multiprocess parameter sweeps for experiment grids.

The figure experiments are embarrassingly parallel across their grid cells
(mechanism x tuning x size): each cell is an independent simulation.  This
module maps a pure function over a list of keyword-argument dictionaries
using a process pool, with a sequential fallback for ``workers <= 1`` (and
for environments where forking is unavailable).

Only module-level functions can cross process boundaries, so experiments
pass a top-level worker like::

    def _cell(mechanism, h, n, duration):
        engine = run_cc_experiment(...)
        return extract_plain_results(engine)   # picklable data only

    results = sweep(_cell, grid, workers=4)

Results are returned in grid order regardless of completion order
(dispatch uses ``imap_unordered`` + grid-order reassembly, so a slow cell
never blocks progress reporting on the fast ones).

On top of plain dispatch the sweep provides:

* **Caching** — pass ``cache=`` (a :class:`~repro.sim.cellcache.CellCache`
  or a directory) or install a process-wide default via the runner's
  ``--cache`` flag; cells whose content key is already stored are restored
  instead of recomputed, byte-identical to a fresh run.
* **Determinism digests** — with ``digest=True`` (implied by caching),
  every engine built inside a cell gets a
  :class:`~repro.sim.digest.DeterminismDigest`; the hexdigests ride along
  in each :class:`CellOutcome` for parallel-vs-sequential equivalence
  checks.
* **Crash isolation** — a cell that raises inside a worker is logged and
  retried sequentially in the parent (with exponential backoff) up to a
  configurable budget (``retries=`` / the runner's ``--cell-retries``,
  default 1) instead of killing the sweep; the attempt count rides along
  in each :class:`CellOutcome` and the runtime sidecar.
* **Shared immutable tables** — the ``(n, h)`` coordinate/schedule memo is
  pre-warmed in the parent before forking so workers share the pages.
* **Telemetry cooperation** — workers forked under an ambient
  :class:`~repro.obs.capture.TelemetryCapture` wrap their cells in a
  private capture and ship the telemetry home with the result; the parent
  merges it in grid order, stamping each cell's wall clock into the
  runtime sidecar records.  The sequential paths (including the
  pool-unavailable fallback) route through the same wrapper, so no path
  loses telemetry.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
import time
import traceback
from contextlib import ExitStack, contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["sweep", "sweep_cells", "default_workers", "CellOutcome",
           "default_cell_retries", "set_default_cell_retries",
           "ShardPool", "ShardCrash", "ShardWorkerError",
           "get_shard_pool", "shutdown_shard_pools"]

#: ambient crash-retry budget for worker cells (runner: ``--cell-retries``)
_default_cell_retries = 1


def set_default_cell_retries(retries: int) -> None:
    """Install the process-wide crash-retry budget for sweeps.

    A cell that dies inside a pool worker is retried sequentially in the
    parent up to this many times (with logged exponential backoff between
    attempts) before the failure propagates.  ``0`` disables retries: the
    first worker crash raises.  Sweeps that pass an explicit ``retries=``
    override the ambient value.
    """
    global _default_cell_retries
    if retries < 0:
        raise ValueError(f"retry budget must be >= 0, got {retries}")
    _default_cell_retries = retries


def default_cell_retries() -> int:
    """The ambient crash-retry budget (default 1)."""
    return _default_cell_retries


def _retry_backoff(attempt: int) -> float:
    """Seconds to wait before retry ``attempt`` (1-based): 0.5, 1, 2, ... ."""
    return min(30.0, 0.5 * 2 ** (attempt - 1))


def default_workers(cap: int = 8) -> int:
    """A sensible worker count: physical parallelism, capped."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(cap, cores - 1))


def _log(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


class CellOutcome:
    """One evaluated (or cache-restored) grid cell.

    Attributes:
        value: the worker's return value, or a
            :class:`~repro.obs.capture.SweepTelemetry` wrapping it when a
            telemetry capture was active.
        digests: hexdigests of the :class:`DeterminismDigest` of every
            engine the cell constructed, in construction order (empty when
            digests were not requested or the cell builds no engines).
        wall: the cell's compute wall-clock seconds (a cache hit keeps
            the wall of the run that originally computed it).
        cached: whether the outcome was restored from the cell cache.
        retried: whether this outcome came from the sequential crash-retry
            after the cell died in a worker.
        attempts: total evaluations of this cell (1 = first try succeeded;
            a cache hit keeps the attempts of the run that computed it).
        resume_slot: the timeslot the cell's engine resumed from when an
            ambient checkpoint policy found a snapshot (None = from 0).
    """

    __slots__ = ("value", "digests", "wall", "cached", "retried",
                 "attempts", "resume_slot")

    def __init__(self, value: Any, digests: Tuple[str, ...] = (),
                 wall: float = 0.0, cached: bool = False):
        self.value = value
        self.digests = digests
        self.wall = wall
        self.cached = cached
        self.retried = False
        self.attempts = 1
        self.resume_slot: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"CellOutcome(wall={self.wall:.3f}s, cached={self.cached}, "
                f"digests={len(self.digests)})")


class _CellFailure:
    """A worker-side exception, shipped home as data (crash isolation)."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message


@contextmanager
def _digest_hooks(digests: List[str]):
    """Attach a DeterminismDigest to every engine built inside the block.

    The digest is a pure observer (see ``tests/test_golden_traces.py``), so
    enabling it never perturbs the simulated event stream.  Hexdigests are
    appended to ``digests`` in engine-construction order on exit.
    """
    from . import engine as _engine_mod

    collected = []

    def hook(engine):
        engine.enable_digest()
        collected.append(engine)

    _engine_mod._construction_hooks.append(hook)
    try:
        yield
    finally:
        _engine_mod._construction_hooks.remove(hook)
        # read the live digest at exit: a cell that calls enable_digest()
        # itself replaces the hook's instance, and the replacement is the
        # one that actually observed the run
        digests.extend(e.digest.hexdigest() for e in collected
                       if e.digest is not None)


def _invoke(fn: Callable, kwargs: Dict[str, Any],
            want_digest: bool) -> CellOutcome:
    """Run one cell, wrapping it for telemetry shipping and digests.

    Used identically by forked workers and by every sequential path (the
    ``workers <= 1`` case and the pool-unavailable fallback), so telemetry
    and digest behavior cannot diverge between dispatch modes.
    """
    from ..obs import capture as _capture
    from . import checkpoint as _checkpoint

    started = time.perf_counter()
    digests: List[str] = []
    outer = _capture.current_capture()
    with ExitStack() as stack:
        cell_capture = None
        if outer is not None:
            # Engines must register with a private per-cell capture (whose
            # bundle is shipped home and merged in grid order), never
            # directly with the ambient one — in a forked worker the
            # ambient capture is an unreachable copy, and in the parent a
            # double registration would duplicate every run.
            stack.enter_context(outer.suspended())
            cell_capture = stack.enter_context(_capture.TelemetryCapture())
        if want_digest:
            stack.enter_context(_digest_hooks(digests))
        # the checkpoint scope must be entered LAST so its construction
        # hook runs after capture/digest hooks: a restored engine's
        # observer state then lands on observers that are already attached
        scope = None
        policy = _checkpoint.default_policy()
        if policy is not None:
            key = policy.key_for(fn, kwargs)
            scope = stack.enter_context(policy.cell_scope(key))
        result = fn(**kwargs)
        if scope is not None:
            scope.discard()  # clean completion: snapshots no longer needed
    if cell_capture is not None:
        runs, runtimes, events = cell_capture.collect_bundle()
        result = _capture.SweepTelemetry(result, runs, runtimes, events)
    outcome = CellOutcome(result, tuple(digests),
                          time.perf_counter() - started)
    if scope is not None:
        outcome.resume_slot = scope.resume_slot
    return outcome


def _invoke_payload(payload):
    """Pool entry point: evaluate one indexed cell, never raise."""
    index, fn, kwargs, want_digest = payload
    try:
        return index, _invoke(fn, kwargs, want_digest)
    except Exception:
        return index, _CellFailure(traceback.format_exc())


def _warm_shared_tables(cells: Sequence[Dict[str, Any]]) -> None:
    """Pre-build the (strategy, n, h) schedule memo before forking.

    Workers inherit the parent's pages copy-on-write, so warming the
    immutable tables once here means no worker rebuilds them.  Cells name
    their size/tuning with the conventional ``n`` / ``h`` (or
    ``h_bulk``/``h_latency``) kwargs and their connection schedule with the
    ``schedule`` kwarg (default EBS); anything else simply stays cold.
    """
    from ..core.strategies import shared_schedule

    warmed = set()
    for cell in cells:
        n = cell.get("n")
        if not isinstance(n, int) or n > 65536:
            continue
        strategy = cell.get("schedule", "ebs")
        if not isinstance(strategy, str):
            continue
        for key in ("h", "h_bulk", "h_latency"):
            h = cell.get(key)
            if isinstance(h, int) and (strategy, n, h) not in warmed:
                warmed.add((strategy, n, h))
                try:
                    shared_schedule(strategy, n, h)
                except ValueError:
                    pass  # infeasible (or unknown) for this tuning


def sweep_cells(
    fn: Callable[..., Any],
    grid: Sequence[Dict[str, Any]],
    workers: Optional[int] = None,
    *,
    cache=None,
    label: Optional[str] = None,
    digest: bool = False,
    retries: Optional[int] = None,
) -> List[CellOutcome]:
    """Evaluate ``fn(**cell)`` for every cell; return rich outcomes.

    Args:
        fn: a picklable (module-level) function.
        grid: keyword-argument dictionaries, one per cell.
        workers: process count; ``None`` or ``<= 1`` runs sequentially.
        cache: a :class:`~repro.sim.cellcache.CellCache` (or a directory
            path for one); ``None`` uses the ambient default cache, which
            is off unless the runner installed one.
        label: tag for progress lines (defaults to ``fn``'s module name).
        digest: force per-engine determinism digests even without a cache.
        retries: crash-retry budget for cells that die inside a pool
            worker; ``None`` uses the ambient default
            (:func:`default_cell_retries`, normally 1).

    Returns:
        :class:`CellOutcome` objects in grid order.
    """
    from . import cellcache as _cellcache
    from ..obs.capture import current_capture

    cells = [dict(cell) for cell in grid]
    if cache is None:
        cache = _cellcache.default_cache()
    elif not isinstance(cache, _cellcache.CellCache):
        cache = _cellcache.CellCache(cache)
    want_digest = digest or cache is not None
    if workers is None:
        workers = 1
    if label is None:
        label = getattr(fn, "__module__", "cells").rsplit(".", 1)[-1]
    if retries is None:
        retries = default_cell_retries()
    elif retries < 0:
        raise ValueError(f"retry budget must be >= 0, got {retries}")

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    telemetry_active = current_capture() is not None
    pending: List[int] = []
    for i, cell in enumerate(cells):
        if cache is not None:
            keys[i] = cache.key_for(fn, cell, telemetry=telemetry_active)
            hit = cache.get(keys[i])
            if hit is not _cellcache.MISS:
                hit.cached = True
                outcomes[i] = hit
                continue
        pending.append(i)
    hits = len(cells) - len(pending)
    if hits and len(cells) > 1:
        _log(f"[sweep {label}] {hits}/{len(cells)} cells restored from "
             f"cache")

    def run_sequential(indices: List[int]) -> None:
        for count, i in enumerate(indices, 1):
            outcomes[i] = _invoke(fn, cells[i], want_digest)
            if len(indices) > 1:
                _log(f"[sweep {label}] cell {i + 1}/{len(cells)} done in "
                     f"{outcomes[i].wall:.1f}s "
                     f"({count}/{len(indices)} this run)")

    if workers <= 1 or len(pending) <= 1:
        run_sequential(pending)
    else:
        _warm_shared_tables([cells[i] for i in pending])
        payloads = [(i, fn, cells[i], want_digest) for i in pending]
        failed: List[Tuple[int, str]] = []
        try:
            # fork keeps imports cheap and shares the pre-warmed tables;
            # chunksize stays 1 because cells are whole simulations — the
            # IPC cost per dispatch is noise next to the cell itself
            context = multiprocessing.get_context("fork")
            pool_size = min(workers, len(pending))
            done = 0
            with context.Pool(processes=pool_size) as pool:
                for i, out in pool.imap_unordered(_invoke_payload, payloads):
                    if isinstance(out, _CellFailure):
                        failed.append((i, out.message))
                        plan = (f"will retry sequentially, budget "
                                f"{retries}" if retries
                                else "retries disabled")
                        _log(f"[sweep {label}] cell {i + 1}/{len(cells)} "
                             f"failed in a worker ({plan}):\n{out.message}")
                    else:
                        outcomes[i] = out
                        done += 1
                        _log(f"[sweep {label}] cell {i + 1}/{len(cells)} "
                             f"done in {out.wall:.1f}s "
                             f"({done}/{len(payloads)} this run)")
        except (OSError, ValueError) as exc:
            # a start method or the pool itself is unavailable (restricted
            # sandboxes); fall back sequentially WITHOUT losing telemetry —
            # the same _invoke wrapper runs in-process
            _log(f"[sweep {label}] process pool unavailable ({exc!r}); "
                 f"running remaining cells sequentially")
            run_sequential([i for i in pending if outcomes[i] is None])
            failed = []
        # crash isolation: failed cells are retried sequentially up to the
        # configured budget, with logged exponential backoff between
        # attempts (transient crashes — OOM kills, flaky sandboxes — often
        # clear once the pool's siblings are gone).  Exhausting the budget
        # propagates the last error like any sequential error would.  With
        # an ambient checkpoint policy each retry resumes from the dead
        # worker's last snapshot instead of recomputing from slot 0.
        for count, (i, message) in enumerate(failed, 1):
            if retries == 0:
                raise RuntimeError(
                    f"[sweep {label}] cell {i + 1}/{len(cells)} failed in "
                    f"a worker and the retry budget is 0:\n{message}"
                )
            out = None
            for attempt in range(1, retries + 1):
                backoff = _retry_backoff(attempt)
                _log(f"[sweep {label}] cell {i + 1}/{len(cells)} retry "
                     f"{attempt}/{retries} in {backoff:.1f}s")
                time.sleep(backoff)
                try:
                    out = _invoke(fn, cells[i], want_digest)
                except Exception:
                    if attempt == retries:
                        raise
                    _log(f"[sweep {label}] cell {i + 1}/{len(cells)} retry "
                         f"{attempt}/{retries} failed:\n"
                         f"{traceback.format_exc()}")
                    continue
                break
            out.retried = True
            out.attempts = 1 + attempt
            outcomes[i] = out
            origin = ("from scratch" if out.resume_slot is None
                      else f"resumed from slot {out.resume_slot}")
            _log(f"[sweep {label}] cell {i + 1}/{len(cells)} recovered on "
                 f"attempt {out.attempts} ({origin}) in {out.wall:.1f}s "
                 f"({count}/{len(failed)} crashed cells)")
    if cache is not None:
        for i in pending:
            out = outcomes[i]
            if out is not None and not out.cached:
                cache.put(keys[i], out)
    return outcomes


def _finalize(outcomes: List[CellOutcome]) -> List[Any]:
    """Merge shipped-home telemetry (grid order) and strip the wrappers.

    Each cell's wall clock (and cache provenance) is stamped into its
    runtime sidecar records on the way through, so the runner's
    ``<exp>.runtime.json`` carries per-cell timings while the
    deterministic ``<exp>.json`` stays byte-identical.
    """
    from ..obs.capture import SweepTelemetry, current_capture

    active = current_capture()
    values: List[Any] = []
    for out in outcomes:
        value = out.value
        if isinstance(value, SweepTelemetry):
            if active is not None:
                for entry in value.runtimes:
                    runtime = entry.get("runtime")
                    if isinstance(runtime, dict):
                        runtime["cell_wall_seconds"] = out.wall
                        runtime["cell_cached"] = out.cached
                        runtime["cell_retried"] = getattr(
                            out, "retried", False)
                        runtime["cell_attempts"] = getattr(
                            out, "attempts", 1)
                        runtime["cell_resume_slot"] = getattr(
                            out, "resume_slot", None)
                active.merge(value)
            values.append(value.result)
        else:
            values.append(value)
    return values


# ---------------------------------------------------------------------- #
# persistent shard worker pool (the "shard" engine backend's transport)
#
# Distinct from the per-cell sweep pool above: sweep workers each own a
# whole independent simulation, while shard workers *cooperate* on one
# simulation — they advance in lockstep and exchange per-slot mailbox
# messages with each other, so they need a persistent all-to-all queue
# mesh rather than an imap-style task pool.

class ShardCrash(RuntimeError):
    """A shard worker process died mid-segment (e.g. SIGKILL/OOM).

    The parent's scatter is read-only until the gather commits, so the
    caller can respawn the pool and re-dispatch the identical segment.
    """


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the worker-side traceback."""


class ShardPool:
    """``count`` persistent fork-context worker processes plus mailboxes.

    Transport layout:

    * one task queue per worker (parent -> worker segment dispatch),
    * one shared result queue (workers -> parent),
    * one mailbox queue per worker, written by every *peer* worker —
      the deterministic per-slot mailbox transport of the shard backend.
      Messages are tagged ``(segment, round, source shard)``; ordering is
      restored receiver-side from the tags, so queue interleaving (which
      is scheduler-dependent) never reaches the simulation.

    The pool is generation-based: :meth:`respawn` tears down every process
    *and* every queue and builds a fresh generation, so no stale message
    from a crashed segment can ever leak into a retry.
    """

    def __init__(self, count: int, target: Callable):
        if count < 2:
            raise ValueError(f"a shard pool needs >= 2 workers, got {count}")
        self.count = count
        self._target = target
        self._ctx = multiprocessing.get_context("fork")
        self._segment = 0
        self._spawn()

    def _spawn(self) -> None:
        ctx = self._ctx
        self.task_queues = [ctx.Queue() for _ in range(self.count)]
        self.result_queue = ctx.Queue()
        self.mail_queues = [ctx.Queue() for _ in range(self.count)]
        self.procs = []
        for idx in range(self.count):
            proc = ctx.Process(
                target=self._target,
                args=(idx, self.count, self.task_queues[idx],
                      self.result_queue, self.mail_queues),
                daemon=True,
                name=f"repro-shard-{idx}",
            )
            proc.start()
            self.procs.append(proc)
        #: table-payload keys already shipped to this generation's workers
        self.shipped_tables = set()

    def alive(self) -> bool:
        return all(proc.is_alive() for proc in self.procs)

    def respawn(self) -> None:
        """Kill the current generation and start a fresh one."""
        self.close()
        self._spawn()

    def close(self) -> None:
        for proc in getattr(self, "procs", ()):
            if proc.is_alive():
                proc.terminate()
        for proc in getattr(self, "procs", ()):
            proc.join(timeout=5.0)
        for queue in (getattr(self, "task_queues", [])
                      + getattr(self, "mail_queues", [])
                      + [getattr(self, "result_queue", None)]):
            if queue is None:
                continue
            queue.cancel_join_thread()
            queue.close()
        self.procs = []

    def run_segment(self, tasks: Sequence[Any], timeout: float = 600.0):
        """Dispatch one task per worker; gather ``count`` results.

        Raises :class:`ShardCrash` if any worker process dies before all
        results arrive and :class:`ShardWorkerError` if a worker raised.
        Results come back ordered by shard index.
        """
        if len(tasks) != self.count:
            raise ValueError(
                f"expected {self.count} shard tasks, got {len(tasks)}"
            )
        self._segment += 1
        segment = self._segment
        for queue, task in zip(self.task_queues, tasks):
            queue.put(("run", segment, task))
        results: List[Any] = [None] * self.count
        missing = self.count
        deadline = time.monotonic() + timeout
        while missing:
            try:
                idx, seg, kind, payload = self.result_queue.get(timeout=0.25)
            except Exception:  # queue.Empty (also raised via mp internals)
                if not self.alive():
                    raise ShardCrash(
                        "a shard worker process died mid-segment"
                    ) from None
                if time.monotonic() > deadline:
                    raise ShardCrash(
                        f"shard segment timed out after {timeout:.0f}s"
                    ) from None
                continue
            if seg != segment:
                continue  # stale message from an abandoned segment
            if kind == "error":
                raise ShardWorkerError(
                    f"shard worker {idx} raised:\n{payload}"
                )
            results[idx] = payload
            missing -= 1
        return results


#: live pools keyed by (worker count, target qualname); reused across
#: segments and engines so worker spawn cost amortizes over a whole run
_SHARD_POOLS: Dict[Tuple[int, str], ShardPool] = {}


def get_shard_pool(count: int, target: Callable) -> ShardPool:
    """The persistent :class:`ShardPool` for ``count`` workers (cached)."""
    key = (count, f"{target.__module__}.{target.__qualname__}")
    pool = _SHARD_POOLS.get(key)
    if pool is None or not pool.alive():
        if pool is not None:
            pool.close()
        pool = ShardPool(count, target)
        _SHARD_POOLS[key] = pool
    return pool


def shutdown_shard_pools() -> None:
    """Terminate every cached shard pool (atexit + tests)."""
    for pool in _SHARD_POOLS.values():
        pool.close()
    _SHARD_POOLS.clear()


atexit.register(shutdown_shard_pools)


def sweep(
    fn: Callable[..., Any],
    grid: Sequence[Dict[str, Any]],
    workers: Optional[int] = None,
    *,
    cache=None,
    label: Optional[str] = None,
    retries: Optional[int] = None,
) -> List[Any]:
    """Evaluate ``fn(**cell)`` for every cell of ``grid``.

    Args:
        fn: a picklable (module-level) function.
        grid: keyword-argument dictionaries, one per cell.
        workers: process count; ``None`` or ``<= 1`` runs sequentially.
        cache: optional cell cache (see :func:`sweep_cells`).
        label: tag for progress lines.
        retries: crash-retry budget (see :func:`sweep_cells`).

    Returns:
        Results in the same order as ``grid``.
    """
    return _finalize(sweep_cells(fn, grid, workers,
                                 cache=cache, label=label, retries=retries))
