"""Seed-stable event digest for behavior-equivalence testing.

The hot path of the simulator is rewritten from time to time for speed; the
contract of every such rewrite is that it is *event-identical*: the same
cells are delivered, dropped and lost at the same timeslots, and the same
tokens cross the same links, for any seed.  :class:`DeterminismDigest` folds
each of those events into a single 64-bit running hash (FNV-1a over the
event's integer fields), so two runs are event-identical iff their digests
match — without storing the full event trace.

The digest is an *observer*: attaching one to an engine
(:meth:`~repro.sim.engine.Engine.enable_digest`) must never change simulated
behavior.  Golden digests recorded before an optimization therefore pin the
optimized engine to the reference, bit for bit (see
``tests/test_golden_traces.py``).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["DeterminismDigest"]

_MASK = (1 << 64) - 1
_PRIME = 0x100000001B3  # FNV-64 prime
_BASIS = 0xCBF29CE484222325  # FNV-64 offset basis

# event kind tags, folded first so event streams cannot alias across kinds
_EV_DELIVERY = 1
_EV_DROP = 2
_EV_WIRE_LOSS = 3
_EV_TOKENS = 4


class DeterminismDigest:
    """Folds delivery/drop/token events into one seed-stable 64-bit hash.

    Attributes:
        value: the running 64-bit hash.
        events: number of events folded so far (a cheap cross-check: two
            identical digests with different event counts would indicate a
            hash collision rather than equivalence).
    """

    __slots__ = ("value", "events")

    def __init__(self) -> None:
        self.value = _BASIS
        self.events = 0

    def _fold(self, ints: Iterable[int]) -> None:
        v = self.value
        for x in ints:
            v = ((v ^ (x & _MASK)) * _PRIME) & _MASK
        self.value = v
        self.events += 1

    # ------------------------------------------------------------------ #
    # event hooks (called from the engine / node when a digest is attached)

    def on_delivery(self, cell, t: int) -> None:
        """A payload cell reached its destination at timeslot ``t``."""
        self._fold((_EV_DELIVERY, cell.flow_id, cell.seq, cell.src,
                    cell.dst, cell.hops, t))

    def on_drop(self, cell, t: int) -> None:
        """A payload cell was dropped inside a node at timeslot ``t``."""
        self._fold((_EV_DROP, cell.flow_id, cell.seq, cell.src,
                    cell.dst, t))

    def on_wire_loss(self, cell, t: int) -> None:
        """A payload cell was lost on the wire at timeslot ``t``."""
        self._fold((_EV_WIRE_LOSS, cell.flow_id, cell.seq, cell.src,
                    cell.dst, t))

    def on_tokens(self, sender: int, receiver: int, tokens, t: int) -> None:
        """One header's worth of tokens left ``sender`` at timeslot ``t``."""
        acc = [_EV_TOKENS, sender, receiver, t]
        for token in tokens:
            acc.append(token.dest)
            acc.append(token.sprays)
            acc.append(token.kind)
        self._fold(acc)

    # ------------------------------------------------------------------ #

    def hexdigest(self) -> str:
        """The current hash as a fixed-width hex string."""
        return f"{self.value:016x}"

    def state_dict(self) -> dict:
        """Running hash and event count (checkpoint encoding)."""
        return {"value": self.value, "events": self.events}

    def load_state(self, state: dict) -> None:
        self.value = state["value"]
        self.events = state["events"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"DeterminismDigest({self.hexdigest()}, events={self.events})"
