"""Receiver-side reorder buffers (paper Fig. 6, "reorder queues").

Shale's VLB routing delivers a flow's cells over many interleaved paths, so
they arrive out of order; the end host holds early arrivals in a per-flow
reorder queue until the in-order prefix can be released to the application.
The FPGA prototype dedicates DRAM to these queues, so their occupancy is a
real resource: this model tracks, per flow and per node, how deep the
reorder buffer gets and how long cells sit in it.

The simulator's FCT accounting intentionally uses last-cell arrival (as the
paper's does); attaching a :class:`ReorderTracker` adds the in-order
delivery view on top without changing any engine behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

__all__ = ["ReorderBuffer", "ReorderTracker"]


class ReorderBuffer:
    """In-order release tracking for one flow at its receiver."""

    __slots__ = ("next_seq", "_held", "peak_held", "released",
                 "_held_since", "max_hold_time")

    def __init__(self) -> None:
        #: next sequence number the application is waiting for
        self.next_seq = 0
        self._held: Set[int] = set()
        self._held_since: Dict[int, int] = {}
        self.peak_held = 0
        self.released = 0
        self.max_hold_time = 0

    def accept(self, seq: int, t: int) -> List[int]:
        """Accept cell ``seq`` at time ``t``; return newly releasable seqs.

        Duplicate and already-released sequence numbers are ignored (NDP
        retransmissions can produce duplicates).
        """
        if seq < self.next_seq or seq in self._held:
            return []
        if seq != self.next_seq:
            self._held.add(seq)
            self._held_since[seq] = t
            if len(self._held) > self.peak_held:
                self.peak_held = len(self._held)
            return []
        # in-order arrival: release it plus any contiguous held run
        released = [seq]
        self.next_seq = seq + 1
        while self.next_seq in self._held:
            self._held.remove(self.next_seq)
            held_at = self._held_since.pop(self.next_seq)
            hold = t - held_at
            if hold > self.max_hold_time:
                self.max_hold_time = hold
            released.append(self.next_seq)
            self.next_seq += 1
        self.released += len(released)
        return released

    @property
    def held(self) -> int:
        """Cells currently parked out of order."""
        return len(self._held)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ReorderBuffer(next={self.next_seq}, held={self.held}, "
            f"peak={self.peak_held})"
        )


class ReorderTracker:
    """Tracks reorder-buffer occupancy across all flows at all nodes.

    Attach to an engine and feed it deliveries::

        tracker = ReorderTracker.attach(engine)
        engine.run()
        print(tracker.peak_occupancy_per_node())

    Attachment wraps the engine's delivery hook, so no engine code changes.
    """

    def __init__(self) -> None:
        self._buffers: Dict[int, ReorderBuffer] = {}
        #: per-receiver total held cells, updated on every accept
        self._node_held: Dict[int, int] = {}
        self.peak_node_held: Dict[int, int] = {}
        self._flow_dst: Dict[int, int] = {}

    @classmethod
    def attach(cls, engine) -> "ReorderTracker":
        """Install on ``engine`` via its delivery hook."""
        tracker = cls()
        engine.delivery_hook = tracker.on_delivery
        return tracker

    def on_delivery(self, cell, t: int) -> None:
        """Record one delivered cell."""
        buffer = self._buffers.get(cell.flow_id)
        if buffer is None:
            buffer = ReorderBuffer()
            self._buffers[cell.flow_id] = buffer
            self._flow_dst[cell.flow_id] = cell.dst
        before = buffer.held
        buffer.accept(cell.seq, t)
        delta = buffer.held - before
        if delta:
            dst = cell.dst
            held = self._node_held.get(dst, 0) + delta
            self._node_held[dst] = held
            if held > self.peak_node_held.get(dst, 0):
                self.peak_node_held[dst] = held

    # ------------------------------------------------------------------ #
    # queries

    def buffer(self, flow_id: int) -> Optional[ReorderBuffer]:
        """The reorder buffer of one flow (None if nothing delivered yet)."""
        return self._buffers.get(flow_id)

    def peak_flow_occupancy(self) -> int:
        """Deepest any single flow's reorder buffer ever got."""
        return max((b.peak_held for b in self._buffers.values()), default=0)

    def peak_occupancy_per_node(self) -> Dict[int, int]:
        """Peak total reorder cells held per receiving node."""
        return dict(self.peak_node_held)

    def max_hold_time(self) -> int:
        """Longest any cell waited in a reorder buffer (timeslots)."""
        return max(
            (b.max_hold_time for b in self._buffers.values()), default=0
        )

    def total_released(self) -> int:
        """Cells released in order across all flows."""
        return sum(b.released for b in self._buffers.values())
