"""Flow lifecycle management for the simulator.

A *flow* is a unidirectional transfer of a fixed number of cells between two
end hosts.  Flows are injected by a workload generator, admit cells into the
network according to the active congestion-control policy, and complete when
the receiver has every cell.  The :class:`FlowTable` owns all flow state and
produces the per-flow records the FCT analysis consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["Flow", "FlowRecord", "FlowTable"]


class Flow:
    """An active flow at its sender.

    Attributes:
        flow_id: unique id.
        src / dst: endpoint node ids.
        size_cells: total cells to deliver.
        size_bytes: original size in bytes (for flow-size bucketing).
        arrival: timeslot at which the flow arrived at the sender.
        sent: cells admitted to the network so far.
        delivered: cells received by the destination so far.
        schedule_class: sub-schedule index for interleaved runs.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size_cells",
        "size_bytes",
        "arrival",
        "sent",
        "delivered",
        "completed_at",
        "schedule_class",
        "credit",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size_cells: int,
        arrival: int,
        size_bytes: Optional[int] = None,
        schedule_class: int = 0,
    ):
        if size_cells < 1:
            raise ValueError("flow must contain at least one cell")
        if src == dst:
            raise ValueError("flow source and destination must differ")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_cells = size_cells
        self.size_bytes = size_bytes if size_bytes is not None else size_cells * 244
        self.arrival = arrival
        self.sent = 0
        self.delivered = 0
        self.completed_at: Optional[int] = None
        self.schedule_class = schedule_class
        #: transport-level send credit (used by RD/NDP/ISD policies)
        self.credit = 0.0

    @property
    def remaining(self) -> int:
        """Cells not yet admitted to the network."""
        return self.size_cells - self.sent

    @property
    def done_sending(self) -> bool:
        return self.sent >= self.size_cells

    @property
    def complete(self) -> bool:
        return self.delivered >= self.size_cells

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Flow({self.flow_id}: {self.src}->{self.dst}, "
            f"{self.delivered}/{self.size_cells} cells)"
        )

    def state(self) -> tuple:
        """All fields as a flat tuple (checkpoint encoding)."""
        return (
            self.flow_id, self.src, self.dst, self.size_cells,
            self.size_bytes, self.arrival, self.sent, self.delivered,
            self.completed_at, self.schedule_class, self.credit,
        )

    @classmethod
    def from_state(cls, state: tuple) -> "Flow":
        flow = cls.__new__(cls)
        (flow.flow_id, flow.src, flow.dst, flow.size_cells,
         flow.size_bytes, flow.arrival, flow.sent, flow.delivered,
         flow.completed_at, flow.schedule_class, flow.credit) = state
        return flow


class FlowRecord:
    """Immutable record of a completed flow, for analysis."""

    __slots__ = ("flow_id", "src", "dst", "size_cells", "size_bytes",
                 "arrival", "completed_at")

    def __init__(self, flow: Flow):
        if flow.completed_at is None:
            raise ValueError("flow has not completed")
        self.flow_id = flow.flow_id
        self.src = flow.src
        self.dst = flow.dst
        self.size_cells = flow.size_cells
        self.size_bytes = flow.size_bytes
        self.arrival = flow.arrival
        self.completed_at = flow.completed_at

    @property
    def fct(self) -> int:
        """Flow completion time in timeslots."""
        return self.completed_at - self.arrival

    def state(self) -> tuple:
        """All fields as a flat tuple (checkpoint encoding)."""
        return (
            self.flow_id, self.src, self.dst, self.size_cells,
            self.size_bytes, self.arrival, self.completed_at,
        )

    @classmethod
    def from_state(cls, state: tuple) -> "FlowRecord":
        # bypass __init__, which demands a live completed Flow
        record = cls.__new__(cls)
        (record.flow_id, record.src, record.dst, record.size_cells,
         record.size_bytes, record.arrival, record.completed_at) = state
        return record

    def normalized_fct(self, propagation_delay: int) -> float:
        """Size-normalised FCT (paper Section 5).

        The ideal single-hop line-rate transfer of ``F`` cells with
        propagation delay ``P`` takes ``F + P`` slots; the normalised FCT is
        the measured FCT divided by that ideal.
        """
        ideal = self.size_cells + propagation_delay
        return self.fct / ideal


class FlowTable:
    """Registry of all flows in a run, active and completed."""

    def __init__(self) -> None:
        self._active: Dict[int, Flow] = {}
        self.completed: List[FlowRecord] = []
        self._next_id = 0
        #: per-destination count of flows currently being sent (for ISD)
        self.incast_degree: Dict[int, int] = {}

    def new_flow(
        self,
        src: int,
        dst: int,
        size_cells: int,
        arrival: int,
        size_bytes: Optional[int] = None,
        schedule_class: int = 0,
    ) -> Flow:
        """Create, register and return a new flow."""
        flow = Flow(
            self._next_id, src, dst, size_cells, arrival,
            size_bytes=size_bytes, schedule_class=schedule_class,
        )
        self._next_id += 1
        self._active[flow.flow_id] = flow
        self.incast_degree[dst] = self.incast_degree.get(dst, 0) + 1
        return flow

    def get(self, flow_id: int) -> Optional[Flow]:
        """Look up an active flow (None once completed)."""
        return self._active.get(flow_id)

    def record_delivery(self, flow_id: int, t: int) -> Optional[FlowRecord]:
        """Count one delivered cell; finalise the flow if that was the last.

        Returns the completion record when the flow finishes, else None.
        """
        flow = self._active.get(flow_id)
        if flow is None:
            return None
        flow.delivered += 1
        if flow.complete:
            return self.finalize(flow, t)
        return None

    def finalize(self, flow: Flow, t: int) -> FlowRecord:
        """Complete ``flow`` at time ``t`` and return its record.

        Callers must have already counted the final delivery (``delivered``
        at or past ``size_cells``); the simulator's delivery hot path inlines
        that counting and only calls here on the completing cell.
        """
        flow.completed_at = t
        record = FlowRecord(flow)
        self.completed.append(record)
        del self._active[flow.flow_id]
        remaining = self.incast_degree.get(flow.dst, 1) - 1
        if remaining:
            self.incast_degree[flow.dst] = remaining
        else:
            self.incast_degree.pop(flow.dst, None)
        return record

    def active_flows(self) -> Iterable[Flow]:
        """Iterate flows that have not completed."""
        return self._active.values()

    @property
    def active_count(self) -> int:
        return len(self._active)

    def flows_to(self, dst: int) -> int:
        """Number of active flows destined to ``dst`` (ISD's global view)."""
        return self.incast_degree.get(dst, 0)

    def state_dict(self) -> dict:
        """The whole registry as plain data (checkpoint encoding)."""
        return {
            "active": [flow.state() for flow in self._active.values()],
            "completed": [record.state() for record in self.completed],
            "next_id": self._next_id,
            "incast": sorted(self.incast_degree.items()),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.

        Active flows are rebuilt as fresh objects in their original
        registration order; callers holding flow references (node
        ``local_flows`` lists) must re-resolve them through :meth:`get`.
        """
        self._active.clear()
        for flow_state in state["active"]:
            flow = Flow.from_state(tuple(flow_state))
            self._active[flow.flow_id] = flow
        self.completed[:] = [
            FlowRecord.from_state(tuple(s)) for s in state["completed"]
        ]
        self._next_id = state["next_id"]
        self.incast_degree.clear()
        self.incast_degree.update(dict(state["incast"]))
