"""End-of-run manifests: what ran, and how fast.

A manifest answers "what produced this artifact?" without re-reading code:
the full configuration, the run shape, and the machine-side facts (wall
time, slots/sec, peak RSS, versions).  It is split in two:

* ``run`` — fully deterministic for a given config + seed; safe to embed in
  artifacts that must be byte-identical across repeated runs.
* ``runtime`` — volatile measurements (wall clock, RSS, versions); written
  to a sidecar by the experiment runner so the main artifact stays
  reproducible.
"""

from __future__ import annotations

import platform
import sys
from typing import Dict, Optional

import numpy as np

from .serialize import to_jsonable

__all__ = ["run_manifest"]

#: manifest schema version (bump when fields change meaning)
SCHEMA = 1


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to KiB
    if sys.platform == "darwin":  # pragma: no cover
        usage //= 1024
    return int(usage)


def run_manifest(engine, wall_seconds: Optional[float] = None
                 ) -> Dict[str, object]:
    """Build the manifest for ``engine``'s run so far.

    Args:
        engine: a (finished or running) :class:`~repro.sim.engine.Engine`.
        wall_seconds: wall-clock duration of the run, when the caller timed
            it; enables the ``slots_per_sec`` runtime field.

    Returns:
        ``{"run": {...deterministic...}, "runtime": {...volatile...}}``.
    """
    config = engine.config
    manager = engine.failure_manager
    run: Dict[str, object] = {
        "schema": SCHEMA,
        "n": config.n,
        "h": config.h,
        "seed": config.seed,
        "congestion_control": config.congestion_control,
        "backend": config.backend,
        "backend_effective": engine.backend_effective,
        "slots": engine.t,
        "epoch_length": engine.schedule.epoch_length,
        "config": to_jsonable(config),
        "failure_manager": type(manager).__name__ if manager else None,
        "monitor": type(engine.monitor).__name__ if engine.monitor else None,
        "telemetry": engine.telemetry is not None,
        "events": engine.events.count if engine.events is not None else None,
    }
    runtime: Dict[str, object] = {
        "wall_seconds": wall_seconds,
        "slots_per_sec": (
            engine.t / wall_seconds
            if wall_seconds and wall_seconds > 0 else None
        ),
        "peak_rss_kb": _peak_rss_kb(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }
    if engine.profiler is not None:
        runtime["profile"] = engine.profiler.report()
    return {"run": run, "runtime": runtime}
