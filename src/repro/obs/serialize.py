"""Deterministic JSON helpers shared by the telemetry artifacts.

Canonical form: sorted keys, no whitespace, plain ASCII.  Two runs with the
same seed must produce byte-identical artifacts, so every writer in this
package funnels through :func:`canonical_json`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

__all__ = ["canonical_json", "to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into plain JSON-serialisable types.

    Handles dataclasses (experiment results, :class:`SimConfig`), numpy
    scalars and arrays, and the usual containers.  Unknown objects fall back
    to ``repr`` so an artifact write never crashes a finished experiment.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [to_jsonable(x) for x in items]
    return repr(obj)


def canonical_json(obj: Any) -> str:
    """``obj`` as canonical JSON (sorted keys, compact, ASCII)."""
    return json.dumps(
        to_jsonable(obj), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True, allow_nan=False,
    )
