"""Ambient telemetry capture for experiment runs.

The experiment modules build their engines internally, so the runner cannot
instrument them directly.  :class:`TelemetryCapture` is the ambient hook:
inside a ``with TelemetryCapture() as cap:`` block, every
:class:`~repro.sim.engine.Engine` constructed anywhere in the process is
automatically fitted with a :class:`~repro.obs.timeseries.TimeSeriesRecorder`
and an in-memory :class:`~repro.obs.events.EventLog`; ``cap.collect()``
then yields one payload per run (manifest, summary, series) ready for the
runner's ``--telemetry`` artifacts.

:func:`repro.sim.parallel.sweep` cooperates across process boundaries:
workers forked while a capture is active wrap their cells in a private
capture and ship the collected payloads home with the cell results
(:class:`SweepTelemetry`), which the parent merges in grid order — so
telemetry from parallel sweeps is as deterministic as from sequential runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..sim import engine as _engine_mod
from .events import EventLog, RingSink
from .manifest import run_manifest
from .timeseries import TimeSeriesRecorder

__all__ = ["TelemetryCapture", "SweepTelemetry", "current_capture"]

#: the innermost active capture (None outside any capture context)
_current: Optional["TelemetryCapture"] = None


def current_capture() -> Optional["TelemetryCapture"]:
    """The active :class:`TelemetryCapture`, or None."""
    return _current


class SweepTelemetry:
    """A sweep cell's result bundled with its collected telemetry.

    Built in :func:`repro.sim.parallel.sweep` workers (where the parent's
    capture object is unreachable) and unpacked by the parent, which keeps
    the result and merges the telemetry into its own capture.
    """

    __slots__ = ("result", "runs", "runtimes", "events")

    def __init__(self, result, runs, runtimes, events):
        self.result = result
        self.runs = runs
        self.runtimes = runtimes
        self.events = events


class TelemetryCapture:
    """Collects telemetry from every engine built while active.

    Args:
        series: attach a :class:`TimeSeriesRecorder` to each new engine
            (skipped when the engine already has one).
        events: attach an in-memory event ring to each new engine (added as
            an extra sink when the engine already has an event log).
    """

    def __init__(self, series: bool = True, events: bool = True):
        self.series = series
        self.events = events
        # (engine, recorder, ring, wall-clock at registration)
        self._live: List[Tuple[object, object, object, float]] = []
        self._foreign: List[SweepTelemetry] = []
        self._previous: Optional["TelemetryCapture"] = None

    # ------------------------------------------------------------------ #
    # context management

    def __enter__(self) -> "TelemetryCapture":
        global _current
        self._previous = _current
        _current = self
        _engine_mod._construction_hooks.append(self._on_engine)
        return self

    def __exit__(self, *exc) -> None:
        global _current
        _current = self._previous
        self._previous = None
        try:
            _engine_mod._construction_hooks.remove(self._on_engine)
        except ValueError:  # pragma: no cover - hook list externally cleared
            pass

    # ------------------------------------------------------------------ #
    # engine registration (called from Engine.__init__ via the hook list)

    def _on_engine(self, engine) -> None:
        recorder = engine.telemetry
        if recorder is None and self.series:
            recorder = TimeSeriesRecorder().attach(engine)
        ring = None
        if self.events:
            ring = RingSink()
            if engine.events is None:
                EventLog([ring]).attach(engine)
            else:
                engine.events.add_sink(ring)
        self._live.append((engine, recorder, ring, time.perf_counter()))

    def merge(self, item: SweepTelemetry) -> None:
        """Fold telemetry shipped home by a sweep worker into this capture."""
        self._foreign.append(item)

    @contextmanager
    def suspended(self):
        """Temporarily stop registering newly built engines with this capture.

        Used by :func:`repro.sim.parallel.sweep` when it evaluates a cell
        in-process (sequential mode, or the pool-unavailable fallback) while
        this capture is active: the cell runs under its own private
        :class:`TelemetryCapture` whose bundle is merged in grid order, and
        suspending the outer hook prevents the same engines from *also*
        registering here out of order.
        """
        hooked = self._on_engine in _engine_mod._construction_hooks
        if hooked:
            _engine_mod._construction_hooks.remove(self._on_engine)
        try:
            yield
        finally:
            if hooked:
                _engine_mod._construction_hooks.append(self._on_engine)

    # ------------------------------------------------------------------ #
    # collection

    def _local(self):
        runs: List[Dict] = []
        runtimes: List[Dict] = []
        events: List[Dict] = []
        for i, (engine, recorder, ring, wall0) in enumerate(self._live):
            wall = time.perf_counter() - wall0
            manifest = run_manifest(engine, wall_seconds=wall)
            run: Dict[str, object] = {
                "index": i,
                "manifest": manifest["run"],
                "summary": engine.metrics.summary(),
            }
            if recorder is not None:
                run["series"] = recorder.to_dict()
            runtime_entry: Dict[str, object] = {
                "index": i, "runtime": manifest["runtime"]}
            if engine.monitor is not None:
                run["monitor"] = engine.monitor.report()
                # one code path for scorecards and ad-hoc runs: the sidecar
                # carries the same reduced metrics scenario scoring uses,
                # and the full report lands in the event stream (the emit
                # happens before the ring is drained below)
                runtime_entry["resilience"] = \
                    engine.monitor.scorecard_metrics()
                engine.monitor.emit_report_event()
            runs.append(run)
            runtimes.append(runtime_entry)
            if ring is not None:
                for record in ring.records:
                    events.append({
                        "run": i,
                        "t": record["t"],
                        "kind": record["kind"],
                        "payload": record["payload"],
                    })
        return runs, runtimes, events

    def collect_bundle(self):
        """All captured telemetry: ``(runs, runtimes, events)``.

        Runs are indexed in capture order — local registrations first, then
        merged sweep-worker bundles in merge (grid) order — and event
        records carry the global run index of the run that emitted them.
        """
        all_runs: List[Dict] = []
        all_runtimes: List[Dict] = []
        all_events: List[Dict] = []

        def extend(runs, runtimes, events):
            base = len(all_runs)
            for run in runs:
                run = dict(run)
                run["index"] = base + run["index"]
                all_runs.append(run)
            for runtime in runtimes:
                runtime = dict(runtime)
                runtime["index"] = base + runtime["index"]
                all_runtimes.append(runtime)
            for event in events:
                event = dict(event)
                event["run"] = base + event["run"]
                all_events.append(event)

        extend(*self._local())
        for item in self._foreign:
            extend(item.runs, item.runtimes, item.events)
        return all_runs, all_runtimes, all_events

    def collect(self) -> List[Dict]:
        """Deterministic per-run payloads (manifest, summary, series)."""
        return self.collect_bundle()[0]

    def collect_runtime(self) -> List[Dict]:
        """Volatile per-run payloads (wall clock, RSS, versions)."""
        return self.collect_bundle()[1]

    def collect_events(self) -> List[Dict]:
        """All event records, stamped with their global run index."""
        return self.collect_bundle()[2]
