"""Structured run events: one ``(t, kind, payload)`` stream, pluggable sinks.

Before this module the simulator's event streams were ad hoc: the failure
manager kept tuples in lists, the run monitor kept violation dicts, flow
lifecycle was only visible through the flow table.  :class:`EventLog`
unifies them: producers call ``emit(t, kind, payload)`` and every attached
sink sees the same record.  Serialisation is canonical (sorted keys, compact
separators), so two runs with the same seed write byte-identical JSONL.

Event kinds currently emitted by the instrumented simulator:

``flow_start`` / ``flow_end``
    flow admitted at its sender / last cell delivered (payload carries the
    flow id, endpoints, size and — on completion — the FCT).
``conservation_violation`` / ``stall``
    :class:`~repro.sim.monitor.RunMonitor` findings, as they happen.
``failure_event`` / ``detection`` / ``revalidation``
    :class:`~repro.failures.manager.FailureManager` activity: injected
    fail/recover events, missed-cell and deafness detections, and cell-driven
    link re-validations.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

__all__ = ["EventLog", "FileSink", "RingSink", "CallbackSink",
           "encode_event", "read_jsonl"]


def encode_event(record: Dict[str, object]) -> str:
    """One event as a canonical JSON line (no trailing newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def read_jsonl(path) -> List[Dict[str, object]]:
    """Parse a JSONL event file back into records (round-trip helper)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class FileSink:
    """Appends each event as one JSON line to ``path``.

    The file is opened lazily on the first event and truncated then, so an
    engine that emits nothing leaves no file behind.
    """

    def __init__(self, path):
        self.path = path
        self._fh = None

    def write(self, record: Dict[str, object]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w")
        self._fh.write(encode_event(record))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class RingSink:
    """Keeps the last ``capacity`` events in memory (all of them when None)."""

    def __init__(self, capacity: Optional[int] = None):
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)

    def write(self, record: Dict[str, object]) -> None:
        self._ring.append(record)

    @property
    def records(self) -> List[Dict[str, object]]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class CallbackSink:
    """Forwards every event record to ``fn(record)``."""

    def __init__(self, fn: Callable[[Dict[str, object]], None]):
        self._fn = fn

    def write(self, record: Dict[str, object]) -> None:
        self._fn(record)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class EventLog:
    """The structured event stream of one run.

    Attach to an engine with :meth:`attach` (or assign to ``engine.events``);
    producers inside the simulator emit through it only when one is attached,
    so the un-instrumented hot path pays a single ``is None`` check.

    Args:
        sinks: initial sinks; more can be added with :meth:`add_sink`.
    """

    __slots__ = ("_sinks", "count")

    def __init__(self, sinks: Sequence[object] = ()):
        self._sinks = list(sinks)
        #: events emitted so far (cheap determinism cross-check)
        self.count = 0

    def attach(self, engine) -> "EventLog":
        """Install this log on ``engine`` and return it."""
        engine.events = self
        # adopt event-log state from a restored checkpoint, if the engine
        # is carrying some and no log was attached when it restored
        pending = engine._pending_restore
        if pending and "events" in pending:
            self.load_state(pending.pop("events"))
        return self

    def state_dict(self) -> dict:
        """Event count plus any ring-buffered records (checkpoint encoding).

        File and callback sinks have already pushed their events out; only
        in-memory rings can (and must) be reconstructed on restore.
        """
        ring = None
        for sink in self._sinks:
            if isinstance(sink, RingSink):
                ring = [dict(r) for r in sink.records]
                break
        return {"count": self.count, "ring": ring}

    def load_state(self, state: dict) -> None:
        self.count = state["count"]
        if state["ring"] is not None:
            for sink in self._sinks:
                if isinstance(sink, RingSink):
                    sink._ring.clear()
                    sink._ring.extend(dict(r) for r in state["ring"])
                    break

    def add_sink(self, sink) -> "EventLog":
        self._sinks.append(sink)
        return self

    def emit(self, t: int, kind: str, payload: Dict[str, object]) -> None:
        """Record one event at timeslot ``t``."""
        record = {"t": t, "kind": kind, "payload": payload}
        self.count += 1
        for sink in self._sinks:
            sink.write(record)

    def close(self) -> None:
        """Close every sink (flushes file sinks)."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
