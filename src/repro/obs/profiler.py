"""Per-section wall-clock accounting of the engine step.

When attached (``engine.enable_profiler()``), the engine runs a timed twin
of its step loop that brackets each section — failure-manager advance,
delivery, injection, TX, metrics sampling, monitor — with a monotonic
clock.  When not attached the engine runs its normal step, so the feature
costs nothing unless asked for (the run loop dispatches once, not per
slot).
"""

from __future__ import annotations

import time
from typing import Dict

__all__ = ["StepProfiler"]

#: engine step sections, in execution order
SECTIONS = ("faults", "deliver", "inject", "tx", "sample", "monitor")


class StepProfiler:
    """Accumulates wall-clock time per engine-step section.

    Attributes:
        steps: timed steps so far.
        totals: section name -> cumulative seconds.
    """

    __slots__ = ("steps", "totals", "clock")

    def __init__(self) -> None:
        self.steps = 0
        self.totals: Dict[str, float] = {name: 0.0 for name in SECTIONS}
        #: the clock used to bracket sections (monotonic, sub-microsecond)
        self.clock = time.perf_counter

    def add(self, faults: float, deliver: float, inject: float,
            tx: float, sample: float, monitor: float) -> None:
        """Fold one step's section durations (called by the engine)."""
        totals = self.totals
        totals["faults"] += faults
        totals["deliver"] += deliver
        totals["inject"] += inject
        totals["tx"] += tx
        totals["sample"] += sample
        totals["monitor"] += monitor
        self.steps += 1

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds across all sections."""
        return sum(self.totals.values())

    def report(self) -> Dict[str, object]:
        """Structured profile: totals, fractions and per-step means."""
        total = self.total_seconds
        sections = {}
        for name in SECTIONS:
            seconds = self.totals[name]
            sections[name] = {
                "seconds": seconds,
                "fraction": seconds / total if total > 0 else 0.0,
                "us_per_step": (
                    seconds * 1e6 / self.steps if self.steps else 0.0
                ),
            }
        return {
            "steps": self.steps,
            "seconds": total,
            "slots_per_sec": self.steps / total if total > 0 else 0.0,
            "sections": sections,
        }

    def format_report(self) -> str:
        """Human-readable rendering of :meth:`report`."""
        rep = self.report()
        lines = [
            f"step profile: {rep['steps']} slots in {rep['seconds']:.3f}s "
            f"({rep['slots_per_sec']:.0f} slots/sec)"
        ]
        for name in SECTIONS:
            sec = rep["sections"][name]
            lines.append(
                f"  {name:>8s}: {sec['seconds']:8.3f}s  "
                f"{100 * sec['fraction']:5.1f}%  "
                f"{sec['us_per_step']:8.2f} us/slot"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"StepProfiler(steps={self.steps}, "
            f"seconds={self.total_seconds:.3f})"
        )
