"""Run telemetry: time-series, structured events, profiling, manifests.

Every figure in the paper is a time-series or a tail statistic, so the
simulator needs more than aggregate counters: this package is the
observability layer the experiments (and every future performance PR)
measure themselves with.  It has four pieces, all *pure observers* —
attaching any of them never changes simulated behavior (the golden-trace
tests run with all of them enabled):

* :class:`~repro.obs.timeseries.TimeSeriesRecorder` — per-sample-window
  series of the engine's counters and populations (delivered/injected/dummy
  cells, token and control traffic, queued and in-flight cells, queue/PIEO
  occupancy), cheap enough to leave on by default.
* :class:`~repro.obs.events.EventLog` — one structured ``(t, kind, payload)``
  stream with pluggable sinks (JSONL file, in-memory ring, callback)
  unifying flow lifecycle, run-monitor violations and failure-protocol
  detections under a canonical, deterministic serialisation.
* :class:`~repro.obs.profiler.StepProfiler` — per-section wall-clock
  accounting of the engine step (faults/deliver/inject/tx/sample/monitor),
  zero overhead when not attached.
* :func:`~repro.obs.manifest.run_manifest` — an end-of-run record of what
  ran (config, seed, shape) and how fast (slots/sec, peak RSS), split into
  a deterministic part and a volatile runtime part.

:class:`~repro.obs.capture.TelemetryCapture` ties them together for the
experiment runner: inside a capture context every engine constructed
anywhere (including in :func:`repro.sim.parallel.sweep` workers) is
instrumented automatically and its series/summary/manifest are collected
into the runner's ``--telemetry`` artifacts.
"""

from .capture import TelemetryCapture, current_capture
from .events import CallbackSink, EventLog, FileSink, RingSink, encode_event
from .manifest import run_manifest
from .profiler import StepProfiler
from .serialize import canonical_json, to_jsonable
from .timeseries import TimeSeriesRecorder

__all__ = [
    "CallbackSink",
    "EventLog",
    "FileSink",
    "RingSink",
    "StepProfiler",
    "TelemetryCapture",
    "TimeSeriesRecorder",
    "canonical_json",
    "current_capture",
    "encode_event",
    "run_manifest",
    "to_jsonable",
]
