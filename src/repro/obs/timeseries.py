"""Per-sample-window time series of one engine's run.

The metrics collector keeps *cumulative* counters and two flat sample
buffers; the figures in the paper (Figs. 8, 10-12, 15) are all
*time-resolved*.  :class:`TimeSeriesRecorder` bridges the gap: at every
sample window close it records the window's counter deltas and the
instantaneous populations into int64 columns (the same growable numpy
buffers the metrics collector uses), giving throughput-over-time, queue
growth and token traffic without re-instrumenting by hand.

The recorder is a pure observer and is cheap: one counter snapshot plus one
walk over the nodes per sample window (every ``metrics_sample_interval``
slots), all through public accessors.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..sim.metrics import _IntBuffer

__all__ = ["TimeSeriesRecorder"]


class TimeSeriesRecorder:
    """Records one row per sample window; attach via :meth:`attach`.

    Columns (all int64, one value per closed window):

    ``t``             window-closing timeslot
    ``delivered``     payload cells delivered in the window
    ``injected``      payload cells that entered the network
    ``drops``         payload cells dropped (any cause)
    ``sent``          cells put on the wire (payload + dummy)
    ``dummies``       dummy cells among them
    ``tokens``        hop-by-hop tokens carried in headers
    ``ctrl``          end-to-end control messages sent
    ``queued``        cells enqueued across live nodes at the window close
    ``in_flight``     payload cells on the wire at the window close
    ``active_flows``  flows still sending/receiving at the window close
    ``max_queue``     longest single link queue at the window close
    ``max_buffer``    largest per-node total occupancy at the window close
    ``active_buckets`` most active buckets at any node at the window close
    """

    #: column order used by :meth:`row` and :meth:`to_dict`
    COLUMNS = (
        "t", "delivered", "injected", "drops", "sent", "dummies",
        "tokens", "ctrl", "queued", "in_flight", "active_flows",
        "max_queue", "max_buffer", "active_buckets",
    )

    #: (column, MetricsCollector attribute) pairs recorded as window deltas
    _DELTA_SOURCES = (
        ("delivered", "payload_cells_delivered"),
        ("injected", "cells_injected"),
        ("drops", "cells_dropped"),
        ("sent", "cells_sent"),
        ("dummies", "dummy_cells_sent"),
        ("tokens", "tokens_sent"),
        ("ctrl", "control_messages"),
    )

    def __init__(self) -> None:
        self._cols: Dict[str, _IntBuffer] = {
            name: _IntBuffer() for name in self.COLUMNS
        }
        self._prev = tuple(0 for _ in self._DELTA_SOURCES)

    # ------------------------------------------------------------------ #
    # engine hooks

    def attach(self, engine) -> "TimeSeriesRecorder":
        """Install this recorder on ``engine`` and return it."""
        engine.telemetry = self
        self.resnapshot(engine.metrics)
        # adopt telemetry state from a restored checkpoint, if the engine
        # is carrying some and no recorder was attached when it restored
        pending = engine._pending_restore
        if pending and "telemetry" in pending:
            self.load_state(pending.pop("telemetry"))
        return self

    def state_dict(self) -> dict:
        """Every column plus the delta baseline (checkpoint encoding)."""
        return {
            "cols": {name: buf.state() for name, buf in self._cols.items()},
            "prev": list(self._prev),
        }

    def load_state(self, state: dict) -> None:
        for name, buf in self._cols.items():
            buf.load(state["cols"][name])
        self._prev = tuple(state["prev"])

    def resnapshot(self, metrics) -> None:
        """Re-baseline the delta counters (e.g. at the end of warm-up)."""
        self._prev = tuple(
            getattr(metrics, attr) for _, attr in self._DELTA_SOURCES
        )

    def on_window(self, engine, t: int) -> None:
        """Close one window: record deltas and instantaneous populations.

        Called by the engine right after the metrics sampling step, so the
        instantaneous readings land at exactly the sampling instants.
        """
        queued = 0
        max_queue = 0
        max_buffer = 0
        active_buckets = 0
        for node in engine.nodes:
            if node.failed:
                continue
            occupancy = node.total_enqueued
            queued += occupancy
            if occupancy > max_buffer:
                max_buffer = occupancy
            for queue in node.link_queues:
                length = len(queue)
                if length > max_queue:
                    max_queue = length
            tracker = node.bucket_tracker
            if tracker is not None:
                active = len(tracker)
                if active > active_buckets:
                    active_buckets = active
        self.on_window_stats(
            engine, t,
            queued=queued,
            max_queue=max_queue,
            max_buffer=max_buffer,
            active_buckets=active_buckets,
        )

    def on_window_stats(
        self,
        engine,
        t: int,
        *,
        queued: int,
        max_queue: int,
        max_buffer: int,
        active_buckets: int,
    ) -> None:
        """Close one window with the node populations supplied by the caller.

        The vectorized backend already holds the queue populations in
        columns, so it computes them with array ops and hands them over
        instead of paying :meth:`on_window`'s per-node walk; everything
        else (counter deltas, wire and flow populations) is read from the
        engine identically in both entry points.
        """
        metrics = engine.metrics
        cols = self._cols
        prev = self._prev
        cur = tuple(
            getattr(metrics, attr) for _, attr in self._DELTA_SOURCES
        )
        self._prev = cur
        cols["t"].append(t)
        for (name, _), now, before in zip(self._DELTA_SOURCES, cur, prev):
            cols[name].append(now - before)
        cols["queued"].append(queued)
        cols["in_flight"].append(engine._in_flight_payload)
        cols["active_flows"].append(engine.flows.active_count)
        cols["max_queue"].append(max_queue)
        cols["max_buffer"].append(max_buffer)
        cols["active_buckets"].append(active_buckets)

    # ------------------------------------------------------------------ #
    # reading the series

    def __len__(self) -> int:
        """Number of closed windows recorded so far."""
        return len(self._cols["t"])

    def series(self) -> Dict[str, np.ndarray]:
        """The columns as zero-copy int64 views (name -> array)."""
        return {name: buf.view() for name, buf in self._cols.items()}

    def column(self, name: str) -> np.ndarray:
        """One column as a zero-copy int64 view."""
        return self._cols[name].view()

    def to_dict(self) -> Dict[str, List[int]]:
        """The columns as plain lists (JSON-serialisable, picklable)."""
        return {
            name: buf.view().tolist() for name, buf in self._cols.items()
        }
