"""Figure 8: hardware prototype vs packet simulator cross-validation.

The paper runs identical 16-node permutation workloads on the ModelSim'd
FPGA prototype and on the packet simulator (h=2 and h=4), and checks that
throughput and maximum queue length agree, with both throughputs above the
theoretical guarantees (2.353 and 1.176 Gbps at the prototype's 9.412 Gbps
available bandwidth).

Our two implementations play those roles: the cycle-level
:class:`~repro.hardware.prototype.HardwareNetwork` (written against the FPGA
data structures) versus the packet :class:`~repro.sim.engine.Engine`.
Agreement between the independently structured implementations is the
validation, exactly as in the paper; remaining differences come from
different spraying randomisation, as the paper also notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hardware.prototype import HardwareNetwork, HardwareTimings
from ..sim.config import SimConfig
from ..sim.engine import Engine
from ..workloads.generators import permutation_workload
from .common import experiment_entrypoint, format_table

__all__ = ["Fig08Result", "run", "report"]


@dataclass
class Fig08Result:
    """Throughput (Gbps) and max queue length for both implementations."""

    n: int
    rows: List[Tuple[int, float, float, int, int, float]]
    # (h, hw_gbps, sim_gbps, hw_maxq, sim_maxq, guarantee_gbps)


def _run_cell(
    h: int,
    n: int,
    flow_cells: int,
    duration: int,
    propagation_delay: int,
    seed: int,
) -> Tuple[int, float, float, int, int, float]:
    """One tuning's hardware-vs-simulator row — module-level for pools."""
    timings = HardwareTimings()
    cfg = SimConfig(
        n=n, h=h, duration=duration,
        propagation_delay=propagation_delay,
        congestion_control="hbh+spray", seed=seed,
    )
    workload = permutation_workload(cfg, size_cells=flow_cells)

    hw = HardwareNetwork(
        n, h, propagation_delay=propagation_delay,
        timings=timings, seed=seed,
    )
    for _, src, dst, cells, _bytes in workload:
        hw.nodes[src].add_local_cells(dst, cells, 0)
    hw.run(duration)

    sim = Engine(cfg, workload=list(workload))
    sim.run()
    sim_cells_per_slot = sim.metrics.payload_cells_delivered / (
        duration * n
    )
    sim_gbps = sim_cells_per_slot * timings.available_gbps
    sim_maxq = sim.metrics.max_queue_length

    guarantee = timings.available_gbps / (2 * h)
    return (h, hw.throughput_gbps(), sim_gbps, hw.max_queue_length(),
            sim_maxq, guarantee)


@experiment_entrypoint
def run(
    *,
    n: int = 16,
    h_values: Tuple[int, ...] = (2, 4),
    flow_cells: int = 0,
    duration: int = 20_000,
    propagation_delay: int = 0,
    seed: int = 7,
    workers: int = 1,
) -> Fig08Result:
    """Run the same permutation on both implementations for each ``h``.

    ``flow_cells`` defaults to ``duration`` so the permutation saturates the
    network for the whole measurement window (the paper's setup); passing a
    smaller value under-fills the run and dilutes average throughput.
    ``workers > 1`` runs the tunings as parallel sweep cells.
    """
    from ..sim.parallel import sweep

    if flow_cells <= 0:
        flow_cells = duration
    grid = [
        dict(h=h, n=n, flow_cells=flow_cells, duration=duration,
             propagation_delay=propagation_delay, seed=seed)
        for h in h_values
    ]
    return Fig08Result(n=n, rows=sweep(_run_cell, grid, workers=workers))


def report(result: Fig08Result) -> str:
    """Side-by-side validation table in the shape of Fig. 8."""
    table = format_table(
        ["h", "HW Gbps", "Sim Gbps", "HW max queue", "Sim max queue",
         "guarantee Gbps"],
        result.rows,
    )
    checks = []
    for h, hw_gbps, sim_gbps, _, _, guarantee in result.rows:
        ok = hw_gbps >= guarantee and sim_gbps >= guarantee
        agree = abs(hw_gbps - sim_gbps) <= 0.25 * max(hw_gbps, sim_gbps)
        checks.append(
            f"h={h}: above guarantee={'yes' if ok else 'NO'}, "
            f"implementations agree={'yes' if agree else 'NO'}"
        )
    return (
        f"Figure 8 — prototype vs simulator, N={result.n} permutation\n"
        f"{table}\n" + "\n".join(checks)
    )
