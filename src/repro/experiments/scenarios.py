"""Resilience scorecards over the correlated-failure x adversarial matrix.

Extends the fig12 story (throughput under independent node failures) to a
full resilience chapter: every named failure pattern
(:data:`repro.scenarios.FAILURE_PATTERNS`) is crossed with every named
workload shape (:data:`repro.scenarios.WORKLOAD_SHAPES`) and congestion
control mechanism, each cell is scored from its
:class:`~repro.sim.monitor.RunMonitor` conservation/stall/detection
metrics, and the grid reduces to one score per mechanism (see
:mod:`repro.scenarios.scorecard` for the formula and DESIGN.md §9 for the
determinism contract).

Expected shape: mechanisms with hop-by-hop backpressure and spraying hold
their scores across the adversarial column; ``none`` degrades most under
incast storms, and correlated outages cost every mechanism more than the
equal-budget independent flaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..scenarios import build_scorecard, format_scorecard, run_matrix
from ..scenarios.registry import FAILURE_PATTERNS, WORKLOAD_SHAPES
from .common import experiment_entrypoint

__all__ = ["ScenariosResult", "run", "report"]

#: grid defaults: every registered pattern/shape, all four mechanisms
DEFAULT_PATTERNS = ("baseline", "rack-outage", "gray-links", "cascade",
                    "flaky")
DEFAULT_WORKLOADS = ("uniform-perms", "incast-storm", "hot-dest",
                     "adversarial-perm")
DEFAULT_MECHANISMS = ("none", "hop-by-hop", "hbh+spray", "isd")


@dataclass
class ScenariosResult:
    """The scored matrix plus its per-mechanism reduction."""

    n: int
    h: int
    scorecard: Dict[str, Any] = field(default_factory=dict)


@experiment_entrypoint
def run(
    *,
    n: int = 16,
    h: int = 2,
    duration: int = 3000,
    flow_cells: int = 60,
    propagation_delay: int = 2,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
    seed: int = 0,
    workers: int = 1,
    json_out: Optional[str] = None,
) -> ScenariosResult:
    """Run the scenario matrix and build the resilience scorecard.

    Args:
        patterns: failure-pattern names (see ``FAILURE_PATTERNS``).
        workloads: workload-shape names (see ``WORKLOAD_SHAPES``).
        mechanisms: congestion-control mechanisms to compare.
        json_out: also write the scorecard as canonical JSON to this path
            (the CI smoke job byte-compares two such files).
        workers: fan the grid cells out over a process pool when ``> 1``.
    """
    cells = run_matrix(
        list(patterns), list(workloads), list(mechanisms),
        n=n, h=h, duration=duration, flow_cells=flow_cells,
        propagation_delay=propagation_delay, seed=seed, workers=workers,
    )
    grid: Dict[str, Any] = {
        "patterns": list(patterns),
        "workloads": list(workloads),
        "mechanisms": list(mechanisms),
        "n": n, "h": h, "duration": duration, "flow_cells": flow_cells,
        "propagation_delay": propagation_delay, "seed": seed,
    }
    scorecard = build_scorecard(cells, grid)
    if json_out:
        from ..obs.serialize import canonical_json

        with open(json_out, "w") as fh:
            fh.write(canonical_json(scorecard) + "\n")
    return ScenariosResult(n=n, h=h, scorecard=scorecard)


def report(result: ScenariosResult) -> str:
    """The per-mechanism resilience scorecard as a ranked table."""
    card = result.scorecard
    grid = card["grid"]
    known = (f"patterns: {', '.join(grid['patterns'])}\n"
             f"workloads: {', '.join(grid['workloads'])}")
    return (
        f"Resilience scorecard — N={result.n}, h={result.h}, "
        f"{len(card['cells'])} cells, seed={grid['seed']}\n"
        f"{known}\n"
        f"{format_scorecard(card)}\n"
        "score = 100 * (0.50*delivery + 0.20*conservation + 0.15*stability "
        "+ 0.15*detection); byte-identical across reruns and worker counts "
        "for a given seed."
    )
