"""Shared plumbing for the experiment regenerators.

Every experiment module exposes a ``run(...)`` function returning a plain
result object with the same rows/series the paper's figure reports, plus a
``report(result)`` function rendering it as text.  Default parameters are
scaled down from the paper (documented per experiment and in EXPERIMENTS.md)
but every knob can be turned back up to paper scale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.fct import FctTable, fct_table
from ..sim.config import SimConfig
from ..sim.engine import Engine, ScheduledFlow
from ..workloads.distributions import (
    FlowSizeDistribution,
    HeavyTailedDistribution,
    ShortFlowDistribution,
)
from ..workloads.generators import poisson_workload

__all__ = [
    "run_cc_experiment",
    "load_for",
    "workload_for",
    "format_table",
    "DISTRIBUTIONS",
]

DISTRIBUTIONS = {
    "short-flow": ShortFlowDistribution,
    "heavy-tailed": HeavyTailedDistribution,
}


def load_for(h: int, fraction_of_guarantee: float = 0.96) -> float:
    """The paper's load-factor convention: just under the 1/(2h) guarantee.

    The paper uses L = 0.24 for h = 2 and L = 0.12 for h = 4 — 96% of the
    respective guarantees.
    """
    return fraction_of_guarantee / (2 * h)


#: Default flow-size scale for down-scaled runs of each workload: the
#: short-flow mix fits small horizons as-is, while the heavy-tailed mix needs
#: its elephants shrunk so they arrive (and complete) within the window, the
#: same ratio by which the default horizons are shorter than the paper's 50M
#: timeslots.  Paper-scale runs pass scale=1.0.
DEFAULT_WORKLOAD_SCALE = {
    "short-flow": 1.0,
    "heavy-tailed": 0.02,
}


def workload_for(
    config: SimConfig,
    distribution_name: str,
    load: Optional[float] = None,
    scale: Optional[float] = None,
) -> List[ScheduledFlow]:
    """Build the Poisson workload the paper uses for ``distribution_name``."""
    if scale is None:
        scale = DEFAULT_WORKLOAD_SCALE[distribution_name]
    distribution = DISTRIBUTIONS[distribution_name](scale=scale)
    actual_load = load if load is not None else load_for(config.h)
    return poisson_workload(config, distribution, actual_load)


def run_cc_experiment(
    config: SimConfig,
    workload: Sequence[ScheduledFlow],
    drain: bool = True,
    max_drain: int = 200_000,
) -> Engine:
    """Run one (mechanism, workload) cell of a Fig. 10/11-style experiment."""
    engine = Engine(config, workload=list(workload))
    engine.run()
    if drain:
        engine.run_until_quiescent(max_extra=max_drain)
    return engine


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned plain-text table (the experiment report format)."""
    rendered: List[List[str]] = [[str(header) for header in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(rendered[0]))
    ]
    lines = []
    for i, row in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
