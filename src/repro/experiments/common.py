"""Shared plumbing for the experiment regenerators.

Every experiment module exposes a ``run(...)`` function returning a plain
result object with the same rows/series the paper's figure reports, plus a
``report(result)`` function rendering it as text.  Default parameters are
scaled down from the paper (documented per experiment and in EXPERIMENTS.md)
but every knob can be turned back up to paper scale.
"""

from __future__ import annotations

import functools
import inspect
import time
import warnings
from contextlib import ExitStack
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.fct import FctTable, fct_table
from ..sim.config import SimConfig
from ..sim.engine import Engine, ScheduledFlow
from ..workloads.distributions import (
    FlowSizeDistribution,
    HeavyTailedDistribution,
    ShortFlowDistribution,
)
from ..workloads.generators import poisson_workload

__all__ = [
    "ExperimentResult",
    "experiment_entrypoint",
    "run_cc_experiment",
    "load_for",
    "workload_for",
    "format_table",
    "DISTRIBUTIONS",
]

DISTRIBUTIONS = {
    "short-flow": ShortFlowDistribution,
    "heavy-tailed": HeavyTailedDistribution,
}


class ExperimentResult:
    """The uniform return type of every experiment ``run()``.

    Attributes:
        name: the experiment id (``fig08``-style module suffix).
        payload: the experiment's own result object (``Fig08Result`` etc.) —
            deterministic data only, what the runner serialises to
            ``<name>.json``.
        runtime: volatile sidecar facts (wall clock, telemetry bundles,
            checkpoint resume slots) that go to ``<name>.runtime.json``.

    Unknown attributes delegate to ``payload``, so existing consumers
    (``report()`` functions, tests, notebooks) keep reading ``result.rows``
    / ``result.n`` exactly as before the wrapper existed.
    """

    __slots__ = ("name", "payload", "runtime")

    def __init__(self, name: str, payload: Any,
                 runtime: Optional[Dict[str, Any]] = None):
        self.name = name
        self.payload = payload
        self.runtime = dict(runtime or {})

    def __getattr__(self, attr: str) -> Any:
        # __getattr__ only fires for names not found on the instance; the
        # guard keeps unpickling and introspection from recursing before
        # the slots are populated
        if attr.startswith("_") or attr in ("name", "payload", "runtime"):
            raise AttributeError(attr)
        return getattr(self.payload, attr)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"ExperimentResult({self.name!r}, "
                f"payload={type(self.payload).__name__}, "
                f"runtime={sorted(self.runtime)})")


#: the keyword tail shared by every experiment entrypoint; parameters an
#: experiment does not declare itself are handled (or absorbed) here
UNIFORM_TAIL = ("workers", "cache", "telemetry", "seed",
                "checkpoint_dir", "checkpoint_every")

_TAIL_DEFAULTS: Dict[str, Any] = {
    "workers": 1, "cache": None, "telemetry": None, "seed": None,
    "checkpoint_dir": None, "checkpoint_every": None,
}


def experiment_entrypoint(fn):
    """Give an experiment ``run()`` the uniform keyword-only signature.

    Every decorated entrypoint:

    * accepts the shared tail — ``workers=``, ``cache=``, ``telemetry=``,
      ``seed=``, ``checkpoint_dir=``, ``checkpoint_every=`` — whether or not
      the experiment declares the keyword itself (undeclared ``workers`` /
      ``seed`` are absorbed: analytic models have no RNG or grid);
    * installs ``cache`` (a :class:`~repro.sim.cellcache.CellCache` or a
      directory) and ``checkpoint_dir`` (a
      :class:`~repro.sim.checkpoint.CheckpointPolicy` or a directory) as the
      ambient defaults for the duration of the call;
    * opens a :class:`~repro.obs.capture.TelemetryCapture` when
      ``telemetry`` is truthy and none is ambient, shipping the bundle home
      in ``result.runtime["telemetry"]``;
    * returns an :class:`ExperimentResult` (never nested — an experiment
      delegating to another decorated entrypoint is flattened);
    * still accepts positional arguments for one release, with a
      :class:`DeprecationWarning` mapping them onto the declared keywords.
    """
    declared = list(inspect.signature(fn).parameters.values())
    declared_names = [p.name for p in declared]
    exp_name = fn.__module__.rsplit(".", 1)[-1]

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if args:
            warnings.warn(
                f"positional arguments to {exp_name}.run() are deprecated "
                f"and will become an error in the next release; pass "
                f"keywords",
                DeprecationWarning, stacklevel=2,
            )
            if len(args) > len(declared_names):
                raise TypeError(
                    f"{exp_name}.run() takes at most {len(declared_names)} "
                    f"positional arguments ({len(args)} given)"
                )
            for name, value in zip(declared_names, args):
                if name in kwargs:
                    raise TypeError(
                        f"{exp_name}.run() got multiple values for {name!r}"
                    )
                kwargs[name] = value
        cache = kwargs.pop("cache", None)
        telemetry = kwargs.pop("telemetry", None)
        checkpoint_dir = kwargs.pop("checkpoint_dir", None)
        checkpoint_every = kwargs.pop("checkpoint_every", None)
        for name in ("workers", "seed"):
            if name not in declared_names:
                kwargs.pop(name, None)

        from ..obs import capture as _capture
        from ..sim import cellcache as _cellcache
        from ..sim import checkpoint as _checkpoint

        started = time.perf_counter()
        runtime: Dict[str, Any] = {}
        capture = None
        with ExitStack() as stack:
            if cache is not None:
                cache_obj = (cache if isinstance(cache, _cellcache.CellCache)
                             else _cellcache.CellCache(cache))
                stack.callback(_cellcache.set_default_cache,
                               _cellcache.set_default_cache(cache_obj))
            if checkpoint_dir is not None:
                policy = (
                    checkpoint_dir
                    if isinstance(checkpoint_dir, _checkpoint.CheckpointPolicy)
                    else _checkpoint.CheckpointPolicy(
                        checkpoint_dir,
                        every=checkpoint_every or 100_000)
                )
                stack.callback(_checkpoint.set_default_policy,
                               _checkpoint.set_default_policy(policy))
            if telemetry is not None and telemetry is not False:
                if isinstance(telemetry, _capture.TelemetryCapture):
                    if _capture.current_capture() is not telemetry:
                        stack.enter_context(telemetry)
                elif _capture.current_capture() is None:
                    capture = stack.enter_context(_capture.TelemetryCapture())
            payload = fn(**kwargs)
        if isinstance(payload, ExperimentResult):
            # an experiment that delegates to another entrypoint (fig11 ->
            # fig10); keep the inner runtime facts, report the outer name
            runtime = {**payload.runtime, **runtime}
            payload = payload.payload
        runtime["wall_seconds"] = time.perf_counter() - started
        if capture is not None:
            runs, runtimes, events = capture.collect_bundle()
            runtime["telemetry"] = {
                "runs": runs, "runtimes": runtimes, "events": events,
            }
        return ExperimentResult(exp_name, payload, runtime)

    params = [p.replace(kind=inspect.Parameter.KEYWORD_ONLY)
              for p in declared]
    for name in UNIFORM_TAIL:
        if name not in declared_names:
            params.append(inspect.Parameter(
                name, inspect.Parameter.KEYWORD_ONLY,
                default=_TAIL_DEFAULTS[name]))
    wrapper.__signature__ = inspect.Signature(
        params, return_annotation=ExperimentResult)
    return wrapper


def load_for(h: int, fraction_of_guarantee: float = 0.96) -> float:
    """The paper's load-factor convention: just under the 1/(2h) guarantee.

    The paper uses L = 0.24 for h = 2 and L = 0.12 for h = 4 — 96% of the
    respective guarantees.
    """
    return fraction_of_guarantee / (2 * h)


#: Default flow-size scale for down-scaled runs of each workload: the
#: short-flow mix fits small horizons as-is, while the heavy-tailed mix needs
#: its elephants shrunk so they arrive (and complete) within the window, the
#: same ratio by which the default horizons are shorter than the paper's 50M
#: timeslots.  Paper-scale runs pass scale=1.0.
DEFAULT_WORKLOAD_SCALE = {
    "short-flow": 1.0,
    "heavy-tailed": 0.02,
}


def workload_for(
    config: SimConfig,
    distribution_name: str,
    load: Optional[float] = None,
    scale: Optional[float] = None,
) -> List[ScheduledFlow]:
    """Build the Poisson workload the paper uses for ``distribution_name``."""
    if scale is None:
        scale = DEFAULT_WORKLOAD_SCALE[distribution_name]
    distribution = DISTRIBUTIONS[distribution_name](scale=scale)
    actual_load = load if load is not None else load_for(config.h)
    return poisson_workload(config, distribution, actual_load)


def run_cc_experiment(
    config: SimConfig,
    workload: Sequence[ScheduledFlow],
    drain: bool = True,
    max_drain: int = 200_000,
) -> Engine:
    """Run one (mechanism, workload) cell of a Fig. 10/11-style experiment."""
    engine = Engine(config, workload=list(workload))
    engine.run()
    if drain:
        engine.run_until_quiescent(max_extra=max_drain)
    return engine


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned plain-text table (the experiment report format)."""
    rendered: List[List[str]] = [[str(header) for header in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(rendered[0]))
    ]
    lines = []
    for i, row in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
