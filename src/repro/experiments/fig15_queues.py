"""Figures 15 and 16 (Appendix B.2): queue lengths per mechanism.

Maximum and 99th-percentile per-queue lengths for both workloads.  Key
observation reproduced: NDP and HBH+spray can have similar *maximum* queue
lengths while NDP's 99th percentile is far higher — many NDP queues run near
the trimming threshold, explaining its worse buffering.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..congestion.mechanisms import EVALUATION_ORDER
from .common import experiment_entrypoint, format_table
from .fig10_shortflow import CcResult
from .fig14_mean_fct import run as _run

__all__ = ["run", "report"]


@experiment_entrypoint
def run(
    *,
    workload_name: str = "short-flow",
    n: int = 16,
    h_values: Sequence[int] = (2, 4),
    mechanisms: Sequence[str] = EVALUATION_ORDER,
    duration: int = 40_000,
    propagation_delay: int = 8,
    seed: int = 5,
    load: Optional[float] = None,
    workers: int = 1,
) -> CcResult:
    """Run the CC grid (queue statistics are computed alongside)."""
    return _run(
        workload_name=workload_name, n=n, h_values=h_values,
        mechanisms=mechanisms, duration=duration,
        propagation_delay=propagation_delay, seed=seed, load=load,
        workers=workers,
    )


def report(result: CcResult) -> str:
    """Max and p99 queue lengths per mechanism (Figs. 15/16)."""
    sections = []
    for h in sorted({c.h for c in result.cells}):
        cells = [c for c in result.cells if c.h == h]
        table = format_table(
            ["mechanism", "max queue", "queue p99"],
            [(c.mechanism, c.max_queue, c.queue_p99) for c in cells],
        )
        sections.append(f"--- h={h} ---\n{table}")
    return (
        f"Figures 15/16 — queue lengths, {result.workload_name} workload, "
        f"N={result.n}\n" + "\n\n".join(sections)
    )
