"""Figure 9: interleaved schedules on the heavy-tailed workload.

The paper interleaves a high-throughput sub-schedule (h=1 or h=2) with the
low-latency h=4 sub-schedule, sweeping the share ``s`` of timeslots given to
the h=4 class (0%, 20%, 40%, 50%, 100%).  Short flows ride the h=4
sub-schedule; the flow-size cutoff is chosen so both classes see equivalent
utilisation.  The total load tracks the combined throughput guarantee
(e.g. s=20% interleaving h=2 and h=4 supports L = 0.8*0.24 + 0.2*0.12).

Each configuration reports 99.9% size-normalised FCT per flow-size bucket —
showing that interleaving buys high total throughput while keeping the h=4
class's short-flow latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.fct import fct_table
from ..core.interleave import two_class_interleave
from ..sim.config import SimConfig
from ..sim.multiclass import MultiClassSimulation
from ..workloads.distributions import HeavyTailedDistribution, bucket_label
from ..workloads.generators import poisson_workload
from .common import experiment_entrypoint, format_table, load_for

__all__ = ["Fig09Result", "run", "report", "combined_load"]


def combined_load(h_bulk: int, h_latency: int, s: float,
                  fraction: float = 0.9) -> float:
    """Load factor matching the interleave's combined throughput guarantee."""
    bulk = (1.0 - s) / (2 * h_bulk)
    latency = s / (2 * h_latency)
    return fraction * (bulk + latency)


@dataclass
class Fig09Result:
    """Tail FCT per bucket for each interleave share ``s``."""

    n: int
    h_bulk: int
    h_latency: int
    tails: Dict[float, Dict[int, float]]  # s -> bucket -> p99.9
    loads: Dict[float, float]


def _run_cell(
    s: float,
    n: int,
    h_bulk: int,
    h_latency: int,
    duration: int,
    propagation_delay: int,
    cutoff_cells: int,
    workload_scale: float,
    seed: int,
) -> Tuple[float, Dict[int, float]]:
    """One interleave share's (load, tails) — module-level for pools."""
    load = combined_load(h_bulk, h_latency, s)
    base = SimConfig(
        n=n,
        h=h_latency if s > 0 else h_bulk,
        duration=duration,
        propagation_delay=propagation_delay,
        congestion_control="hbh+spray",
        seed=seed,
    )
    distribution = HeavyTailedDistribution(scale=workload_scale)
    workload = poisson_workload(base, distribution, load=load)
    if s in (0.0, 1.0):
        # single-schedule endpoints
        from ..sim.engine import Engine

        engine = Engine(base, workload=workload)
        engine.run()
        engine.run_until_quiescent(max_extra=duration * 3)
        records = engine.flows.completed
    else:
        interleave = two_class_interleave(
            n, h_bulk, h_latency, s, cutoff_cells=cutoff_cells
        )
        sim = MultiClassSimulation(interleave, base, workload=workload)
        sim.run(duration)
        sim.run_until_quiescent(max_extra=duration * 3)
        records = sim.completed_flows()
    return load, fct_table(records, propagation_delay).tail(99.9)


@experiment_entrypoint
def run(
    *,
    n: int = 81,
    h_bulk: int = 2,
    h_latency: int = 4,
    shares: Sequence[float] = (0.0, 0.2, 0.4, 0.5, 1.0),
    duration: int = 40_000,
    propagation_delay: int = 8,
    cutoff_cells: int = 64,
    workload_scale: float = 0.02,
    seed: int = 3,
    workers: int = 1,
) -> Fig09Result:
    """Sweep the interleave share ``s`` on the heavy-tailed workload.

    ``n`` must be a perfect power for both tunings (81 = 3^4 = 9^2 works
    for h=4 and h=2; use 4096 for h=1&4 at larger scale).  ``workers > 1``
    runs the shares as parallel sweep cells.
    """
    from ..sim.parallel import sweep

    grid = [
        dict(s=s, n=n, h_bulk=h_bulk, h_latency=h_latency,
             duration=duration, propagation_delay=propagation_delay,
             cutoff_cells=cutoff_cells, workload_scale=workload_scale,
             seed=seed)
        for s in shares
    ]
    cells = sweep(_run_cell, grid, workers=workers)
    tails: Dict[float, Dict[int, float]] = {}
    loads: Dict[float, float] = {}
    for s, (load, tail) in zip(shares, cells):
        loads[s] = load
        tails[s] = tail
    return Fig09Result(
        n=n, h_bulk=h_bulk, h_latency=h_latency, tails=tails, loads=loads
    )


def report(result: Fig09Result) -> str:
    """One column per share ``s``, rows per flow-size bucket (Fig. 9)."""
    buckets = sorted({b for t in result.tails.values() for b in t})
    headers = ["flow size"] + [
        f"s={int(s*100)}% L={result.loads[s]:.3f}" for s in result.tails
    ]
    rows = []
    for b in buckets:
        row: List[object] = [bucket_label(b)]
        for s in result.tails:
            row.append(result.tails[s].get(b, float("nan")))
        rows.append(row)
    table = format_table(headers, rows)
    return (
        f"Figure 9 — interleaving h={result.h_bulk} and h={result.h_latency}, "
        f"N={result.n}, heavy-tailed workload\n{table}\n"
        "Interleaved columns should keep short-flow tails near the "
        "s=100% (pure low-latency) column while sustaining the higher "
        "combined load."
    )
