"""Figure 13: scalability of resources and latency with system size.

The paper simulates the short flow workload at sizes from 4,096 to 50,625
nodes and tracks, per tuning (h=2 and h=4):

* the maximum number of active buckets (top row, left axis of Fig. 13),
* the maximum PIEO queue length,
* 99.9% size-normalised FCT per flow-size bucket.

Expected shape: over an order of magnitude of scaling, h=2 uses only ~2.5x
more active buckets with plateauing PIEO lengths, h=4 stays nearly flat, and
short-flow FCTs grow at most ~2x (h=2) or stay flat (h=4).

Defaults are scaled down (perfect powers for both tunings: 16..1296); the
``sizes`` argument accepts the paper's values for anyone with the patience,
and ``paper_scale=True`` (``--paper-scale`` on the runner) swaps in a
paper-scale grid whose largest points reach N = 10,000 nodes.  Every size
must be a perfect h-th power (EBS needs an integral radix r = n**(1/h));
infeasible (h, n) pairs are rejected up front with the nearest feasible
alternatives, before any simulation time is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.fct import fct_table
from ..hardware.resources import observe_resources
from ..sim.config import SimConfig
from ..sim.engine import Engine
from ..workloads.distributions import bucket_label
from .common import experiment_entrypoint, format_table, load_for, run_cc_experiment, workload_for

__all__ = ["Fig13Result", "run", "report", "DEFAULT_SIZES", "PAPER_SIZES"]

#: Down-scaled size sweeps; each n must be a perfect h-th power.
DEFAULT_SIZES: Dict[int, Tuple[int, ...]] = {
    2: (64, 144, 256, 400, 625),
    4: (16, 81, 256, 625, 1296),
}

#: Paper-scale sweeps (``--paper-scale``): the largest point of each tuning
#: reaches N = 10,000 nodes (r=100 for h=2, r=10 for h=4).
PAPER_SIZES: Dict[int, Tuple[int, ...]] = {
    2: (1024, 4096, 10_000),
    4: (1296, 4096, 10_000),
}


def _feasible_radix(n: int, h: int) -> Optional[int]:
    """The integral radix r with r**h == n (r >= 2), or None."""
    if n < 2 ** h:
        return None
    r = round(n ** (1.0 / h))
    for candidate in (r - 1, r, r + 1):
        if candidate >= 2 and candidate ** h == n:
            return candidate
    return None


def _validate_sizes(sizes: Dict[int, Tuple[int, ...]]) -> None:
    """Reject infeasible (h, n) pairs before any simulation time is spent.

    EBS needs an integral radix r = n**(1/h) with r >= 2; for every
    infeasible pair the error lists the nearest feasible sizes so a sweep
    can be corrected without consulting the topology code.
    """
    problems = []
    for h, size_list in sorted(sizes.items()):
        if h < 1:
            problems.append(f"h={h}: tuning must satisfy h >= 1")
            continue
        for n in size_list:
            if _feasible_radix(n, h) is not None:
                continue
            r = max(2, round(n ** (1.0 / h)))
            nearby = sorted({max(2, r - 1) ** h, r ** h, (r + 1) ** h})
            alts = ", ".join(str(a) for a in nearby if a != n)
            problems.append(
                f"h={h}, n={n}: n must be a perfect {h}-th power of an "
                f"integral radix r >= 2 (nearest feasible: {alts})"
            )
    if problems:
        raise ValueError(
            "infeasible fig13 size grid:\n  " + "\n  ".join(problems)
        )


@dataclass
class Fig13Result:
    """Per-(h, N) resource peaks and FCT tails."""

    rows: List[Tuple[int, int, int, int, Dict[int, float]]]
    # (h, n, max_active_buckets, max_pieo_length, fct_tail per bucket)


def _run_cell(
    h: int,
    n: int,
    duration: int,
    propagation_delay: int,
    seed: int,
) -> Tuple[int, int, int, int, Dict[int, float]]:
    """One (h, N) size point — module-level so process pools can run it."""
    cfg = SimConfig(
        n=n, h=h, duration=duration,
        propagation_delay=propagation_delay,
        congestion_control="hbh+spray", seed=seed,
    )
    workload = workload_for(cfg, "short-flow", load=load_for(h))
    engine = run_cc_experiment(cfg, workload)
    observation = observe_resources(engine)
    table = fct_table(engine.flows.completed, propagation_delay)
    return (
        h,
        n,
        observation.max_active_buckets,
        observation.max_pieo_length,
        table.tail(99.9),
    )


@experiment_entrypoint
def run(
    *,
    sizes: Optional[Dict[int, Sequence[int]]] = None,
    duration: int = 30_000,
    propagation_delay: int = 8,
    seed: int = 13,
    workers: int = 1,
    paper_scale: bool = False,
) -> Fig13Result:
    """Sweep system size for each tuning on the short flow workload."""
    from ..sim.parallel import sweep

    if sizes is None:
        sizes = PAPER_SIZES if paper_scale else DEFAULT_SIZES
    sizes = {int(k): tuple(v) for k, v in sizes.items()}
    _validate_sizes(sizes)
    grid = [
        dict(h=h, n=n, duration=duration,
             propagation_delay=propagation_delay, seed=seed)
        for h, size_list in sorted(sizes.items())
        for n in size_list
    ]
    return Fig13Result(rows=sweep(_run_cell, grid, workers=workers))


def report(result: Fig13Result) -> str:
    """The three Fig. 13 panels as tables."""
    resource_table = format_table(
        ["h", "N", "max active buckets", "max PIEO length"],
        [(h, n, a, p) for h, n, a, p, _ in result.rows],
    )
    buckets = sorted({b for *_rest, tails in result.rows for b in tails})
    fct_rows = []
    for h, n, _, _, tails in result.rows:
        row: List[object] = [f"h={h} N={n}"]
        row.extend(tails.get(b, float("nan")) for b in buckets)
        fct_rows.append(row)
    fct_text = format_table(
        ["config"] + [bucket_label(b) for b in buckets], fct_rows
    )
    return (
        "Figure 13 — scalability with system size (short flow workload)\n"
        f"{resource_table}\n\n99.9% FCT per bucket:\n{fct_text}\n"
        "Resources and short-flow FCTs should stay nearly flat as N grows, "
        "especially for h=4."
    )
