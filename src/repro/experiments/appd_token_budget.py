"""Appendix D: the token budget parameters T and T_F.

Hop-by-hop throttles a bucket's sending rate to one un-acknowledged cell per
token round trip, so large propagation delays relative to the epoch length
cost throughput.  Appendix D introduces the budgets ``T`` (all hops) and
``T_F`` (first hops only) to recover it: permutation traffic keeps the
throughput guarantee while ``P <= h * T_F * E``.

This regenerator sweeps the propagation delay and the first-hop budget on a
permutation workload and reports achieved throughput against the guarantee —
the crossover where a budget stops sufficing should track the analytical
bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..congestion.token_budget import max_propagation_delay_first_hop
from ..core.schedule import Schedule
from ..sim.config import SimConfig
from ..sim.engine import Engine
from ..workloads.generators import permutation_workload
from .common import experiment_entrypoint, format_table

__all__ = ["AppDResult", "run", "report"]


@dataclass
class AppDResult:
    """Throughput per (propagation delay, T_F) configuration."""

    n: int
    h: int
    epoch_length: int
    rows: List[Tuple[int, int, int, float, float, int]]
    # (propagation_delay, t_f, t, throughput, guarantee, analytical_max_P)


def _run_cell(
    t_f: int,
    delay: int,
    n: int,
    h: int,
    duration: int,
    flow_cells: int,
    seed: int,
) -> Tuple[int, int, int, float, float, int]:
    """One (T_F, P) configuration's row — module-level for pools."""
    schedule = Schedule.shared(n, h)
    analytical = max_propagation_delay_first_hop(schedule, t_f)
    cfg = SimConfig(
        n=n, h=h, duration=duration, propagation_delay=delay,
        congestion_control="hop-by-hop",
        token_budget=1, first_hop_token_budget=t_f, seed=seed,
    )
    workload = permutation_workload(cfg, size_cells=flow_cells)
    engine = Engine(cfg, workload=workload)
    engine.run()
    return (
        delay,
        t_f,
        cfg.token_budget,
        engine.throughput(),
        schedule.throughput_guarantee(),
        analytical,
    )


@experiment_entrypoint
def run(
    *,
    n: int = 64,
    h: int = 2,
    propagation_delays: Sequence[int] = (0, 30, 60, 120, 240),
    first_hop_budgets: Sequence[int] = (1, 2, 4),
    duration: int = 20_000,
    flow_cells: int = 20_000,
    seed: int = 19,
    workers: int = 1,
) -> AppDResult:
    """Sweep P x T_F on a saturating permutation workload."""
    from ..sim.parallel import sweep

    schedule = Schedule.shared(n, h)
    grid = [
        dict(t_f=t_f, delay=delay, n=n, h=h, duration=duration,
             flow_cells=flow_cells, seed=seed)
        for t_f in first_hop_budgets
        for delay in propagation_delays
    ]
    return AppDResult(
        n=n, h=h, epoch_length=schedule.epoch_length,
        rows=sweep(_run_cell, grid, workers=workers),
    )


def report(result: AppDResult) -> str:
    """Throughput vs propagation delay for each first-hop budget."""
    table = format_table(
        ["P (slots)", "T_F", "T", "throughput", "guarantee",
         "analytical max P"],
        result.rows,
        float_fmt="{:.3f}",
    )
    return (
        f"Appendix D — token budget sweep, N={result.n}, h={result.h}, "
        f"E={result.epoch_length}\n{table}\n"
        "Throughput should hold near the guarantee while P stays below the "
        "analytical bound for the given T_F, and sag beyond it."
    )
