"""Figures 11 / 16: congestion control on the heavy-tailed workload.

Same grid as :mod:`~repro.experiments.fig10_shortflow` but on the
heavy-tailed workload, which produces significant egress congestion.
Expected shape (log-scale in the paper): hop-by-hop cuts short-flow tails by
2-3 orders of magnitude vs none, HBH+spray improves further; buffers under
hop-by-hop drop by orders of magnitude, outperforming RD and NDP; for h=2 the
idealized ISD baseline still leads on tails due to short flows incast with
elephants (Appendix B.3 refines this).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..congestion.mechanisms import EVALUATION_ORDER
from .common import experiment_entrypoint
from .fig10_shortflow import CcResult, report as _report, run as _run

__all__ = ["run", "report"]


@experiment_entrypoint
def run(
    *,
    n: int = 16,
    h_values: Sequence[int] = (2, 4),
    mechanisms: Sequence[str] = EVALUATION_ORDER,
    duration: int = 60_000,
    propagation_delay: int = 8,
    seed: int = 11,
    load: Optional[float] = None,
    workers: int = 1,
) -> CcResult:
    """The Fig. 11 grid: all mechanisms on the heavy-tailed workload."""
    return _run(
        n=n,
        h_values=h_values,
        mechanisms=mechanisms,
        duration=duration,
        propagation_delay=propagation_delay,
        workload_name="heavy-tailed",
        seed=seed,
        load=load,
        workers=workers,
    )


def report(result: CcResult) -> str:
    """Fig. 11-shaped report (same layout as Fig. 10's)."""
    return _report(result)
