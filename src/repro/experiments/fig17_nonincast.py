"""Figure 17 (Appendix B.3): tail FCTs excluding flows incast with elephants.

Hop-by-hop does not differentiate cells bound for the same destination, so a
short flow sharing a destination with an ongoing very long (>256 MB) flow
inherits that elephant's egress congestion.  The paper re-plots the
heavy-tailed tails with such incasted flows excluded, showing HBH+spray
(h=2) closing most of its gap to the idealized ISD baseline.

This regenerator runs the heavy-tailed grid, identifies destinations that
ever receive a very long flow, and reports tails with and without flows to
those destinations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set

from ..analysis.fct import fct_table
from ..sim.config import SimConfig
from ..workloads.distributions import bucket_label, bytes_to_cells
from .common import experiment_entrypoint, format_table, load_for, run_cc_experiment, workload_for

__all__ = ["Fig17Result", "run", "report", "ELEPHANT_BYTES"]

#: The paper's "very long flow" threshold: 256 MB.
ELEPHANT_BYTES = 256 * 1024 * 1024


@dataclass
class Fig17Result:
    """Tails per mechanism with and without incasted flows."""

    n: int
    h: int
    elephant_bytes: int
    all_tails: Dict[str, Dict[int, float]]
    non_incast_tails: Dict[str, Dict[int, float]]
    excluded_destinations: int


def _run_cell(
    mechanism: str,
    n: int,
    h: int,
    duration: int,
    propagation_delay: int,
    seed: int,
    elephant_bytes: int,
    workload_scale: float,
    load: Optional[float],
) -> Dict[str, Dict[int, float]]:
    """One mechanism's all/no-incast tails — module-level for pools.

    The workload (and hence the elephant-destination set) regenerates
    deterministically from the seed, so every cell filters identically.
    """
    base = SimConfig(
        n=n, h=h, duration=duration, propagation_delay=propagation_delay,
        congestion_control="none", seed=seed,
    )
    target = load if load is not None else load_for(h)
    workload = workload_for(
        base, "heavy-tailed", load=target, scale=workload_scale
    )
    elephant_dsts: Set[int] = {
        dst for (_t, _src, dst, _cells, size_bytes) in workload
        if size_bytes > elephant_bytes
    }
    cfg = replace(base, congestion_control=mechanism)
    engine = run_cc_experiment(cfg, workload)
    records = engine.flows.completed
    return {
        "all": fct_table(records, propagation_delay).tail(99.9),
        "non_incast": fct_table(
            records, propagation_delay, exclude_dsts=sorted(elephant_dsts)
        ).tail(99.9),
        "excluded": len(elephant_dsts),
    }


@experiment_entrypoint
def run(
    *,
    n: int = 64,
    h: int = 2,
    mechanisms: Sequence[str] = ("isd", "ndp", "hbh+spray"),
    duration: int = 60_000,
    propagation_delay: int = 8,
    seed: int = 17,
    elephant_bytes: Optional[int] = None,
    workload_scale: float = 0.02,
    load: Optional[float] = None,
    workers: int = 1,
) -> Fig17Result:
    """Heavy-tailed grid plus the non-incast filtered view.

    The elephant threshold defaults to the paper's 256 MB multiplied by
    ``workload_scale``, so the filter keeps its meaning when the flow-size
    distribution is down-scaled.  ``workers > 1`` runs the mechanisms as
    parallel sweep cells.
    """
    from ..sim.parallel import sweep

    if elephant_bytes is None:
        elephant_bytes = max(1, int(ELEPHANT_BYTES * workload_scale))
    grid = [
        dict(mechanism=mechanism, n=n, h=h, duration=duration,
             propagation_delay=propagation_delay, seed=seed,
             elephant_bytes=elephant_bytes, workload_scale=workload_scale,
             load=load)
        for mechanism in mechanisms
    ]
    cells = sweep(_run_cell, grid, workers=workers)
    all_tails: Dict[str, Dict[int, float]] = {}
    non_incast: Dict[str, Dict[int, float]] = {}
    excluded = 0
    for mechanism, cell in zip(mechanisms, cells):
        all_tails[mechanism] = cell["all"]
        non_incast[mechanism] = cell["non_incast"]
        excluded = cell["excluded"]
    return Fig17Result(
        n=n,
        h=h,
        elephant_bytes=elephant_bytes,
        all_tails=all_tails,
        non_incast_tails=non_incast,
        excluded_destinations=excluded,
    )


def report(result: Fig17Result) -> str:
    """Tails with vs without elephant-incasted flows (Fig. 17)."""
    mechanisms = list(result.all_tails)
    buckets = sorted(
        {b for t in result.all_tails.values() for b in t}
        | {b for t in result.non_incast_tails.values() for b in t}
    )
    rows = []
    for b in buckets:
        row: List[object] = [bucket_label(b)]
        for m in mechanisms:
            row.append(result.all_tails[m].get(b, float("nan")))
            row.append(result.non_incast_tails[m].get(b, float("nan")))
        rows.append(row)
    headers = ["flow size"]
    for m in mechanisms:
        headers.extend([f"{m} all", f"{m} no-incast"])
    table = format_table(headers, rows)
    return (
        f"Figure 17 — non-incasted tails, heavy-tailed workload, "
        f"N={result.n}, h={result.h} "
        f"(excluded {result.excluded_destinations} elephant destinations)\n"
        f"{table}\n"
        "Excluding elephant-incasted flows should close most of "
        "HBH+spray's gap to ISD."
    )
