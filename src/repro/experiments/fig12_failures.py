"""Figure 12: throughput under failures (nodes, links, or both).

The paper fails 0-8% of a 10K-node network (h=2 and h=4), drives the rest
with 10 overlaid permutation matrices (permutations exclude failed nodes),
runs 2M timeslots and reports the average destination throughput of the
remaining nodes, alongside the no-failure lower bound ``1/(2h)``.

This reproduction extends the sweep beyond the paper's node-failure axis:
``mode="links"`` fails whole links instead of nodes (the network stays
fully connected, so degradation should be milder), and ``mode="mixed"``
splits the budget between the two.  Every run carries a
:class:`~repro.sim.monitor.RunMonitor`, so each row also reports the mean
cell-driven detection latency (epochs), the total drops and whether the
cell-conservation invariant held throughout.

Expected shape: throughput declines roughly in proportion to the failed
fraction; with most of the fabric alive, good throughput is maintained.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.coordinates import CoordinateSystem
from ..failures.manager import FailureManager
from ..sim.config import SimConfig
from ..sim.engine import Engine
from ..sim.monitor import RunMonitor
from ..workloads.generators import overlaid_permutations_workload
from .common import experiment_entrypoint, format_table

__all__ = ["Fig12Result", "Fig12Row", "run", "report"]


@dataclass
class Fig12Row:
    """One (h, failed fraction) cell of the sweep."""

    h: int
    fraction: float
    failed_count: int
    throughput: float
    guarantee: float
    detect_epochs: Optional[float]  # mean first-detection latency
    drops: int
    conserved: bool


@dataclass
class Fig12Result:
    """Throughput per (h, failed fraction)."""

    n: int
    mode: str
    rows: List[Fig12Row]


def _pick_links(coords: CoordinateSystem, count: int,
                rng: random.Random) -> List[Tuple[int, int]]:
    """Sample ``count`` distinct undirected neighbour links."""
    all_links = sorted(
        (a, b)
        for a in range(coords.n)
        for b in coords.all_neighbors(a)
        if a < b
    )
    return rng.sample(all_links, count) if count else []


def _run_cell(
    h: int,
    fraction: float,
    n: int,
    duration: int,
    flow_cells: int,
    permutations: int,
    propagation_delay: int,
    seed: int,
    mode: str,
    detection_epochs: int,
) -> Fig12Row:
    """One (h, failed fraction) cell — module-level so pools can run it."""
    coords = CoordinateSystem.shared(n, h)
    n_links = n * h * (coords.r - 1) // 2
    rng = random.Random(seed + int(fraction * 1000))
    node_frac = {"nodes": fraction, "links": 0.0,
                 "mixed": fraction / 2}[mode]
    link_frac = {"nodes": 0.0, "links": fraction,
                 "mixed": fraction / 2}[mode]
    failed_count = int(round(node_frac * n))
    failed = rng.sample(range(n), failed_count) if failed_count else []
    link_count = int(round(link_frac * n_links))
    failed_links = _pick_links(coords, link_count, rng)
    alive = [i for i in range(n) if i not in set(failed)]
    cfg = SimConfig(
        n=n, h=h, duration=duration,
        propagation_delay=propagation_delay,
        congestion_control="hbh+spray", seed=seed,
    )
    workload = overlaid_permutations_workload(
        cfg, size_cells=flow_cells, count=permutations, nodes=alive
    )
    manager = FailureManager(
        failed_nodes=failed, failed_links=failed_links,
        detection_epochs=detection_epochs,
    )
    engine = Engine(cfg, workload=workload, failure_manager=manager)
    monitor = RunMonitor().attach(engine)
    engine.run()
    return Fig12Row(
        h=h,
        fraction=fraction,
        failed_count=failed_count + link_count,
        throughput=engine.throughput(),
        guarantee=1.0 / (2 * h),
        detect_epochs=manager.mean_detection_epochs(),
        drops=engine.metrics.cells_dropped,
        conserved=not monitor.violations,
    )


@experiment_entrypoint
def run(
    *,
    n: int = 81,
    h_values: Sequence[int] = (2, 4),
    failed_fractions: Sequence[float] = (0.0, 0.02, 0.04, 0.06, 0.08),
    duration: int = 30_000,
    flow_cells: int = 20_000,
    permutations: int = 10,
    propagation_delay: int = 4,
    seed: int = 23,
    mode: str = "nodes",
    detection_epochs: int = 1,
    workers: int = 1,
) -> Fig12Result:
    """Sweep failed fractions for each tuning.

    Args:
        mode: what fails — ``"nodes"`` (the paper's sweep), ``"links"``
            (fail the same *fraction* of links instead), or ``"mixed"``
            (half the budget to each).
        detection_epochs: consecutive missed cells before a neighbour is
            declared down (forwarded to :class:`FailureManager`).
        workers: fan the grid cells out over a process pool when ``> 1``.
    """
    if mode not in ("nodes", "links", "mixed"):
        raise ValueError(f"unknown failure mode {mode!r}")
    from ..sim.parallel import sweep

    grid = [
        dict(h=h, fraction=fraction, n=n, duration=duration,
             flow_cells=flow_cells, permutations=permutations,
             propagation_delay=propagation_delay, seed=seed, mode=mode,
             detection_epochs=detection_epochs)
        for h in h_values
        for fraction in failed_fractions
    ]
    return Fig12Result(n=n, mode=mode,
                       rows=sweep(_run_cell, grid, workers=workers))


def report(result: Fig12Result) -> str:
    """Throughput vs failures, as in Fig. 12, plus resilience columns."""
    unit = {"nodes": "nodes", "links": "links", "mixed": "nodes+links"}
    table = format_table(
        ["h", "failed %", f"failed {unit[result.mode]}", "throughput",
         "no-failure bound", "detect (epochs)", "drops", "conserved"],
        [
            (
                row.h, f"{row.fraction*100:.0f}%", row.failed_count,
                row.throughput, row.guarantee,
                "-" if row.detect_epochs is None else row.detect_epochs,
                row.drops, "yes" if row.conserved else "NO",
            )
            for row in result.rows
        ],
        float_fmt="{:.3f}",
    )
    noun = {"nodes": "node", "links": "link", "mixed": "mixed node+link"}
    return (
        f"Figure 12 — throughput under {noun[result.mode]} failures, "
        f"N={result.n}\n"
        f"{table}\n"
        "Throughput should decline roughly in proportion to the failed "
        "fraction while staying near the bound when most of the fabric is "
        "alive; detection latency is about one epoch plus the propagation "
        "delay, and every run must conserve cells."
    )
