"""Figure 12: throughput under node failures.

The paper fails 0-8% of a 10K-node network (h=2 and h=4), drives the rest
with 10 overlaid permutation matrices (permutations exclude failed nodes),
runs 2M timeslots and reports the average destination throughput of the
remaining nodes, alongside the no-failure lower bound ``1/(2h)``.

Expected shape: throughput declines roughly in proportion to the failed
fraction; with most nodes alive, good throughput is maintained.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..failures.manager import FailureManager
from ..sim.config import SimConfig
from ..sim.engine import Engine
from ..workloads.generators import overlaid_permutations_workload
from .common import format_table

__all__ = ["Fig12Result", "run", "report"]


@dataclass
class Fig12Result:
    """Throughput per (h, failed fraction)."""

    n: int
    rows: List[Tuple[int, float, int, float, float]]
    # (h, failed_fraction, failed_count, throughput, guarantee)


def run(
    n: int = 81,
    h_values: Sequence[int] = (2, 4),
    failed_fractions: Sequence[float] = (0.0, 0.02, 0.04, 0.06, 0.08),
    duration: int = 30_000,
    flow_cells: int = 20_000,
    permutations: int = 10,
    propagation_delay: int = 4,
    seed: int = 23,
) -> Fig12Result:
    """Sweep failed-node fractions for each tuning."""
    rows: List[Tuple[int, float, int, float, float]] = []
    for h in h_values:
        for fraction in failed_fractions:
            rng = random.Random(seed + int(fraction * 1000))
            failed_count = int(round(fraction * n))
            failed = rng.sample(range(n), failed_count) if failed_count else []
            alive = [i for i in range(n) if i not in set(failed)]
            cfg = SimConfig(
                n=n, h=h, duration=duration,
                propagation_delay=propagation_delay,
                congestion_control="hbh+spray", seed=seed,
            )
            workload = overlaid_permutations_workload(
                cfg, size_cells=flow_cells, count=permutations, nodes=alive
            )
            manager = FailureManager(failed_nodes=failed)
            engine = Engine(cfg, workload=workload, failure_manager=manager)
            engine.run()
            rows.append(
                (h, fraction, failed_count, engine.throughput(),
                 1.0 / (2 * h))
            )
    return Fig12Result(n=n, rows=rows)


def report(result: Fig12Result) -> str:
    """Throughput vs failures, as in Fig. 12."""
    table = format_table(
        ["h", "failed %", "failed nodes", "throughput", "no-failure bound"],
        [
            (h, f"{frac*100:.0f}%", count, tput, bound)
            for h, frac, count, tput, bound in result.rows
        ],
        float_fmt="{:.3f}",
    )
    return (
        f"Figure 12 — throughput under node failures, N={result.n}\n"
        f"{table}\n"
        "Throughput should decline roughly in proportion to the failed "
        "fraction while staying near the bound when most nodes are alive."
    )
