"""Figure 14 (Appendix B.1): mean size-normalised FCTs.

The mean view of the Fig. 10/11 experiments.  Expected shape: priority
improves the mean over none (its ranking optimises mean FCT), but
HBH+spray — which actually reduces queue lengths — outperforms it even on
the mean.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..congestion.mechanisms import EVALUATION_ORDER
from ..workloads.distributions import bucket_label
from .common import experiment_entrypoint, format_table
from .fig10_shortflow import CcResult
from .fig10_shortflow import run as _run_shortflow
from .fig11_heavytail import run as _run_heavytail

__all__ = ["run", "report"]


@experiment_entrypoint
def run(
    *,
    workload_name: str = "short-flow",
    n: int = 16,
    h_values: Sequence[int] = (2, 4),
    mechanisms: Sequence[str] = EVALUATION_ORDER,
    duration: int = 40_000,
    propagation_delay: int = 8,
    seed: int = 5,
    load: Optional[float] = None,
    workers: int = 1,
) -> CcResult:
    """Run the CC grid (the mean statistics are computed alongside)."""
    if workload_name == "short-flow":
        return _run_shortflow(
            n=n, h_values=h_values, mechanisms=mechanisms, duration=duration,
            propagation_delay=propagation_delay, seed=seed, load=load,
            workers=workers,
        )
    if workload_name == "heavy-tailed":
        return _run_heavytail(
            n=n, h_values=h_values, mechanisms=mechanisms, duration=duration,
            propagation_delay=propagation_delay, seed=seed, load=load,
            workers=workers,
        )
    raise ValueError(f"unknown workload {workload_name!r}")


def report(result: CcResult) -> str:
    """Mean size-normalised FCT per bucket per mechanism (Fig. 14)."""
    sections = []
    for h in sorted({c.h for c in result.cells}):
        cells = [c for c in result.cells if c.h == h]
        buckets = sorted({b for c in cells for b in c.fct_mean})
        rows = []
        for b in buckets:
            row: List[object] = [bucket_label(b)]
            row.extend(c.fct_mean.get(b, float("nan")) for c in cells)
            rows.append(row)
        table = format_table(
            ["flow size"] + [c.mechanism for c in cells], rows
        )
        sections.append(f"--- h={h} ---\n{table}")
    return (
        f"Figure 14 — mean size-normalised FCT, {result.workload_name} "
        f"workload, N={result.n}\n" + "\n\n".join(sections)
    )
