"""Figure 7: on-chip memory scaling — Shoal vs Shale h=2 and h=4.

The paper plots the total on-chip memory an end host needs as N grows from
~5,000 to ~25,000: Shoal (representative of RotorNet and Sirius, which share
its schedule and routing) climbs into the gigabytes while Shale h=2 stays
around a megabyte and h=4 below that — orders of magnitude apart.

Shale's curve is produced from its memory model (Section 4.3) dimensioned by
the active-bucket and PIEO-occupancy maxima of the scalability runs (Fig.
13), doubled for headroom; this regenerator can either take those
observations from a supplied dict or fall back to the paper-reported
magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.memory_model import ShaleMemoryModel, shoal_on_chip_bytes
from .common import experiment_entrypoint, format_table

__all__ = ["Fig07Result", "run", "report", "DEFAULT_OBSERVATIONS"]

#: (active buckets, PIEO depth) to provision per tuning, already including
#: the paper's 2x headroom.  Magnitudes follow Fig. 13: h=2 needs hundreds
#: of active buckets and short PIEO queues; h=4 stays nearly flat.
DEFAULT_OBSERVATIONS: Dict[int, Tuple[int, int]] = {
    2: (1200, 100),
    4: (250, 150),
}


@dataclass
class Fig07Result:
    """Memory requirement (bytes) per system per network size."""

    sizes: List[int]
    shoal: List[int]
    shale: Dict[int, List[int]]  # h -> bytes per size


@experiment_entrypoint
def run(
    *,
    sizes: Optional[Sequence[int]] = None,
    h_values: Sequence[int] = (2, 4),
    observations: Optional[Dict[int, Tuple[int, int]]] = None,
    token_queue_depth: int = 16,
) -> Fig07Result:
    """Evaluate the memory models over a sweep of network sizes."""
    sizes = list(sizes) if sizes is not None else [
        2_500, 5_000, 10_000, 15_000, 20_000, 25_000
    ]
    observations = observations or DEFAULT_OBSERVATIONS
    shale: Dict[int, List[int]] = {}
    for h in h_values:
        active, pieo = observations[h]
        shale[h] = [
            ShaleMemoryModel(
                n=n, h=h, active_buckets=active, pieo_depth=pieo,
                token_queue_depth=token_queue_depth,
            ).on_chip_bytes()
            for n in sizes
        ]
    return Fig07Result(
        sizes=sizes,
        shoal=[shoal_on_chip_bytes(n) for n in sizes],
        shale=shale,
    )


def _human(num_bytes: int) -> str:
    for unit in ("B", "kB", "MB", "GB"):
        if num_bytes < 1024:
            return f"{num_bytes:.3g} {unit}"
        num_bytes /= 1024
    return f"{num_bytes:.3g} TB"


def report(result: Fig07Result) -> str:
    """The Fig. 7 series as a table plus the scaling-gap takeaway."""
    headers = ["N", "Shoal (h=1 family)"] + [
        f"Shale h={h}" for h in sorted(result.shale)
    ]
    rows = []
    for i, n in enumerate(result.sizes):
        row = [f"{n:,}", _human(result.shoal[i])]
        row.extend(_human(result.shale[h][i]) for h in sorted(result.shale))
        rows.append(row)
    table = format_table(headers, rows)
    gap = result.shoal[-1] / min(
        series[-1] for series in result.shale.values()
    )
    return (
        "Figure 7 — total on-chip memory requirement\n"
        f"{table}\n"
        f"At N={result.sizes[-1]:,} the Shoal-family design needs "
        f"{gap:,.0f}x more on-chip memory than the leanest Shale tuning "
        "(paper: orders of magnitude)."
    )
