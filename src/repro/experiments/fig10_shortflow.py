"""Figures 10 / 15 (top): congestion control on the short flow workload.

The paper runs all eight mechanisms on the short flow workload (primarily
path-collision congestion) for h=2 and h=4 at loads near each tuning's
throughput guarantee, and reports per mechanism:

* 99.9% size-normalised FCT per flow-size bucket (Fig. 10 bottom),
* 99.99% per-node total buffer occupancy (Fig. 10 top),
* max and 99% per-queue lengths (Fig. 15),
* achieved throughput (text: all within 2.5% of the target load).

Expected shape: spray-short and HBH+spray win tails and buffers; priority
trades tail for mean; ISD/RD barely differ from none (path collisions are
not an end-to-end phenomenon).
"""

from __future__ import annotations

from dataclasses import dataclass, replace, field
from typing import Dict, List, Optional, Sequence

from ..analysis.fct import fct_table
from ..congestion.mechanisms import EVALUATION_ORDER
from ..sim.config import SimConfig
from ..workloads.distributions import bucket_label
from .common import experiment_entrypoint, format_table, load_for, run_cc_experiment, workload_for

__all__ = ["CcResult", "CcCell", "run", "report"]


@dataclass
class CcCell:
    """Results for one (mechanism, h) cell of the comparison."""

    mechanism: str
    h: int
    fct_tail: Dict[int, float]
    fct_mean: Dict[int, float]
    buffer_p9999: float
    max_queue: int
    queue_p99: float
    throughput: float
    target_load: float
    drops: int
    trims: int


@dataclass
class CcResult:
    """All cells of a Fig. 10/11-style experiment."""

    workload_name: str
    n: int
    cells: List[CcCell] = field(default_factory=list)

    def cell(self, mechanism: str, h: int) -> CcCell:
        for cell in self.cells:
            if cell.mechanism == mechanism and cell.h == h:
                return cell
        raise KeyError((mechanism, h))


def _run_cell(
    mechanism: str,
    h: int,
    n: int,
    duration: int,
    propagation_delay: int,
    workload_name: str,
    seed: int,
    load: Optional[float],
) -> CcCell:
    """One (mechanism, h) cell — module-level so process pools can run it."""
    base = SimConfig(
        n=n, h=h, duration=duration,
        propagation_delay=propagation_delay,
        congestion_control="none", seed=seed,
    )
    target = load if load is not None else load_for(h)
    workload = workload_for(base, workload_name, load=target)
    cfg = replace(base, congestion_control=mechanism)
    engine = run_cc_experiment(cfg, workload)
    table = fct_table(engine.flows.completed, propagation_delay)
    metrics = engine.metrics
    return CcCell(
        mechanism=mechanism,
        h=h,
        fct_tail=table.tail(99.9),
        fct_mean=table.mean(),
        buffer_p9999=metrics.buffer_occupancy_percentile(99.99),
        max_queue=metrics.max_queue_length,
        queue_p99=metrics.queue_length_percentile(99.0),
        throughput=metrics.mean_throughput_cells_per_slot(duration, n),
        target_load=target,
        drops=metrics.cells_dropped,
        trims=metrics.cells_trimmed,
    )


@experiment_entrypoint
def run(
    *,
    n: int = 16,
    h_values: Sequence[int] = (2, 4),
    mechanisms: Sequence[str] = EVALUATION_ORDER,
    duration: int = 40_000,
    propagation_delay: int = 8,
    workload_name: str = "short-flow",
    seed: int = 5,
    load: Optional[float] = None,
    workers: int = 1,
) -> CcResult:
    """Run the full mechanism x tuning grid on one workload.

    ``workers > 1`` fans the independent grid cells out over a process pool
    (each cell is its own simulation; results are identical to sequential).
    """
    from ..sim.parallel import sweep

    grid = [
        dict(
            mechanism=mechanism, h=h, n=n, duration=duration,
            propagation_delay=propagation_delay,
            workload_name=workload_name, seed=seed, load=load,
        )
        for h in h_values
        for mechanism in mechanisms
    ]
    result = CcResult(workload_name=workload_name, n=n)
    result.cells.extend(sweep(_run_cell, grid, workers=workers))
    return result


def report(result: CcResult, tail_q: float = 99.9) -> str:
    """Fig. 10-shaped report: buffers per mechanism + FCT per bucket."""
    sections = []
    h_values = sorted({c.h for c in result.cells})
    for h in h_values:
        cells = [c for c in result.cells if c.h == h]
        buf_rows = [
            (c.mechanism, c.buffer_p9999, c.max_queue, c.queue_p99,
             c.throughput, c.target_load)
            for c in cells
        ]
        buf_table = format_table(
            ["mechanism", "buffer p99.99", "max queue", "queue p99",
             "throughput", "target L"],
            buf_rows,
        )
        buckets = sorted({b for c in cells for b in c.fct_tail})
        fct_rows = []
        for b in buckets:
            row: List[object] = [bucket_label(b)]
            row.extend(c.fct_tail.get(b, float("nan")) for c in cells)
            fct_rows.append(row)
        fct_table_text = format_table(
            ["flow size"] + [c.mechanism for c in cells], fct_rows
        )
        sections.append(
            f"--- h={h} ---\n{buf_table}\n\n"
            f"99.9% size-normalised FCT per bucket:\n{fct_table_text}"
        )
    return (
        f"Congestion control on the {result.workload_name} workload, "
        f"N={result.n}\n" + "\n\n".join(sections)
    )
