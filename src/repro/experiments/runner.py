"""Command-line entry point for the experiment regenerators.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig01
    python -m repro.experiments.runner fig11 --set n=64 --set duration=60000
    python -m repro.experiments.runner all --out results/

``--set key=value`` forwards keyword arguments to the experiment's ``run()``
(values are parsed as Python literals, so ``--set h_values=(2,4)`` works).
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from . import ALL_EXPERIMENTS

__all__ = ["main", "run_experiment"]


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``key=value`` pairs; values are Python literals when possible."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            value: Any = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw  # leave as a string (e.g. workload names)
        out[key.strip()] = value
    return out


def run_experiment(name: str, overrides: Optional[Dict[str, Any]] = None) -> str:
    """Run one experiment and return its text report."""
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(ALL_EXPERIMENTS)}"
        )
    result = module.run(**(overrides or {}))
    return module.report(result)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate figures from the Shale paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig01..fig17, appd) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a run() keyword argument (repeatable)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write <experiment>.txt reports into",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for name, module in sorted(ALL_EXPERIMENTS.items()):
            doc = (module.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:8s} {summary}")
        return 0

    names = (
        sorted(ALL_EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    overrides = _parse_overrides(args.overrides)
    status = 0
    for name in names:
        started = time.time()
        try:
            report = run_experiment(name, overrides if len(names) == 1 else {})
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        elapsed = time.time() - started
        print(report)
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(report + "\n")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
