"""Command-line entry point for the experiment regenerators.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig01
    python -m repro.experiments.runner fig11 --set n=64 --set duration=60000
    python -m repro.experiments.runner all --out results/
    python -m repro.experiments.runner fig08 --telemetry out/

``--set key=value`` forwards keyword arguments to the experiment's ``run()``
(values are parsed as Python literals, so ``--set h_values=(2,4)`` works).
During an ``all`` sweep each override is applied to every experiment whose
``run()`` accepts the key (checked via ``inspect.signature``); experiments
that don't accept it are skipped with a warning rather than silently
dropping the override.

``--telemetry DIR`` instruments every engine the experiments build (see
:mod:`repro.obs`) and writes machine-readable artifacts next to the text
reports: ``<experiment>.json`` (result + per-run summary/series/manifest,
byte-identical across runs with the same seed), ``<experiment>.runtime.json``
(wall clock, slots/sec, peak RSS) and ``<experiment>.events.jsonl`` (the
structured event log).

``--workers N`` (default :func:`repro.sim.parallel.default_workers`) fans
each experiment's grid cells out over a process pool — both for a single
experiment and for every experiment of an ``all`` sweep.  Results are
byte-identical to sequential runs; pass ``--workers 1`` to force
sequential execution.

``--cell-retries N`` sets the crash-retry budget for sweep cells that die
inside a pool worker (default 1); each retry runs sequentially in the
parent after a logged exponential backoff, and the attempt count lands in
the runtime sidecar.  ``--seed S`` forwards a master seed to every
experiment (shorthand for ``--set seed=S``).

``--cache DIR`` (or the ``REPRO_CACHE`` environment variable) installs a
content-addressed cell cache (:mod:`repro.sim.cellcache`): grid cells
already computed with identical code + configuration are restored instead
of re-simulated, and per-experiment hit/miss counts are reported.

``--backend NAME`` installs an engine backend (:mod:`repro.sim.backends`)
as the process default for every engine the run builds: ``object`` (the
reference per-node pipelines) or ``vector`` (the vectorized numpy slot
stepper, bit-exact and ~5x faster at n=256 where it applies).  The choice
lands in every resolved config, so cell-cache keys and checkpoints never
mix backends.

``--checkpoint-dir DIR`` (with ``--checkpoint-every N``, default 100000
timeslots) installs a :class:`~repro.sim.checkpoint.CheckpointPolicy`:
every sweep cell periodically snapshots its engines into DIR, a cell that
dies (crash, OOM, SIGKILL) resumes from its last snapshot instead of
recomputing from slot 0, and the snapshots are removed when a cell
completes cleanly.  Resumed results are bit-identical to uninterrupted
runs.

A failing experiment no longer aborts an ``all`` sweep: the failure is
reported, the remaining experiments still run, and the exit status is
non-zero.
"""

from __future__ import annotations

import argparse
import ast
import inspect
import os
import pathlib
import sys
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from . import ALL_EXPERIMENTS

__all__ = ["main", "run_experiment", "run_experiment_result",
           "split_overrides"]


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``key=value`` pairs; values are Python literals when possible."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            value: Any = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw  # leave as a string (e.g. workload names)
        out[key.strip()] = value
    return out


def split_overrides(
    module, overrides: Dict[str, Any]
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Partition ``overrides`` into (accepted, rejected) for ``module.run``.

    A ``run()`` taking ``**kwargs`` accepts everything.
    """
    params = inspect.signature(module.run).parameters
    if any(p.kind == inspect.Parameter.VAR_KEYWORD
           for p in params.values()):
        return dict(overrides), {}
    accepted = {k: v for k, v in overrides.items() if k in params}
    rejected = {k: v for k, v in overrides.items() if k not in params}
    return accepted, rejected


def accepts_workers(module) -> bool:
    """Whether ``module.run`` has an explicit ``workers`` parameter.

    A bare ``**kwargs`` does NOT count — injecting ``workers`` into a
    ``run()`` that merely swallows keywords would change its behaviour
    silently, so only experiments that declare the parameter get it.
    """
    params = inspect.signature(module.run).parameters
    param = params.get("workers")
    return param is not None and param.kind in (
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
        inspect.Parameter.KEYWORD_ONLY,
    )


def run_experiment_result(
    name: str, overrides: Optional[Dict[str, Any]] = None
) -> Tuple[Any, str]:
    """Run one experiment; return ``(result object, text report)``."""
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(ALL_EXPERIMENTS)}"
        )
    result = module.run(**(overrides or {}))
    return result, module.report(result)


def run_experiment(name: str, overrides: Optional[Dict[str, Any]] = None) -> str:
    """Run one experiment and return its text report."""
    return run_experiment_result(name, overrides)[1]


def _write_telemetry(directory: pathlib.Path, name: str, result: Any,
                     overrides: Dict[str, Any], capture) -> None:
    """Write the machine-readable artifacts for one experiment.

    ``<name>.json`` holds only deterministic data (result, summaries,
    series, run manifests) and is byte-identical across runs with the same
    seed; volatile measurements go to ``<name>.runtime.json`` and the event
    stream to ``<name>.events.jsonl``.
    """
    from ..obs.events import encode_event
    from ..obs.serialize import canonical_json, to_jsonable
    from .common import ExperimentResult

    runs, runtimes, events = capture.collect_bundle()
    directory.mkdir(parents=True, exist_ok=True)
    run_runtime = None
    if isinstance(result, ExperimentResult):
        # deterministic payload and volatile runtime travel to different
        # files, so <name>.json stays byte-identical across (resumed) runs
        run_runtime = to_jsonable(result.runtime)
        result = result.payload
    payload = {
        "schema": 1,
        "experiment": name,
        "overrides": to_jsonable(overrides),
        "result": to_jsonable(result),
        "runs": runs,
    }
    (directory / f"{name}.json").write_text(canonical_json(payload) + "\n")
    (directory / f"{name}.runtime.json").write_text(
        canonical_json({"experiment": name, "runs": runtimes,
                        "experiment_runtime": run_runtime}) + "\n"
    )
    with (directory / f"{name}.events.jsonl").open("w") as fh:
        for record in events:
            fh.write(encode_event(record))
            fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate figures from the Shale paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig01..fig17, appd) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a run() keyword argument (repeatable)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write <experiment>.txt reports into",
    )
    parser.add_argument(
        "--telemetry",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="instrument the runs and write <experiment>.json results, "
             "time series, manifests and event logs into DIR",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for each experiment's grid cells "
             "(default: one per spare core, capped; 1 = sequential)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="master seed forwarded to every experiment's run() "
             "(shorthand for --set seed=S)",
    )
    parser.add_argument(
        "--designs",
        nargs="+",
        default=None,
        metavar="SCHED:ROUTING[:H]",
        help="cross-design comparison specs for fig01 (e.g. ebs:vlb "
             "ebs:semi_oblivious srrd:vlb); shorthand for "
             "--set designs=[...]",
    )
    parser.add_argument(
        "--cell-retries",
        type=int,
        default=None,
        metavar="N",
        help="crash-retry budget for sweep cells that die inside a pool "
             "worker (default: 1; 0 = fail fast); retried attempts are "
             "logged with backoff and recorded in the runtime sidecar",
    )
    parser.add_argument(
        "--cache",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="content-addressed cell cache directory (default: the "
             "REPRO_CACHE environment variable, if set)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="engine backend for every engine the run builds "
             "(\"object\" | \"vector\" | \"shard\"; default: the process "
             "default, normally \"object\") — see repro.sim.backends",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="worker-process count for the \"shard\" backend (default: 4); "
             "results are bit-identical for every K",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper-scale size grid for experiments that have one "
             "(fig13: largest points reach N=10,000 nodes); shorthand for "
             "--set paper_scale=True",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="periodically snapshot every sweep cell's engines into DIR "
             "and resume interrupted cells from their last snapshot "
             "(bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=100_000,
        metavar="N",
        help="timeslots between snapshots (default: %(default)s; "
             "only meaningful with --checkpoint-dir)",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for name, module in sorted(ALL_EXPERIMENTS.items()):
            doc = (module.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:8s} {summary}")
        return 0

    if args.experiment != "all" and args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    names = (
        sorted(ALL_EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    overrides = _parse_overrides(args.overrides)
    if args.seed is not None:
        overrides.setdefault("seed", args.seed)
    if args.designs is not None:
        overrides.setdefault("designs", tuple(args.designs))
    if args.paper_scale:
        overrides.setdefault("paper_scale", True)

    if args.cell_retries is not None:
        from ..sim.parallel import set_default_cell_retries

        set_default_cell_retries(args.cell_retries)

    if args.workers is not None:
        workers = args.workers
    else:
        from ..sim.parallel import default_workers

        workers = default_workers()

    cache = None
    previous_cache = None
    cache_dir = args.cache or os.environ.get("REPRO_CACHE") or None
    if cache_dir:
        from ..sim.cellcache import CellCache, set_default_cache

        cache = CellCache(cache_dir)
        previous_cache = set_default_cache(cache)

    previous_backend = None
    if args.backend is not None:
        from ..sim.backends import set_default_backend

        # validates the name up front; forked sweep workers inherit the
        # module-level default, and it lands in every resolved SimConfig
        # (hence in cell-cache keys and checkpoint validation)
        previous_backend = set_default_backend(args.backend)

    previous_shards = None
    if args.shards is not None:
        from ..sim.backends import set_default_shards

        # validates up front; shard-pool workers are spawned lazily by the
        # backend, so setting the module default is all the wiring needed
        previous_shards = set_default_shards(args.shards)

    policy = None
    previous_policy = None
    if args.checkpoint_dir is not None:
        from ..sim.checkpoint import CheckpointPolicy, set_default_policy

        policy = CheckpointPolicy(args.checkpoint_dir,
                                  every=args.checkpoint_every)
        previous_policy = set_default_policy(policy)

    try:
        return _run_all(names, overrides, workers, cache, args)
    finally:
        if cache is not None:
            from ..sim.cellcache import set_default_cache

            set_default_cache(previous_cache)
        if policy is not None:
            from ..sim.checkpoint import set_default_policy

            set_default_policy(previous_policy)
        if previous_backend is not None:
            from ..sim.backends import set_default_backend

            set_default_backend(previous_backend)
        if previous_shards is not None:
            from ..sim.backends import set_default_shards

            set_default_shards(previous_shards)


def _run_all(names: List[str], overrides: Dict[str, Any], workers: int,
             cache, args) -> int:
    sweep_mode = len(names) > 1
    failed: List[str] = []
    for index, name in enumerate(names, 1):
        module = ALL_EXPERIMENTS[name]
        if sweep_mode:
            # apply each override to every experiment that accepts the key;
            # warn about the rest instead of silently dropping everything
            accepted, rejected = split_overrides(module, overrides)
            if rejected:
                print(
                    f"[{name}] run() does not accept override(s): "
                    f"{', '.join(sorted(rejected))} (skipped for this "
                    f"experiment)",
                    file=sys.stderr,
                )
            print(
                f"[{index}/{len(names)}] {name} ...",
                file=sys.stderr, flush=True,
            )
        else:
            accepted = dict(overrides)  # single run: unknown keys fail loudly
        if "workers" not in accepted and accepts_workers(module):
            accepted["workers"] = workers
        started = time.time()
        stats0 = cache.stats() if cache is not None else None
        capture = None
        try:
            if args.telemetry is not None:
                from ..obs.capture import TelemetryCapture

                with TelemetryCapture() as capture:
                    result, report = run_experiment_result(name, accepted)
            else:
                result, report = run_experiment_result(name, accepted)
        except Exception:
            # one broken experiment must not abort the whole sweep
            failed.append(name)
            traceback.print_exc()
            print(f"[{name} FAILED after {time.time() - started:.1f}s]",
                  file=sys.stderr)
            continue
        elapsed = time.time() - started
        print(report)
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()
        if cache is not None:
            stats = cache.stats()
            print(
                f"[{name}] cache: "
                f"{stats['hits'] - stats0['hits']} hits, "
                f"{stats['misses'] - stats0['misses']} misses, "
                f"{stats['writes'] - stats0['writes']} writes",
                file=sys.stderr,
            )
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(report + "\n")
        if args.telemetry is not None:
            _write_telemetry(args.telemetry, name, result, accepted, capture)
    if failed:
        print(
            f"{len(failed)} of {len(names)} experiment(s) failed: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
