"""Figure 1: throughput vs intrinsic latency across Shale tunings.

The paper plots, for a 100,000-node network, the (throughput guarantee,
intrinsic latency) point achieved by every tuning ``h``; the SRRD systems
(RotorNet/Shoal/Sirius) sit at the ``h = 1`` end with latency ~N timeslots,
while larger ``h`` buys multiple orders of magnitude lower latency at a
throughput cost of ``1/(2h)``.

This regenerator is purely analytical — the curve is a property of the
schedule family, not of a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.theory import TradeoffPoint, tradeoff_curve
from .common import format_table

__all__ = ["Fig01Result", "run", "report"]


@dataclass
class Fig01Result:
    """The Fig. 1 series: one point per feasible ``h``."""

    n: int
    slot_ns: float
    points: List[TradeoffPoint]


def run(n: int = 100_000, slot_ns: float = 5.632,
        max_h: Optional[int] = None) -> Fig01Result:
    """Regenerate the Fig. 1 curve (paper scale by default — it is cheap)."""
    return Fig01Result(n=n, slot_ns=slot_ns,
                       points=tradeoff_curve(n, slot_ns, max_h))


def report(result: Fig01Result) -> str:
    """Text rendering of the curve with the paper's headline comparisons."""
    rows = [
        (
            f"h={p.h}",
            p.radix,
            p.throughput,
            p.latency_slots,
            p.latency_ns / 1e3,
        )
        for p in result.points
    ]
    table = format_table(
        ["tuning", "radix", "throughput", "latency (slots)", "latency (us)"],
        rows,
        float_fmt="{:.4g}",
    )
    srrd = result.points[0]
    best = min(result.points, key=lambda p: p.latency_slots)
    ratio = srrd.latency_slots / best.latency_slots
    return (
        f"Figure 1 — throughput/latency tradeoff, N={result.n:,}\n"
        f"{table}\n"
        f"SRRD (h=1) latency {srrd.latency_slots:,} slots vs best tuning "
        f"h={best.h}: {best.latency_slots:,} slots "
        f"({ratio:,.0f}x lower, matching the paper's 'multiple orders of "
        f"magnitude')."
    )
