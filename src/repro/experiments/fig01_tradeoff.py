"""Figure 1: throughput vs intrinsic latency across Shale tunings.

The paper plots, for a 100,000-node network, the (throughput guarantee,
intrinsic latency) point achieved by every tuning ``h``; the SRRD systems
(RotorNet/Shoal/Sirius) sit at the ``h = 1`` end with latency ~N timeslots,
while larger ``h`` buys multiple orders of magnitude lower latency at a
throughput cost of ``1/(2h)``.

This regenerator is purely analytical — the curve is a property of the
schedule family, not of a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.theory import (
    TradeoffPoint,
    effective_radix,
    feasible_h_values,
    throughput_guarantee,
)
from .common import experiment_entrypoint, format_table

__all__ = ["Fig01Result", "run", "report"]


@dataclass
class Fig01Result:
    """The Fig. 1 series: one point per feasible ``h``."""

    n: int
    slot_ns: float
    points: List[TradeoffPoint]


def _point(n: int, slot_ns: float, h: int) -> TradeoffPoint:
    """One tuning's (throughput, latency) point — module-level for sweeps."""
    r = effective_radix(n, h)
    latency = 2 * h * (r - 1)
    return TradeoffPoint(
        h=h,
        radix=r,
        throughput=throughput_guarantee(h),
        latency_slots=latency,
        latency_ns=latency * slot_ns,
    )


@experiment_entrypoint
def run(*, n: int = 100_000, slot_ns: float = 5.632,
        max_h: Optional[int] = None, workers: int = 1) -> Fig01Result:
    """Regenerate the Fig. 1 curve (paper scale by default — it is cheap)."""
    from ..sim.parallel import sweep

    grid = [dict(n=n, slot_ns=slot_ns, h=h)
            for h in feasible_h_values(n, max_h)]
    return Fig01Result(n=n, slot_ns=slot_ns,
                       points=sweep(_point, grid, workers=workers))


def report(result: Fig01Result) -> str:
    """Text rendering of the curve with the paper's headline comparisons."""
    rows = [
        (
            f"h={p.h}",
            p.radix,
            p.throughput,
            p.latency_slots,
            p.latency_ns / 1e3,
        )
        for p in result.points
    ]
    table = format_table(
        ["tuning", "radix", "throughput", "latency (slots)", "latency (us)"],
        rows,
        float_fmt="{:.4g}",
    )
    srrd = result.points[0]
    best = min(result.points, key=lambda p: p.latency_slots)
    ratio = srrd.latency_slots / best.latency_slots
    return (
        f"Figure 1 — throughput/latency tradeoff, N={result.n:,}\n"
        f"{table}\n"
        f"SRRD (h=1) latency {srrd.latency_slots:,} slots vs best tuning "
        f"h={best.h}: {best.latency_slots:,} slots "
        f"({ratio:,.0f}x lower, matching the paper's 'multiple orders of "
        f"magnitude')."
    )
