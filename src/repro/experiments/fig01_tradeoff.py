"""Figure 1: throughput vs intrinsic latency across Shale tunings.

The paper plots, for a 100,000-node network, the (throughput guarantee,
intrinsic latency) point achieved by every tuning ``h``; the SRRD systems
(RotorNet/Shoal/Sirius) sit at the ``h = 1`` end with latency ~N timeslots,
while larger ``h`` buys multiple orders of magnitude lower latency at a
throughput cost of ``1/(2h)``.

The default regenerator is purely analytical — the curve is a property of
the schedule family, not of a simulation.  Passing ``designs=`` (CLI:
``python -m repro fig01 --designs ebs:vlb ebs:semi_oblivious srrd:vlb``)
extends the figure into a *cross-design comparison matrix*: each
``schedule:routing[:h]`` design point runs a small permutation-traffic
simulation (through the parallel sweep + cell cache like every other
experiment) and reports measured mean hops (the bandwidth cost VLB pays 2x
for), mean/last delivery latency, and the design's advertised guarantees
side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.theory import (
    TradeoffPoint,
    effective_radix,
    feasible_h_values,
    throughput_guarantee,
)
from .common import experiment_entrypoint, format_table

__all__ = ["Fig01Result", "run", "report"]


@dataclass
class Fig01Result:
    """The Fig. 1 series: one point per feasible ``h``.

    ``designs`` holds the optional cross-design comparison matrix — one row
    per requested ``schedule:routing[:h]`` design, measured by simulation.
    """

    n: int
    slot_ns: float
    points: List[TradeoffPoint]
    designs: Optional[List[Dict[str, Any]]] = field(default=None)


def _point(n: int, slot_ns: float, h: int) -> TradeoffPoint:
    """One tuning's (throughput, latency) point — module-level for sweeps."""
    r = effective_radix(n, h)
    latency = 2 * h * (r - 1)
    return TradeoffPoint(
        h=h,
        radix=r,
        throughput=throughput_guarantee(h),
        latency_slots=latency,
        latency_ns=latency * slot_ns,
    )


def parse_design(spec: str) -> Tuple[str, str, Optional[int]]:
    """Parse a ``schedule:routing[:h]`` design spec.

    The optional third component pins the tuning parameter; without it the
    design uses ``h=1`` for SRRD and ``h=2`` otherwise.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
        raise ValueError(
            f"bad design spec {spec!r}: expected 'schedule:routing' or "
            f"'schedule:routing:h' (e.g. 'ebs:vlb', 'srrd:vlb:1')"
        )
    h: Optional[int] = None
    if len(parts) == 3:
        try:
            h = int(parts[2])
        except ValueError:
            raise ValueError(
                f"bad design spec {spec!r}: h must be an integer, "
                f"got {parts[2]!r}"
            ) from None
    return parts[0], parts[1], h


def _design_cell(*, design: str, schedule: str, routing: str, n: int, h: int,
                 duration: int, size_cells: int, seed: int,
                 congestion_control: str) -> Dict[str, Any]:
    """One design's permutation-traffic measurement — module-level for sweeps."""
    from ..sim.config import SimConfig
    from ..sim.engine import Engine
    from ..workloads.generators import permutation_workload

    config = SimConfig(
        n=n, h=h, duration=duration, seed=seed,
        congestion_control=congestion_control, propagation_delay=2,
        schedule=schedule, routing=routing,
    )
    workload = permutation_workload(
        config, size_cells=size_cells, rng=random.Random(seed)
    )
    engine = Engine(config, workload=workload)
    stats = {"hops": 0, "latency": 0, "count": 0, "last_t": 0}

    def _on_delivery(cell, t):
        stats["hops"] += cell.hops
        stats["latency"] += t - cell.created_at
        stats["count"] += 1
        stats["last_t"] = t

    engine.delivery_hook = _on_delivery
    engine.run(config.duration)
    engine.run_until_quiescent(max_extra=100_000)
    delivered = stats["count"]
    sched = engine.schedule
    return {
        "design": design,
        "schedule": schedule,
        "routing": routing,
        "n": n,
        "h": h,
        "cells_injected": engine.metrics.cells_injected,
        "cells_delivered": delivered,
        "mean_hops": stats["hops"] / delivered if delivered else float("nan"),
        "mean_latency_slots":
            stats["latency"] / delivered if delivered else float("nan"),
        "makespan_slots": stats["last_t"] + 1 if delivered else 0,
        "throughput_guarantee": sched.throughput_guarantee(),
        "max_intrinsic_latency": sched.max_intrinsic_latency(),
        "max_path_hops": engine.routing.max_path_hops(),
    }


@experiment_entrypoint
def run(*, n: int = 100_000, slot_ns: float = 5.632,
        max_h: Optional[int] = None, workers: int = 1,
        designs: Optional[Sequence[str]] = None, sim_n: int = 16,
        sim_duration: int = 2_000, sim_cells: int = 20,
        congestion_control: str = "hbh+spray",
        seed: Optional[int] = None) -> Fig01Result:
    """Regenerate the Fig. 1 curve (paper scale by default — it is cheap).

    With ``designs`` (``schedule:routing[:h]`` specs), additionally run the
    cross-design comparison matrix at the small simulated scale ``sim_n``.
    """
    from ..sim.parallel import sweep

    grid = [dict(n=n, slot_ns=slot_ns, h=h)
            for h in feasible_h_values(n, max_h)]
    points = sweep(_point, grid, workers=workers)
    matrix: Optional[List[Dict[str, Any]]] = None
    if designs:
        from ..core.strategies import validate_design

        cell_seed = 1 if seed is None else seed
        design_grid = []
        for spec in designs:
            schedule, routing, h = parse_design(spec)
            if h is None:
                h = 1 if schedule == "srrd" else 2
            # fail fast with the registry/feasibility message instead of
            # inside a sweep worker
            validate_design(schedule, routing, sim_n, h)
            design_grid.append(dict(
                design=spec, schedule=schedule, routing=routing,
                n=sim_n, h=h, duration=sim_duration, size_cells=sim_cells,
                seed=cell_seed, congestion_control=congestion_control,
            ))
        matrix = sweep(_design_cell, design_grid, workers=workers)
    return Fig01Result(n=n, slot_ns=slot_ns, points=points, designs=matrix)


def report(result: Fig01Result) -> str:
    """Text rendering of the curve with the paper's headline comparisons."""
    rows = [
        (
            f"h={p.h}",
            p.radix,
            p.throughput,
            p.latency_slots,
            p.latency_ns / 1e3,
        )
        for p in result.points
    ]
    table = format_table(
        ["tuning", "radix", "throughput", "latency (slots)", "latency (us)"],
        rows,
        float_fmt="{:.4g}",
    )
    srrd = result.points[0]
    best = min(result.points, key=lambda p: p.latency_slots)
    ratio = srrd.latency_slots / best.latency_slots
    text = (
        f"Figure 1 — throughput/latency tradeoff, N={result.n:,}\n"
        f"{table}\n"
        f"SRRD (h=1) latency {srrd.latency_slots:,} slots vs best tuning "
        f"h={best.h}: {best.latency_slots:,} slots "
        f"({ratio:,.0f}x lower, matching the paper's 'multiple orders of "
        f"magnitude')."
    )
    designs = getattr(result, "designs", None)
    if designs:
        rows = [
            (
                row["design"],
                f"n={row['n']} h={row['h']}",
                row["mean_hops"],
                row["max_path_hops"],
                row["mean_latency_slots"],
                row["makespan_slots"],
                row["throughput_guarantee"],
                f"{row['cells_delivered']}/{row['cells_injected']}",
            )
            for row in designs
        ]
        matrix = format_table(
            ["design", "size", "mean hops", "hop bound", "mean lat (slots)",
             "makespan", "guarantee", "delivered"],
            rows,
            float_fmt="{:.3g}",
        )
        text += (
            "\n\nCross-design comparison matrix (permutation traffic, "
            "simulated):\n" + matrix +
            "\nMean hops is the per-cell bandwidth cost: VLB pays ~2x for "
            "worst-case obliviousness; semi-oblivious direct-first routing "
            "recovers toward 1x on permutation traffic."
        )
    return text
