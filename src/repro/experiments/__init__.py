"""Experiment regenerators — one module per paper figure/table.

Each module exposes ``run(...) -> Result`` (structured data matching the
figure's rows/series) and ``report(result) -> str`` (text rendering).
Default parameters are scaled down from the paper; every knob accepts
paper-scale values.  See DESIGN.md for the experiment index and
EXPERIMENTS.md for paper-vs-measured numbers.
"""

from . import (
    appd_token_budget,
    fig01_tradeoff,
    fig04_opera,
    fig07_memory,
    fig08_validation,
    fig09_interleaving,
    fig10_shortflow,
    fig11_heavytail,
    fig12_failures,
    fig13_scalability,
    fig14_mean_fct,
    fig15_queues,
    fig17_nonincast,
    scenarios,
)

#: Registry used by the runner and the benchmark harness.
ALL_EXPERIMENTS = {
    "fig01": fig01_tradeoff,
    "fig04": fig04_opera,
    "fig07": fig07_memory,
    "fig08": fig08_validation,
    "fig09": fig09_interleaving,
    "fig10": fig10_shortflow,
    "fig11": fig11_heavytail,
    "fig12": fig12_failures,
    "fig13": fig13_scalability,
    "fig14": fig14_mean_fct,
    "fig15": fig15_queues,
    "fig17": fig17_nonincast,
    "appd": appd_token_budget,
    "scenarios": scenarios,
}

__all__ = ["ALL_EXPERIMENTS"] + [
    "appd_token_budget",
    "fig01_tradeoff",
    "fig04_opera",
    "fig07_memory",
    "fig08_validation",
    "fig09_interleaving",
    "fig10_shortflow",
    "fig11_heavytail",
    "fig12_failures",
    "fig13_scalability",
    "fig14_mean_fct",
    "fig15_queues",
    "fig17_nonincast",
    "scenarios",
]
