"""Figure 4: Opera vs Shale h=1 on the heavy-tailed workload.

The paper runs 576-node configurations of both systems on the heavy-tailed
workload at L=0.4 and plots 99.9% size-normalised FCT per flow-size bucket.
The structural outcome to reproduce: Opera's shortest flows beat Shale h=1
(no reconfiguration penalty within an expander configuration), but its bulk
flows are penalised by RotorLB's ~1/(N-1) direct-connection frequency, with
tails hundreds of times above the line-rate ideal, while Shale h=1 keeps all
buckets bounded.

Scaled default: N=144 with proportionally shortened horizons; pass
``n=576``, ``duration≈50_000_000`` to approach paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.fct import FctTable, fct_table
from ..baselines.opera import OperaConfig, OperaSimulator
from ..sim.config import SimConfig
from ..sim.engine import Engine
from ..workloads.distributions import HeavyTailedDistribution, bucket_label
from ..workloads.generators import poisson_workload
from .common import experiment_entrypoint, format_table

__all__ = ["Fig04Result", "run", "report"]


@dataclass
class Fig04Result:
    """Tail FCT per flow-size bucket for both systems."""

    n: int
    shale_tails: Dict[int, float]
    opera_tails: Dict[int, float]
    propagation_delay: int


def _run_system(
    system: str,
    n: int,
    duration: int,
    load: float,
    propagation_delay: int,
    opera_period_cells: int,
    workload_scale: float,
    seed: int,
) -> Dict[int, float]:
    """Tail FCT per bucket for one system — module-level so pools can run it.

    Both cells regenerate the identical workload from the same seed, so the
    two systems see the same flows whether the cells run sequentially, in
    parallel, or from the cell cache.
    """
    cfg = SimConfig(
        n=n,
        h=1,
        duration=duration,
        propagation_delay=propagation_delay,
        congestion_control="hbh+spray",
        seed=seed,
    )
    distribution = HeavyTailedDistribution(scale=workload_scale)
    workload = list(poisson_workload(cfg, distribution, load=load))

    if system == "shale":
        shale = Engine(cfg, workload=workload)
        shale.run()
        shale.run_until_quiescent(max_extra=duration * 4)
        return fct_table(shale.flows.completed, propagation_delay).tail(99.9)
    if system == "opera":
        opera = OperaSimulator(
            OperaConfig(
                n=n,
                period_cells=opera_period_cells,
                propagation_cells=propagation_delay,
                seed=seed,
            )
        )
        opera.schedule_flows(workload)
        opera.run(duration)
        opera.run_until_quiescent()
        table = FctTable(_bucketize(opera.completed, propagation_delay))
        return table.tail(99.9)
    raise ValueError(f"unknown system {system!r}")


@experiment_entrypoint
def run(
    *,
    n: int = 144,
    duration: int = 60_000,
    load: float = 0.4,
    propagation_delay: int = 30,
    opera_period_cells: int = 1450,
    workload_scale: float = 0.02,
    seed: int = 1,
    workers: int = 1,
) -> Fig04Result:
    """Run both systems on an identical heavy-tailed workload.

    ``workload_scale`` shrinks the flow-size distribution for down-scaled
    horizons (see :mod:`repro.workloads.distributions`); pass 1.0 at paper
    scale.  ``workers > 1`` runs the two systems as parallel sweep cells.
    """
    from ..sim.parallel import sweep

    shared = dict(
        n=n, duration=duration, load=load,
        propagation_delay=propagation_delay,
        opera_period_cells=opera_period_cells,
        workload_scale=workload_scale, seed=seed,
    )
    grid = [dict(system=system, **shared) for system in ("shale", "opera")]
    shale_tails, opera_tails = sweep(_run_system, grid, workers=workers)

    return Fig04Result(
        n=n,
        shale_tails=shale_tails,
        opera_tails=opera_tails,
        propagation_delay=propagation_delay,
    )


def _bucketize(records, propagation_delay: int) -> Dict[int, List[float]]:
    from ..workloads.distributions import bucket_of

    out: Dict[int, List[float]] = {}
    for record in records:
        out.setdefault(bucket_of(record.size_bytes), []).append(
            record.normalized_fct(propagation_delay)
        )
    return out


def report(result: Fig04Result) -> str:
    """Side-by-side tail FCTs per bucket, as in Fig. 4."""
    buckets = sorted(set(result.shale_tails) | set(result.opera_tails))
    rows = [
        (
            bucket_label(b),
            result.shale_tails.get(b, float("nan")),
            result.opera_tails.get(b, float("nan")),
        )
        for b in buckets
    ]
    table = format_table(
        ["flow size", "Shale h=1 p99.9", "Opera p99.9"], rows
    )
    bulk = [b for b in buckets if b >= 6 and b in result.opera_tails]
    takeaway = ""
    if bulk:
        worst = max(result.opera_tails[b] for b in bulk)
        takeaway = (
            f"\nOpera bulk-flow tails reach {worst:.0f}x the line-rate ideal "
            f"(paper: ~400x at N=576) — RotorLB's direct-connection scarcity."
        )
    return f"Figure 4 — Opera vs Shale h=1, N={result.n}\n{table}{takeaway}"
