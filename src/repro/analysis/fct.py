"""Flow-completion-time analysis (paper Section 5 methodology).

The paper reports *size-normalised* FCTs: a flow of ``F`` cells with one-way
propagation delay ``P`` would ideally complete in ``F + P`` timeslots over a
single line-rate hop, so the normalised FCT is ``measured / (F + P)``.
Flows are then grouped into size buckets (0-4kB, 4-16kB, ... 64MB+) and the
statistic of interest (99.9th percentile for tail plots, mean for Appendix
B.1) is computed per bucket.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.flows import FlowRecord
from ..sim.metrics import percentile
from ..workloads.distributions import bucket_label, bucket_of

__all__ = [
    "normalized_fcts",
    "bucketed_fcts",
    "FctTable",
    "fct_table",
]


def normalized_fcts(
    records: Iterable[FlowRecord], propagation_delay: int
) -> List[float]:
    """Size-normalised FCT of every record."""
    return [r.normalized_fct(propagation_delay) for r in records]


def bucketed_fcts(
    records: Iterable[FlowRecord], propagation_delay: int
) -> Dict[int, List[float]]:
    """Normalised FCTs grouped by flow-size bucket index."""
    out: Dict[int, List[float]] = {}
    for record in records:
        idx = bucket_of(record.size_bytes)
        out.setdefault(idx, []).append(record.normalized_fct(propagation_delay))
    return out


class FctTable:
    """Per-size-bucket FCT statistics, in the paper's reporting format."""

    def __init__(self, buckets: Dict[int, List[float]]):
        self.buckets = buckets

    def tail(self, q: float = 99.9) -> Dict[int, float]:
        """Tail percentile per bucket (the headline Fig. 10/11 statistic)."""
        return {i: percentile(v, q) for i, v in sorted(self.buckets.items())}

    def mean(self) -> Dict[int, float]:
        """Mean per bucket (Appendix B.1)."""
        return {
            i: (sum(v) / len(v) if v else 0.0)
            for i, v in sorted(self.buckets.items())
        }

    def counts(self) -> Dict[int, int]:
        """Number of completed flows per bucket."""
        return {i: len(v) for i, v in sorted(self.buckets.items())}

    def rows(self, q: float = 99.9) -> List[Tuple[str, int, float, float]]:
        """Report rows: (bucket label, flow count, tail, mean)."""
        tail = self.tail(q)
        mean = self.mean()
        return [
            (bucket_label(i), len(self.buckets[i]), tail[i], mean[i])
            for i in sorted(self.buckets)
        ]

    def overall_tail(self, q: float = 99.9) -> float:
        """Tail over all flows regardless of bucket."""
        merged: List[float] = []
        for values in self.buckets.values():
            merged.extend(values)
        return percentile(merged, q)


def fct_table(
    records: Iterable[FlowRecord],
    propagation_delay: int,
    exclude_dsts: Optional[Sequence[int]] = None,
) -> FctTable:
    """Build an :class:`FctTable` from completed-flow records.

    Args:
        records: completed flows.
        propagation_delay: one-way delay in slots (for normalisation).
        exclude_dsts: optionally drop flows to these destinations — used by
            the Appendix B.3 analysis, which excludes flows incast with very
            long (>256 MB) flows.
    """
    if exclude_dsts:
        excluded = set(exclude_dsts)
        records = [r for r in records if r.dst not in excluded]
    return FctTable(bucketed_fcts(records, propagation_delay))
