"""Closed-form theory from the paper (Sections 2, 3.1; Fig. 1).

For an ``N = r**h`` Shale network:

* epoch length ``E = h (r - 1)`` timeslots,
* maximum intrinsic latency ``2E = 2 h (r - 1)`` timeslots (one epoch of
  spraying, one of direct hops),
* guaranteed worst-case throughput ``1 / (2h)`` of line rate (each cell
  consumes up to ``2h`` link-slots).

Figure 1 plots these two quantities against each other for every feasible
``h`` at ``N = 100,000``; :func:`tradeoff_curve` regenerates it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "intrinsic_latency_slots",
    "throughput_guarantee",
    "feasible_h_values",
    "TradeoffPoint",
    "tradeoff_curve",
    "srrd_latency_slots",
    "effective_radix",
]


def effective_radix(n: int, h: int) -> int:
    """The smallest integer ``r`` with ``r**h >= n``.

    Real deployments round the phase-group size up when ``N`` is not an
    exact power (the paper's companion work [49] extends EBS to all N); all
    latency/throughput formulas are evaluated at this effective radix.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if h < 1:
        raise ValueError("h must be >= 1")
    r = math.ceil(n ** (1.0 / h))
    while r**h < n:
        r += 1
    while r > 2 and (r - 1) ** h >= n:
        r -= 1
    return max(2, r)


def intrinsic_latency_slots(n: int, h: int) -> int:
    """Worst-case intrinsic latency in timeslots: ``2 h (r - 1)``."""
    r = effective_radix(n, h)
    return 2 * h * (r - 1)


def srrd_latency_slots(n: int) -> int:
    """SRRD (RotorNet/Shoal/Sirius) worst-case latency: one epoch of N-1
    slots for the direct hop plus the spraying slot — ``O(N)``."""
    return intrinsic_latency_slots(n, 1)


def throughput_guarantee(h: int) -> float:
    """Guaranteed throughput as a fraction of line rate: ``1 / (2h)``."""
    if h < 1:
        raise ValueError("h must be >= 1")
    return 1.0 / (2 * h)


def feasible_h_values(n: int, max_h: Optional[int] = None) -> List[int]:
    """All ``h`` giving a meaningful schedule (``r >= 2``) for ``n`` nodes."""
    limit = max_h if max_h is not None else int(math.log2(n))
    return [h for h in range(1, max(1, limit) + 1) if 2**h <= n]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the Fig. 1 throughput/latency tradeoff curve."""

    h: int
    radix: int
    throughput: float
    latency_slots: int
    latency_ns: float


def tradeoff_curve(
    n: int = 100_000,
    slot_ns: float = 5.632,
    max_h: Optional[int] = None,
) -> List[TradeoffPoint]:
    """The Fig. 1 curve: achievable (throughput, intrinsic latency) tunings.

    Args:
        n: network size (paper uses 100,000).
        slot_ns: time between timeslot starts (paper: 5.632 ns).
        max_h: largest tuning to include.

    Returns:
        One point per feasible ``h``, ordered by increasing ``h`` (i.e.
        decreasing latency, decreasing throughput).
    """
    points = []
    for h in feasible_h_values(n, max_h):
        r = effective_radix(n, h)
        latency = 2 * h * (r - 1)
        points.append(
            TradeoffPoint(
                h=h,
                radix=r,
                throughput=throughput_guarantee(h),
                latency_slots=latency,
                latency_ns=latency * slot_ns,
            )
        )
    return points
