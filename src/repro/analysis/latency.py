"""Latency decomposition: intrinsic vs queueing vs propagation.

The paper distinguishes *intrinsic latency* — the delay implied by the
schedule and routing scheme alone — from queueing delay, and argues that
with effective congestion control, realised latencies approach the intrinsic
floor (e.g. Section 5.3: h=4 HBH+spray tails "within 3x of the theoretical
limit without queuing").

Given a traced run (:class:`~repro.sim.trace.CellTracer`), this module
splits each delivered cell's latency into:

* **propagation** — ``hops x P`` timeslots on the wire;
* **intrinsic scheduling delay** — the unavoidable wait for each hop's link
  to come up in the schedule, computed by replaying the cell's path against
  an empty network;
* **queueing** — the remainder: time lost waiting behind other cells (or
  for hop-by-hop tokens).

The decomposition is exact per cell: the three components sum to the
measured latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.schedule import Schedule
from ..sim.metrics import percentile
from ..sim.trace import CellTrace

__all__ = [
    "LatencyBreakdown",
    "decompose_trace",
    "decompose_run",
    "RunLatencyStats",
]


@dataclass(frozen=True)
class LatencyBreakdown:
    """One cell's latency split into its components (timeslots)."""

    total: int
    propagation: int
    intrinsic: int
    queueing: int

    def __post_init__(self) -> None:
        if self.total != self.propagation + self.intrinsic + self.queueing:
            raise ValueError(
                f"components {self.propagation}+{self.intrinsic}+"
                f"{self.queueing} do not sum to {self.total}"
            )


def _ideal_slot_walk(
    schedule: Schedule,
    trace: CellTrace,
    propagation_delay: int,
) -> int:
    """Timeslot at which the cell would complete in an empty network.

    Replays the recorded hop sequence: from each node, the cell departs at
    the first schedule slot (>= its ready time) connecting to the recorded
    next hop, then spends the propagation delay on the wire.
    """
    ready = trace.hops[0][0]  # actual admission slot of the first hop
    for _, sender, receiver, _ in trace.hops:
        depart = schedule.next_send_slot(sender, receiver, ready)
        ready = depart + propagation_delay
    return ready


def decompose_trace(
    trace: CellTrace,
    schedule: Schedule,
    propagation_delay: int,
) -> LatencyBreakdown:
    """Exact latency decomposition of one delivered cell."""
    if not trace.complete:
        raise ValueError(f"{trace!r} was not delivered")
    start = trace.hops[0][0]
    total = trace.delivered_at - start
    propagation = len(trace.hops) * propagation_delay
    ideal_arrival = _ideal_slot_walk(schedule, trace, propagation_delay)
    ideal_total = ideal_arrival - start
    intrinsic = ideal_total - propagation
    queueing = total - ideal_total
    return LatencyBreakdown(
        total=total,
        propagation=propagation,
        intrinsic=intrinsic,
        queueing=queueing,
    )


@dataclass
class RunLatencyStats:
    """Aggregate decomposition over all delivered cells of a run."""

    cells: int
    mean_total: float
    mean_propagation: float
    mean_intrinsic: float
    mean_queueing: float
    p999_total: float
    p999_queueing: float
    intrinsic_bound: int

    def queueing_fraction(self) -> float:
        """Share of mean latency spent queueing."""
        if self.mean_total <= 0:
            return 0.0
        return self.mean_queueing / self.mean_total


def decompose_run(
    traces: Sequence[CellTrace],
    schedule: Schedule,
    propagation_delay: int,
) -> RunLatencyStats:
    """Decompose every delivered cell of a run and aggregate."""
    totals: List[int] = []
    props: List[int] = []
    intrinsics: List[int] = []
    queues: List[int] = []
    for trace in traces:
        if not trace.complete or not trace.hops:
            continue
        breakdown = decompose_trace(trace, schedule, propagation_delay)
        totals.append(breakdown.total)
        props.append(breakdown.propagation)
        intrinsics.append(breakdown.intrinsic)
        queues.append(breakdown.queueing)
    count = len(totals)
    if count == 0:
        return RunLatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                               schedule.max_intrinsic_latency())
    return RunLatencyStats(
        cells=count,
        mean_total=sum(totals) / count,
        mean_propagation=sum(props) / count,
        mean_intrinsic=sum(intrinsics) / count,
        mean_queueing=sum(queues) / count,
        p999_total=percentile(totals, 99.9),
        p999_queueing=percentile(queues, 99.9),
        intrinsic_bound=schedule.max_intrinsic_latency(),
    )
