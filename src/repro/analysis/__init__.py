"""Analysis utilities: FCT normalisation, percentiles, theory formulas."""

from .fct import FctTable, bucketed_fcts, fct_table, normalized_fcts
from .latency import (
    LatencyBreakdown,
    RunLatencyStats,
    decompose_run,
    decompose_trace,
)
from .theory import (
    TradeoffPoint,
    effective_radix,
    feasible_h_values,
    intrinsic_latency_slots,
    srrd_latency_slots,
    throughput_guarantee,
    tradeoff_curve,
)

__all__ = [
    "FctTable",
    "LatencyBreakdown",
    "RunLatencyStats",
    "decompose_run",
    "decompose_trace",
    "TradeoffPoint",
    "bucketed_fcts",
    "effective_radix",
    "fct_table",
    "feasible_h_values",
    "intrinsic_latency_slots",
    "normalized_fcts",
    "srrd_latency_slots",
    "throughput_guarantee",
    "tradeoff_curve",
]
