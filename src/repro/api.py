"""The one-call quickstart facade: ``simulate(config, workload) -> RunResult``.

The library's power users build :class:`~repro.sim.engine.Engine` objects
directly — attach observers, drive loops, snapshot mid-run.  Most callers
just want "run this config on this workload and give me the numbers":

    >>> from repro import SimConfig, simulate
    >>> from repro.workloads import poisson_workload, ShortFlowDistribution
    >>> cfg = SimConfig(n=16, h=2, duration=20_000)
    >>> wl = poisson_workload(cfg, ShortFlowDistribution(), load=0.2)
    >>> result = simulate(cfg, wl, drain=True)
    >>> result.summary["cells_delivered"] > 0
    True

``simulate`` wires up the common observers behind keywords (``telemetry=``,
``monitor=``, ``digest=``) and exposes checkpoint/resume with a single
``checkpoint=`` path: if the file exists the run resumes from it
bit-exactly, otherwise the run periodically snapshots into it, and on clean
completion the file is removed.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from .sim.checkpoint import load_checkpoint_or_none, restore_engine
from .sim.config import SimConfig
from .sim.engine import Engine, ScheduledFlow
from .sim.flows import FlowTable
from .sim.metrics import MetricsCollector

__all__ = ["RunResult", "simulate"]


@dataclass
class RunResult:
    """What one :func:`simulate` call produced.

    Attributes:
        config: the configuration the run used.
        metrics: the engine's aggregate counters and distributions.
        flows: the flow table (active + completed flows, FCTs).
        summary: ``metrics.summary()`` — the headline numbers as a dict.
        telemetry: the attached time-series recorder, when requested.
        digest: the run's determinism digest value, when requested.
        resumed_from: the timeslot the run resumed from (None = from 0).
        engine: the engine itself, for anything not surfaced above.
    """

    config: SimConfig
    metrics: MetricsCollector
    flows: FlowTable
    summary: Dict[str, float] = field(default_factory=dict)
    telemetry: Optional[object] = None
    digest: Optional[int] = None
    resumed_from: Optional[int] = None
    engine: Optional[Engine] = None


def simulate(
    config: SimConfig,
    workload: Optional[Iterable[ScheduledFlow]] = None,
    *,
    duration: Optional[int] = None,
    drain: bool = False,
    telemetry: Any = None,
    monitor: Any = None,
    digest: bool = False,
    failure_manager=None,
    checkpoint=None,
    checkpoint_every: Optional[int] = None,
) -> RunResult:
    """Run one simulation end to end and return a :class:`RunResult`.

    Args:
        config: the run's :class:`~repro.sim.config.SimConfig`.
        workload: scheduled flows to inject (``(t, src, dst, cells)``-style
            tuples from :mod:`repro.workloads`); None runs an idle network.
        duration: timeslots to simulate (default: ``config.duration``).
        drain: also run past the horizon until all admitted flows finish.
        telemetry: True to attach a fresh
            :class:`~repro.obs.timeseries.TimeSeriesRecorder`, or an
            already-built recorder to attach.
        monitor: True to attach a default
            :class:`~repro.sim.monitor.RunMonitor`, or a configured one.
        digest: record a :class:`~repro.sim.digest.DeterminismDigest` and
            return its value (for bit-exactness comparisons).
        failure_manager: a :class:`~repro.failures.FailureManager` to
            apply (ignored when resuming — the restored state carries it).
        checkpoint: a file path enabling checkpoint/resume: resume from it
            when it exists, periodically snapshot into it while running,
            remove it on clean completion.
        checkpoint_every: snapshot interval in timeslots (default 100000;
            only meaningful with ``checkpoint``).

    Returns:
        A :class:`RunResult`; bit-exact whether or not the run was
        interrupted and resumed through ``checkpoint``.
    """
    from .obs.timeseries import TimeSeriesRecorder
    from .sim.monitor import RunMonitor

    resumed_from = None
    engine = None
    if checkpoint is not None:
        saved = load_checkpoint_or_none(checkpoint)
        if saved is not None:
            if saved.config != config:
                # a stale file from another experiment: start over
                pathlib.Path(checkpoint).unlink(missing_ok=True)
            else:
                engine = restore_engine(saved)
                resumed_from = engine.t
    if engine is None:
        engine = Engine(config, workload=None if workload is None
                        else list(workload),
                        failure_manager=failure_manager)
    if digest:
        engine.enable_digest()
    if monitor:
        (monitor if isinstance(monitor, RunMonitor)
         else RunMonitor()).attach(engine)
    recorder = None
    if telemetry:
        recorder = (telemetry if isinstance(telemetry, TimeSeriesRecorder)
                    else TimeSeriesRecorder())
        recorder.attach(engine)
    if checkpoint is not None:
        engine.enable_checkpoints(checkpoint, checkpoint_every or 100_000)

    engine.run(duration)
    if drain:
        engine.run_until_quiescent()

    if checkpoint is not None:
        pathlib.Path(checkpoint).unlink(missing_ok=True)
    return RunResult(
        config=config,
        metrics=engine.metrics,
        flows=engine.flows,
        summary=engine.metrics.summary(),
        telemetry=recorder,
        digest=None if engine.digest is None else engine.digest.value,
        resumed_from=resumed_from,
        engine=engine,
    )
