"""The public facade: batch ``simulate()`` and live ``open_session()``.

The library's power users build :class:`~repro.sim.engine.Engine` objects
directly — attach observers, drive loops, snapshot mid-run.  Most callers
want one of two things:

* "run this config on this workload and give me the numbers" —
  :func:`simulate`, the batch path::

      >>> from repro import SimConfig, simulate
      >>> from repro.workloads import poisson_workload, ShortFlowDistribution
      >>> cfg = SimConfig(n=16, h=2, duration=20_000)
      >>> wl = poisson_workload(cfg, ShortFlowDistribution(), load=0.2)
      >>> result = simulate(cfg, wl, drain=True)
      >>> result.summary["cells_delivered"] > 0
      True

* "keep this network running and let me interact with it" —
  :func:`open_session`, the live path::

      >>> from repro import open_session
      >>> session = open_session(cfg, telemetry=True)
      >>> session.submit(wl[:10])
      10
      >>> session.advance(1_000)
      1000
      >>> result = session.finish(drain=True)

Both wire the common observers behind the *identical* keyword set
(``telemetry=``, ``monitor=``, ``digest=``, ``events=`` — one shared
wiring helper), both expose checkpoint/resume with a single ``checkpoint=``
path, and both produce the same :class:`RunResult`.  Incremental
``Session.advance`` stepping is bit-exact with an equivalent batch
``simulate`` over the same flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from .service.session import Session, _MISSING, _resolve_failures, _wire_observers
from .sim.checkpoint import discard_checkpoint, load_any_checkpoint_or_none, restore_engine
from .sim.config import SimConfig
from .sim.engine import Engine, ScheduledFlow
from .sim.flows import FlowTable
from .sim.metrics import MetricsCollector

__all__ = ["RunResult", "Session", "open_session", "simulate"]


@dataclass
class RunResult:
    """What one run — batch :func:`simulate` or live
    :meth:`Session.finish <repro.service.session.Session.finish>` —
    produced.

    Attributes:
        config: the configuration the run used.
        metrics: the engine's aggregate counters and distributions.
        flows: the flow table (active + completed flows, FCTs).
        summary: ``metrics.summary()`` — the headline numbers as a dict.
        telemetry: the attached time-series recorder, when requested.
        events: the attached structured event log, when requested.
        digest: the run's determinism digest value, when requested.
        resumed_from: the timeslot the run resumed from (None = from 0).
        engine: the engine itself, for anything not surfaced above.
    """

    config: SimConfig
    metrics: MetricsCollector
    flows: FlowTable
    summary: Dict[str, float] = field(default_factory=dict)
    telemetry: Optional[object] = None
    events: Optional[object] = None
    digest: Optional[int] = None
    resumed_from: Optional[int] = None
    engine: Optional[Engine] = None


def open_session(
    config: SimConfig,
    workload: Optional[Iterable[ScheduledFlow]] = None,
    *,
    source=None,
    telemetry: Any = None,
    monitor: Any = None,
    digest: bool = False,
    events: Any = None,
    failures=None,
    failure_manager=_MISSING,
    checkpoint=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_parts: Optional[int] = None,
) -> Session:
    """Open a live :class:`~repro.service.session.Session`.

    The live twin of :func:`simulate`: the same config, workload and
    observer keywords, but instead of running to completion it returns a
    session you drive incrementally — ``advance(slots)`` between
    ``submit(flows)`` calls, durability snapshots via ``checkpoint=``,
    and ``finish()`` for the :class:`RunResult`.

    Args:
        config: the run's :class:`~repro.sim.config.SimConfig`.
        workload: flows to pre-schedule before the first advance.
        source: an :class:`~repro.workloads.streaming.OpenLoopSource`
            pulled automatically by every ``advance``.
        telemetry / monitor / digest / events: observer wiring, identical
            to :func:`simulate`.
        failures: a :class:`~repro.failures.FailureManager` to apply.
        checkpoint: durability file path — resume from it when it exists
            (whole file or composed per-shard parts), snapshot into it
            while running, removed on ``finish()``.
        checkpoint_every: snapshot interval in timeslots (default 100000).
        checkpoint_parts: persist snapshots as this many per-shard split
            files instead of one whole file.

    Returns:
        An open :class:`~repro.service.session.Session`.
    """
    return Session(
        config,
        workload,
        source=source,
        telemetry=telemetry,
        monitor=monitor,
        digest=digest,
        events=events,
        failures=failures,
        failure_manager=failure_manager,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        checkpoint_parts=checkpoint_parts,
    )


def simulate(
    config: SimConfig,
    workload: Optional[Iterable[ScheduledFlow]] = None,
    *,
    duration: Optional[int] = None,
    drain: bool = False,
    telemetry: Any = None,
    monitor: Any = None,
    digest: bool = False,
    events: Any = None,
    failures=None,
    failure_manager=_MISSING,
    checkpoint=None,
    checkpoint_every: Optional[int] = None,
) -> RunResult:
    """Run one simulation end to end and return a :class:`RunResult`.

    Args:
        config: the run's :class:`~repro.sim.config.SimConfig`.
        workload: scheduled flows to inject (``(t, src, dst, cells)``-style
            tuples from :mod:`repro.workloads`); None runs an idle network.
        duration: timeslots to simulate (default: ``config.duration``).
        drain: also run past the horizon until all admitted flows finish.
        telemetry: True to attach a fresh
            :class:`~repro.obs.timeseries.TimeSeriesRecorder`, or an
            already-built recorder to attach.
        monitor: True to attach a default
            :class:`~repro.sim.monitor.RunMonitor`, or a configured one.
        digest: record a :class:`~repro.sim.digest.DeterminismDigest` and
            return its value (for bit-exactness comparisons).
        events: True to attach an :class:`~repro.obs.events.EventLog`
            backed by an in-memory ring, or an already-built log.
        failures: a :class:`~repro.failures.FailureManager` to
            apply (ignored when resuming — the restored state carries it).
        checkpoint: a file path enabling checkpoint/resume: resume from it
            when it exists (a whole snapshot, or per-shard split parts
            composed back together), periodically snapshot into it while
            running, remove it — parts included — on clean completion.
        checkpoint_every: snapshot interval in timeslots (default 100000;
            only meaningful with ``checkpoint``).

    Returns:
        A :class:`RunResult`; bit-exact whether or not the run was
        interrupted and resumed through ``checkpoint``.
    """
    failures = _resolve_failures(failures, failure_manager)
    resumed_from = None
    engine = None
    if checkpoint is not None:
        saved = load_any_checkpoint_or_none(checkpoint)
        if saved is not None:
            if saved.config != config:
                # a stale file from another experiment: start over (and
                # drop any per-shard parts riding beside it)
                discard_checkpoint(checkpoint)
            else:
                engine = restore_engine(saved)
                resumed_from = engine.t
    if engine is None:
        engine = Engine(config, workload=None if workload is None
                        else list(workload),
                        failure_manager=failures)
    recorder, _, event_log = _wire_observers(
        engine, telemetry=telemetry, monitor=monitor,
        digest=digest, events=events,
    )
    if checkpoint is not None:
        engine.enable_checkpoints(checkpoint, checkpoint_every or 100_000)

    engine.run(duration)
    if drain:
        engine.run_until_quiescent()

    if checkpoint is not None:
        discard_checkpoint(checkpoint)
    return RunResult(
        config=config,
        metrics=engine.metrics,
        flows=engine.flows,
        summary=engine.metrics.summary(),
        telemetry=recorder,
        events=event_log,
        digest=None if engine.digest is None else engine.digest.value,
        resumed_from=resumed_from,
        engine=engine,
    )
