"""Clients for the live-service control plane.

Two flavours over the same JSON-lines wire protocol
(:mod:`repro.service.protocol`):

* :class:`ServiceClient` — asyncio streams, full duplex: issue requests
  while subscribed telemetry rows keep flowing into an internal queue.
  Use inside an event loop (tests drive it with ``asyncio.run``).
* :class:`SyncServiceClient` — plain blocking sockets, one request at a
  time.  The right tool for scripts and demos (``examples/
  live_service.py``, the CI smoke driver) that don't want an event loop.
  Stream rows that arrive interleaved with responses are stashed in
  :attr:`SyncServiceClient.stream_rows` rather than lost.

Both raise :class:`~repro.service.protocol.ServiceError` when the server
answers ``ok: false``.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, List, Optional, Sequence

from .protocol import ServiceError, decode_message, encode_message

__all__ = ["ServiceClient", "SyncServiceClient", "wait_for_ready"]


class ServiceClient:
    """Asyncio client: concurrent requests + a subscribed telemetry queue.

    A background reader task splits incoming lines into responses
    (matched to in-flight requests by ``id``) and stream events (pushed
    onto :attr:`telemetry`, an :class:`asyncio.Queue`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        #: queue of pushed telemetry rows (dicts); ``None`` marks the
        #: server's end-of-stream event
        self.telemetry: asyncio.Queue = asyncio.Queue()

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = decode_message(line)
                if "stream" in message:
                    if message.get("done"):
                        self.telemetry.put_nowait(None)
                    else:
                        self.telemetry.put_nowait(message.get("row"))
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # connection died: fail what's in flight
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ServiceError(str(exc)))
            self._pending.clear()
            return
        # clean EOF: fail any unanswered requests
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ServiceError("connection closed"))
        self._pending.clear()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; await and return the matched response data."""
        if self._writer is None:
            raise ServiceError("client is not connected")
        if self._reader_task is not None and self._reader_task.done():
            raise ServiceError("server closed the connection")
        self._next_id += 1
        request_id = self._next_id
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            encode_message({"id": request_id, "op": op, **fields})
        )
        await self._writer.drain()
        response = await future
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"))
        return response

    # ------------------------------------------------------------------ #
    # verb helpers

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def status(self) -> Dict[str, Any]:
        return await self.request("status")

    async def submit(self, flows: Sequence[Sequence[int]],
                     late: str = "clamp") -> int:
        response = await self.request(
            "submit", flows=[list(f) for f in flows], late=late
        )
        return response["accepted"]

    async def adjust_load(self, factor: float) -> float:
        response = await self.request("adjust-load", factor=factor)
        return response["factor"]

    async def telemetry_rows(self, since: int = 0) -> List[Dict[str, int]]:
        response = await self.request("telemetry-rows", since=since)
        return response["rows"]

    async def stream_telemetry(self) -> int:
        """Subscribe this connection; rows land on :attr:`telemetry`."""
        response = await self.request("stream-telemetry")
        return response["from_row"]

    async def stop_stream(self) -> None:
        await self.request("stop-stream")

    async def checkpoint_now(self) -> str:
        response = await self.request("checkpoint-now")
        return response["path"]

    async def drain_and_stop(self) -> Dict[str, Any]:
        return await self.request("drain-and-stop")

    async def stop(self) -> Dict[str, Any]:
        return await self.request("stop")


class SyncServiceClient:
    """Blocking client: one request at a time over a plain socket.

    Pushed telemetry rows that arrive interleaved with a response are
    appended to :attr:`stream_rows` (call :meth:`drain_stream` to collect
    rows while no request is outstanding).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port))
        self._sock.setblocking(False)
        self._buffer = b""
        self._next_id = 0
        #: telemetry rows pushed by the server (after ``stream_telemetry``)
        self.stream_rows: List[Dict[str, int]] = []
        #: True once the server sent its end-of-stream event
        self.stream_done = False

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "SyncServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _absorb(self, message: Dict[str, Any]) -> None:
        if message.get("done"):
            self.stream_done = True
        elif message.get("row") is not None:
            self.stream_rows.append(message["row"])

    def _readline(self, timeout: Optional[float]) -> Optional[bytes]:
        """One wire line; None on timeout, b"" on EOF.

        The client keeps its own line buffer over a non-blocking socket —
        a buffered ``makefile`` reader becomes unusable after a timeout
        fires mid-read, and this client's :meth:`drain_stream` needs
        timeouts to be routine, not fatal.
        """
        import select

        while b"\n" not in self._buffer:
            readable, _, _ = select.select([self._sock], [], [], timeout)
            if not readable:
                return None
            chunk = self._sock.recv(65536)
            if not chunk:
                return b""
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line + b"\n"

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and block until its response arrives."""
        import select

        self._next_id += 1
        request_id = self._next_id
        payload = encode_message({"id": request_id, "op": op, **fields})
        while payload:
            select.select([], [self._sock], [], self.timeout)
            payload = payload[self._sock.send(payload):]
        while True:
            line = self._readline(self.timeout)
            if line is None:
                raise ServiceError(
                    f"no response to {op!r} within {self.timeout}s"
                )
            if not line:
                raise ServiceError("connection closed mid-request")
            message = decode_message(line)
            if "stream" in message:
                self._absorb(message)
                continue
            if message.get("id") != request_id:
                continue  # a stale response; keep waiting for ours
            if not message.get("ok"):
                raise ServiceError(message.get("error", "request failed"))
            return message

    def drain_stream(self, timeout: float = 0.05) -> List[Dict[str, int]]:
        """Absorb any pushed rows waiting on the socket; returns them all."""
        while True:
            line = self._readline(timeout)
            if not line:  # quiet for `timeout` seconds, or EOF
                return self.stream_rows
            self._absorb(decode_message(line))

    # ------------------------------------------------------------------ #
    # verb helpers

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def status(self) -> Dict[str, Any]:
        return self.request("status")

    def submit(self, flows: Sequence[Sequence[int]],
               late: str = "clamp") -> int:
        return self.request(
            "submit", flows=[list(f) for f in flows], late=late
        )["accepted"]

    def adjust_load(self, factor: float) -> float:
        return self.request("adjust-load", factor=factor)["factor"]

    def telemetry_rows(self, since: int = 0) -> List[Dict[str, int]]:
        return self.request("telemetry-rows", since=since)["rows"]

    def stream_telemetry(self) -> int:
        return self.request("stream-telemetry")["from_row"]

    def checkpoint_now(self) -> str:
        return self.request("checkpoint-now")["path"]

    def drain_and_stop(self) -> Dict[str, Any]:
        return self.request("drain-and-stop")

    def stop(self) -> Dict[str, Any]:
        return self.request("stop")


def wait_for_ready(stdout, timeout: float = 30.0) -> Dict[str, Any]:
    """Parse the server's JSON ready line from a subprocess's stdout.

    Blocks reading lines until one parses as ``{"ready": true, ...}``;
    returns that dict (host, port, protocol, t, resumed_from).  Raises
    :class:`ServiceError` if the stream ends first.
    """
    while True:
        line = stdout.readline()
        if not line:
            raise ServiceError("server exited before announcing readiness")
        if isinstance(line, bytes):
            line = line.decode()
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(message, dict) and message.get("ready"):
            return message
