"""Long-running simulation sessions: incremental stepping behind one API.

:func:`repro.api.simulate` runs a configuration to completion in one call;
a *service* needs the same engine kept alive between interactions — advance
a few thousand slots, accept newly arrived flows, snapshot for durability,
read telemetry, repeat.  :class:`Session` is that surface:

* ``advance(slots)`` steps the engine incrementally.  The slot loop is the
  ordinary engine run loop, so any slicing of the timeline is bit-exact
  with a single batch run over the same flows (pinned by the golden
  digest-equality tests in ``tests/test_service.py``).
* ``submit(flows)`` injects work between steps — the open-loop counterpart
  of handing ``simulate`` a workload up front.
* an attached :class:`~repro.workloads.streaming.OpenLoopSource` is pulled
  automatically: each ``advance`` takes exactly the arrivals before its
  target slot, so a live trace and its materialised batch twin schedule
  identical flows.
* ``checkpoint=`` makes the session durable: a snapshot (engine *plus*
  workload-source state) is written after any advance that crosses the
  ``checkpoint_every`` mark, and :func:`repro.api.open_session` resumes
  from it bit-exactly — including the telemetry columns, so a restarted
  service regenerates a gap-free time series.
* ``finish()`` produces the same :class:`~repro.api.RunResult` type the
  batch path returns.

Observer wiring (``telemetry=/monitor=/digest=/events=``) is shared with
``simulate`` through one helper, :func:`_wire_observers` — the two entry
points accept the identical keyword set by construction.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..sim.checkpoint import (
    discard_checkpoint,
    load_any_checkpoint_or_none,
    save_checkpoint,
    save_split_checkpoint,
)
from ..sim.config import SimConfig
from ..sim.engine import Engine, ScheduledFlow

__all__ = ["Session"]

#: sentinel distinguishing "keyword not passed" from an explicit None
_MISSING = object()


def _wire_observers(
    engine,
    *,
    telemetry: Any = None,
    monitor: Any = None,
    digest: bool = False,
    events: Any = None,
):
    """Attach the common observers to ``engine`` behind uniform keywords.

    The single wiring path shared by :func:`repro.api.simulate` and
    :class:`Session` — both accept the identical keyword set:

    * ``telemetry``: True for a fresh
      :class:`~repro.obs.timeseries.TimeSeriesRecorder`, or a built one.
    * ``monitor``: True for a default
      :class:`~repro.sim.monitor.RunMonitor`, or a configured one.
    * ``digest``: record a :class:`~repro.sim.digest.DeterminismDigest`.
    * ``events``: True for an :class:`~repro.obs.events.EventLog` backed
      by an in-memory ring, or an already-built log.

    Attach order (digest, monitor, telemetry, events) is fixed so both
    entry points absorb restored checkpoint observer state identically.
    Returns ``(recorder, monitor, event_log)`` — the attached instances or
    None each.
    """
    from ..obs.events import EventLog, RingSink
    from ..obs.timeseries import TimeSeriesRecorder
    from ..sim.monitor import RunMonitor

    if digest:
        engine.enable_digest()
    monitor_obj = None
    if monitor:
        monitor_obj = (monitor if isinstance(monitor, RunMonitor)
                       else RunMonitor())
        monitor_obj.attach(engine)
    recorder = None
    if telemetry:
        recorder = (telemetry if isinstance(telemetry, TimeSeriesRecorder)
                    else TimeSeriesRecorder())
        recorder.attach(engine)
    event_log = None
    if events:
        event_log = (events if isinstance(events, EventLog)
                     else EventLog([RingSink()]))
        event_log.attach(engine)
    return recorder, monitor_obj, event_log


def _resolve_failures(failures, failure_manager):
    """Collapse the ``failures=`` keyword and its deprecated old name."""
    if failure_manager is not _MISSING:
        warnings.warn(
            "the failure_manager= keyword was renamed to failures=; "
            "the old name will be removed in a future release",
            DeprecationWarning,
            stacklevel=3,
        )
        if failures is None:
            failures = failure_manager
    return failures


class Session:
    """A live simulation: incremental stepping, submission, durability.

    Build one through :func:`repro.api.open_session`; the constructor
    mirrors ``simulate``'s keywords exactly (one shared wiring path) plus
    the session-specific ``source`` and ``checkpoint_parts``.

    Args:
        config: the run's :class:`~repro.sim.config.SimConfig`.
        workload: flows to pre-schedule (the batch-style argument); live
            flows arrive through :meth:`submit` or the attached source.
        source: an :class:`~repro.workloads.streaming.OpenLoopSource`
            pulled automatically by every :meth:`advance`; its generator
            state rides along in session checkpoints so a restarted
            session replays the exact arrivals.
        telemetry / monitor / digest / events: observer wiring, identical
            to ``simulate`` (see :func:`_wire_observers`).
        failures: a :class:`~repro.failures.FailureManager` to apply
            (ignored when resuming — the restored state carries it).
        checkpoint: file path enabling durability: resume from it when it
            exists (whole file or composed per-shard parts), periodically
            snapshot into it between advances, remove it (and any parts)
            on :meth:`finish`.
        checkpoint_every: snapshot interval in timeslots (default 100000).
        checkpoint_parts: write snapshots as this many per-shard split
            files instead of one whole file (sharded deployments persist
            slices independently; see
            :func:`~repro.sim.checkpoint.save_split_checkpoint`).
    """

    def __init__(
        self,
        config: SimConfig,
        workload: Optional[Iterable[ScheduledFlow]] = None,
        *,
        source=None,
        telemetry: Any = None,
        monitor: Any = None,
        digest: bool = False,
        events: Any = None,
        failures=None,
        failure_manager=_MISSING,
        checkpoint=None,
        checkpoint_every: Optional[int] = None,
        checkpoint_parts: Optional[int] = None,
    ):
        failures = _resolve_failures(failures, failure_manager)
        if source is not None and source.config.n != config.n:
            raise ValueError(
                f"source was built for n={source.config.n}, "
                f"config says n={config.n}"
            )
        self.config = config
        self.source = source
        self.checkpoint_path = checkpoint
        self.checkpoint_every = checkpoint_every or 100_000
        if self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint interval must be >= 1, got {checkpoint_every}"
            )
        self.checkpoint_parts = checkpoint_parts
        self.resumed_from: Optional[int] = None
        self.closed = False

        engine = None
        if checkpoint is not None:
            saved = load_any_checkpoint_or_none(checkpoint)
            if saved is not None:
                if saved.config != config:
                    raise ValueError(
                        f"checkpoint {checkpoint} was taken under a "
                        f"different configuration; refusing to resume a "
                        f"live session from it"
                    )
                engine = Engine.restore(saved)
                # a session continues under a new advance schedule; the
                # original call sequence is never replayed
                engine.discard_resume_plan()
                self.resumed_from = engine.t
                service_state = saved.state.get("service")
                if service_state and service_state.get("source") is not None:
                    if source is None:
                        raise ValueError(
                            f"checkpoint {checkpoint} carries workload-"
                            f"source state but no source= was supplied; "
                            f"resuming without it would change the "
                            f"arrival stream"
                        )
                    source.load_state(service_state["source"])
        if engine is None:
            engine = Engine(
                config,
                workload=None if workload is None else list(workload),
                failure_manager=failures,
            )
        elif workload is not None:
            engine.schedule_flows(list(workload))
        self.engine = engine
        self.recorder, self.monitor, self.events = _wire_observers(
            engine, telemetry=telemetry, monitor=monitor,
            digest=digest, events=events,
        )
        self._next_checkpoint_t = engine.t + self.checkpoint_every

    # ------------------------------------------------------------------ #
    # the live surface

    @property
    def t(self) -> int:
        """The engine's current timeslot."""
        return self.engine.t

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("session is finished; open a new one")

    def submit(
        self,
        flows: Sequence[ScheduledFlow],
        *,
        late: str = "raise",
    ) -> int:
        """Schedule flows for injection; returns how many were accepted.

        Flows must be sorted by arrival slot.  Arrivals before the current
        slot cannot be injected in the past; ``late="raise"`` (the
        default, for deterministic replays) rejects them, ``late="clamp"``
        moves them to the current slot (what a live control plane wants —
        a flow submitted "now" starts now).
        """
        self._check_open()
        if late not in ("raise", "clamp"):
            raise ValueError(f"late must be 'raise' or 'clamp', got {late!r}")
        now = self.engine.t
        batch: List[ScheduledFlow] = []
        for item in flows:
            item = tuple(item)
            if len(item) != 5:
                raise ValueError(
                    f"flow tuple must have 5 fields "
                    f"(arrival, src, dst, cells, bytes), got {item!r}"
                )
            if item[0] < now:
                if late == "raise":
                    raise ValueError(
                        f"flow arrival {item[0]} is in the past "
                        f"(session is at slot {now}); submit earlier or "
                        f"use late='clamp'"
                    )
                item = (now,) + item[1:]
            batch.append(item)
        self.engine.schedule_flows(batch)
        return len(batch)

    def advance(self, slots: int, *, pull: bool = True) -> int:
        """Run ``slots`` timeslots; returns the new current slot.

        Pulls the attached source (exactly the arrivals before the target
        slot) first, so live generation and batch pre-scheduling inject
        identical flows, then steps the engine and writes a durability
        snapshot if the advance crossed the checkpoint mark.  ``pull=False``
        steps without generating new load (incremental draining).
        """
        self._check_open()
        if slots <= 0:
            raise ValueError(f"slots must be >= 1, got {slots}")
        target = self.engine.t + slots
        if pull and self.source is not None:
            arrivals = self.source.take(target)
            if arrivals:
                self.engine.schedule_flows(arrivals)
        self.engine.run(slots)
        if (self.checkpoint_path is not None
                and self.engine.t >= self._next_checkpoint_t):
            self.checkpoint_now()
        return self.engine.t

    def advance_to(self, target: int) -> int:
        """Run until the engine reaches absolute slot ``target``."""
        self._check_open()
        if target < self.engine.t:
            raise ValueError(
                f"target {target} is before the current slot {self.engine.t}"
            )
        if target > self.engine.t:
            self.advance(target - self.engine.t)
        return self.engine.t

    def adjust_load(self, factor: float) -> float:
        """Scale the attached source's arrival rate going forward."""
        self._check_open()
        if self.source is None:
            raise RuntimeError("session has no workload source to adjust")
        return self.source.set_load_factor(factor)

    # ------------------------------------------------------------------ #
    # durability

    def checkpoint_now(self, path=None) -> Optional[object]:
        """Write a durability snapshot immediately; returns the path.

        The snapshot carries the engine state plus the workload source's
        generator state, so a resumed session continues the exact arrival
        stream.  With ``checkpoint_parts`` the snapshot is persisted as
        per-shard split files instead of one whole file.
        """
        self._check_open()
        path = path if path is not None else self.checkpoint_path
        if path is None:
            raise RuntimeError("session has no checkpoint path configured")
        snapshot = self.engine.snapshot()
        snapshot.state["service"] = {
            "source": (None if self.source is None
                       else self.source.state_dict()),
        }
        if self.checkpoint_parts:
            save_split_checkpoint(snapshot, path, self.checkpoint_parts)
        else:
            save_checkpoint(snapshot, path)
        self._next_checkpoint_t = self.engine.t + self.checkpoint_every
        return path

    # ------------------------------------------------------------------ #
    # telemetry over the wire

    def telemetry_rows(self, since: int = 0) -> List[Dict[str, int]]:
        """Closed sample windows from row index ``since`` on, as dicts.

        Row indices are stable across checkpoint/restart (the recorder's
        columns are part of the snapshot), which is what lets a client
        compose a gap-free stream over a server crash: re-fetch from the
        last index it saw and deduplicate on ``t``.
        """
        if self.recorder is None:
            return []
        series = self.recorder.series()
        columns = self.recorder.COLUMNS
        length = len(self.recorder)
        return [
            {name: int(series[name][i]) for name in columns}
            for i in range(max(0, since), length)
        ]

    def telemetry_row_count(self) -> int:
        """Closed sample windows recorded so far (0 without telemetry)."""
        return 0 if self.recorder is None else len(self.recorder)

    def status(self) -> Dict[str, object]:
        """A cheap live snapshot of where the run is."""
        engine = self.engine
        metrics = engine.metrics
        return {
            "t": engine.t,
            "n": self.config.n,
            "h": self.config.h,
            "congestion_control": self.config.congestion_control,
            "backend": engine.backend_effective,
            "active_flows": engine.flows.active_count,
            "completed_flows": len(engine.flows.completed),
            "cells_delivered": metrics.payload_cells_delivered,
            "cells_injected": metrics.cells_injected,
            "load_factor": (None if self.source is None
                            else self.source.factor),
            "source_emitted": (None if self.source is None
                               else self.source.emitted),
            "telemetry_rows": self.telemetry_row_count(),
            "resumed_from": self.resumed_from,
            "closed": self.closed,
        }

    # ------------------------------------------------------------------ #
    # completion

    def finish(self, drain: bool = False, max_extra: int = 1_000_000):
        """Close the session and return the run's RunResult.

        With ``drain`` the engine keeps stepping past the last advance
        until every admitted flow completes (the batch path's ``drain=``).
        The checkpoint file and any per-shard parts are removed — the run
        completed, so the resume point must not outlive it.
        """
        self._check_open()
        from ..api import RunResult

        if drain:
            self.engine.run_until_quiescent(max_extra)
        if self.checkpoint_path is not None:
            discard_checkpoint(self.checkpoint_path)
        self.closed = True
        engine = self.engine
        return RunResult(
            config=self.config,
            metrics=engine.metrics,
            flows=engine.flows,
            summary=engine.metrics.summary(),
            telemetry=self.recorder,
            events=self.events,
            digest=None if engine.digest is None else engine.digest.value,
            resumed_from=self.resumed_from,
            engine=engine,
        )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.closed:
            if exc_type is None:
                self.finish()
            else:
                self.closed = True  # abandoned; keep checkpoints for resume

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Session(n={self.config.n}, t={self.engine.t}, "
            f"active={self.engine.flows.active_count}, "
            f"closed={self.closed})"
        )
