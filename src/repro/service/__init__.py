"""The live service layer: sessions, the control plane, and its clients.

Three pieces, layered:

* :class:`~repro.service.session.Session` — one live simulation driven
  incrementally (``advance`` / ``submit`` / ``checkpoint_now`` /
  ``finish``); open one with :func:`repro.open_session`.
* :class:`~repro.service.server.ServiceServer` — an asyncio control plane
  serving a session over JSON lines on TCP (``python -m repro serve``).
* :class:`~repro.service.client.ServiceClient` (asyncio) and
  :class:`~repro.service.client.SyncServiceClient` (blocking) — talk to a
  running server.

See DESIGN.md §13 for the architecture and the incremental-stepping
invariants the layer is built on.
"""

from .client import ServiceClient, SyncServiceClient, wait_for_ready
from .protocol import PROTOCOL_VERSION, VERBS, ServiceError
from .server import ServiceServer
from .session import Session

__all__ = [
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SyncServiceClient",
    "VERBS",
    "wait_for_ready",
]
