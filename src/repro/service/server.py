"""The asyncio control plane: ``python -m repro serve``.

Runs one live :class:`~repro.service.session.Session` continuously and
exposes it over JSON lines on a TCP socket (see
:mod:`repro.service.protocol` for the verbs).  The architecture is a
single event loop with two kinds of work interleaved cooperatively:

* the **drive task** advances the session in fixed quanta of timeslots,
  pushing freshly closed telemetry rows to subscribed connections and
  yielding to the loop between quanta, so control requests are served
  with at most one quantum of latency;
* **connection handlers** read one request line at a time and answer
  against the live session (all touches happen on the loop thread — no
  locking, no races).

Durability is the session's: with ``--checkpoint`` the drive loop's
advances periodically snapshot engine + workload-source state, and a
``kill -9``'d server restarted with the same arguments resumes from the
last snapshot — regenerating the exact arrivals and telemetry rows the
crashed run would have produced (the CI ``service-smoke`` job does
exactly this and asserts the composed telemetry stream is gap-free).

On startup the server prints one machine-readable line to stdout::

    {"host": "127.0.0.1", "port": 43211, "protocol": 1, "ready": true, "t": 0}

so callers using ``--port 0`` (an ephemeral port) can discover the
address.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, List, Optional

from ..workloads.streaming import (
    OpenLoopSource,
    TenantProfile,
    constant_curve,
    diurnal_curve,
)
from .protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)
from .session import Session

__all__ = ["ServiceServer", "main"]


class ServiceServer:
    """Serves one live session over JSON-lines TCP.

    Args:
        session: the open :class:`~repro.service.session.Session` to drive.
        host: interface to bind (default loopback).
        port: TCP port (0 = ephemeral; read :attr:`port` after start).
        quantum: timeslots per drive-loop advance — the control plane's
            worst-case response latency in simulated time.
        max_slots: stop (drain and finish) automatically once the session
            has advanced this many slots past its starting point (None =
            run until a client sends ``drain-and-stop`` / ``stop``).
    """

    def __init__(
        self,
        session: Session,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        quantum: int = 256,
        max_slots: Optional[int] = None,
    ):
        if quantum <= 0:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.session = session
        self.host = host
        self._requested_port = port
        self.quantum = quantum
        self.max_slots = max_slots
        self._server: Optional[asyncio.AbstractServer] = None
        self._subscribers: List[asyncio.StreamWriter] = []
        self._pushed_rows = session.telemetry_row_count()
        self._drain = False
        self._stop = False
        self._finished: Optional[asyncio.Event] = None
        #: the session's RunResult once the drive loop finished it
        self.result = None

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listening socket (does not start driving)."""
        self._finished = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def run(self, ready=None) -> None:
        """Start, announce readiness, drive to completion, shut down.

        ``ready`` is an optional callable invoked with this server once
        the socket is bound (the CLI prints its discovery line there).
        """
        if self._server is None:
            await self.start()
        if ready is not None:
            ready(self)
        drive = asyncio.ensure_future(self._drive())
        try:
            await drive
        finally:
            self._server.close()
            await self._server.wait_closed()
            for writer in list(self._subscribers):
                writer.close()

    async def _drive(self) -> None:
        """The main loop: advance, push telemetry, yield; then finish."""
        session = self.session
        start_t = session.t
        while not (self._drain or self._stop):
            if (self.max_slots is not None
                    and session.t - start_t >= self.max_slots):
                self._drain = True
                break
            session.advance(self.quantum)
            await self._push_telemetry()
            # yield so connection handlers run between quanta
            await asyncio.sleep(0)
        if self._drain:
            # drain incrementally so telemetry keeps streaming and control
            # requests keep being answered while in-flight work completes
            extra = 0
            while session.engine.has_pending_work and extra < 1_000_000:
                session.advance(self.quantum, pull=False)
                extra += self.quantum
                await self._push_telemetry()
                await asyncio.sleep(0)
            self.result = session.finish()
        elif not session.closed:
            if session.checkpoint_path is not None:
                session.checkpoint_now()
            # closed without finish(): keep the checkpoint as the resume
            # point — 'stop' is a pause, not a completion
            session.closed = True
        await self._push_telemetry(final=True)
        self._finished.set()

    async def _push_telemetry(self, final: bool = False) -> None:
        """Send freshly closed telemetry rows to every subscriber."""
        rows = self.session.telemetry_rows(since=self._pushed_rows)
        self._pushed_rows += len(rows)
        if not self._subscribers:
            return
        payload = b"".join(
            encode_message({"stream": "telemetry", "row": row})
            for row in rows
        )
        if final:
            payload += encode_message({"stream": "telemetry", "done": True})
        if not payload:
            return
        for writer in list(self._subscribers):
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                self._unsubscribe(writer)

    def _unsubscribe(self, writer: asyncio.StreamWriter) -> None:
        try:
            self._subscribers.remove(writer)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # the control plane

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(line)
                    response = await self._dispatch(message, writer)
                except ServiceError as exc:
                    response = error_response(
                        self._request_id(line), str(exc)
                    )
                if response is not None:
                    writer.write(encode_message(response))
                    await writer.drain()
                if self._stop or (self._drain and self._finished.is_set()):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._unsubscribe(writer)
            try:
                writer.close()
            except RuntimeError:
                pass

    @staticmethod
    def _request_id(line: bytes) -> Optional[Any]:
        try:
            message = json.loads(line.decode())
            return message.get("id") if isinstance(message, dict) else None
        except Exception:
            return None

    async def _dispatch(self, message: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> Optional[Dict[str, Any]]:
        op = message.get("op")
        request_id = message.get("id")
        session = self.session

        if op == "ping":
            return ok_response(request_id, t=session.t,
                               protocol=PROTOCOL_VERSION)

        if op == "status":
            return ok_response(request_id, **session.status())

        if op == "submit":
            flows = message.get("flows")
            if not isinstance(flows, list):
                raise ServiceError("submit needs a 'flows' list")
            late = message.get("late", "clamp")
            try:
                accepted = session.submit(
                    [tuple(flow) for flow in flows], late=late
                )
            except (ValueError, TypeError) as exc:
                raise ServiceError(f"rejected submission: {exc}") from exc
            return ok_response(request_id, accepted=accepted, t=session.t)

        if op == "adjust-load":
            factor = message.get("factor")
            if not isinstance(factor, (int, float)):
                raise ServiceError("adjust-load needs a numeric 'factor'")
            try:
                new_factor = session.adjust_load(float(factor))
            except (ValueError, RuntimeError) as exc:
                raise ServiceError(str(exc)) from exc
            return ok_response(request_id, factor=new_factor, t=session.t)

        if op == "telemetry":
            count = session.telemetry_row_count()
            rows = session.telemetry_rows(since=max(0, count - 1))
            return ok_response(
                request_id, t=session.t, rows=count,
                latest=rows[-1] if rows else None,
            )

        if op == "telemetry-rows":
            since = message.get("since", 0)
            if not isinstance(since, int) or since < 0:
                raise ServiceError("'since' must be a non-negative integer")
            rows = session.telemetry_rows(since=since)
            return ok_response(
                request_id, since=since, rows=rows,
                next=since + len(rows),
            )

        if op == "stream-telemetry":
            if writer not in self._subscribers:
                self._subscribers.append(writer)
            return ok_response(
                request_id, streaming=True,
                from_row=self._pushed_rows,
            )

        if op == "stop-stream":
            self._unsubscribe(writer)
            return ok_response(request_id, streaming=False)

        if op == "checkpoint-now":
            if session.checkpoint_path is None:
                raise ServiceError("server was started without --checkpoint")
            path = session.checkpoint_now()
            return ok_response(request_id, path=str(path), t=session.t)

        if op == "drain-and-stop":
            self._drain = True
            await self._finished.wait()
            summary = (None if self.result is None
                       else {k: float(v)
                             for k, v in self.result.summary.items()})
            return ok_response(
                request_id, t=session.t, summary=summary,
                completed_flows=len(session.engine.flows.completed),
            )

        if op == "stop":
            self._stop = True
            await self._finished.wait()
            return ok_response(request_id, t=session.t, stopped=True)

        raise ServiceError(f"unknown op {op!r}")


# ---------------------------------------------------------------------- #
# CLI: python -m repro serve


def _parse_tenants(specs: List[str]) -> List[TenantProfile]:
    """``name:weight:dist`` specs, dist in {short, heavy, uniform}."""
    from ..workloads.distributions import (
        HeavyTailedDistribution,
        ShortFlowDistribution,
        UniformSizeDistribution,
    )

    dists = {
        "short": ShortFlowDistribution,
        "heavy": HeavyTailedDistribution,
        "uniform": UniformSizeDistribution,
    }
    tenants = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3 or parts[2] not in dists:
            raise SystemExit(
                f"bad tenant spec {spec!r}; want name:weight:dist with "
                f"dist one of {sorted(dists)}"
            )
        name, weight, dist = parts
        tenants.append(TenantProfile(
            name, weight=float(weight), distribution=dists[dist](),
        ))
    return tenants


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro serve``."""
    from ..sim.config import SimConfig
    from ..api import open_session

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a Shale network as a live service with an "
                    "open-loop streaming workload and a JSON-lines "
                    "control plane.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral; the bound "
                             "port is announced on stdout)")
    parser.add_argument("--n", type=int, default=16, help="node count")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="Shale tuning parameter")
    parser.add_argument("--cc", default="hbh+spray",
                        help="congestion control mechanism")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--backend", default=None,
                        help="engine backend name (see repro.sim.backends)")
    parser.add_argument("--load", type=float, default=0.25,
                        help="long-run per-node offered load in cells/slot")
    parser.add_argument("--curve", choices=("constant", "diurnal"),
                        default="constant")
    parser.add_argument("--period", type=int, default=20_000,
                        help="diurnal period in slots")
    parser.add_argument("--low", type=float, default=0.25,
                        help="diurnal trough multiplier")
    parser.add_argument("--high", type=float, default=1.0,
                        help="diurnal peak multiplier")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME:WEIGHT:DIST",
                        help="add a tenant (dist: short|heavy|uniform; "
                             "repeatable; default: one 'short' tenant)")
    parser.add_argument("--quantum", type=int, default=256,
                        help="timeslots per drive-loop advance")
    parser.add_argument("--max-slots", type=int, default=None,
                        help="auto drain-and-stop after this many slots")
    parser.add_argument("--sample-interval", type=int, default=50,
                        help="telemetry sample window in slots")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="durability snapshot path: resume from it "
                             "when present, snapshot into it while "
                             "running")
    parser.add_argument("--checkpoint-every", type=int, default=2_000,
                        help="slots between durability snapshots")
    args = parser.parse_args(argv)

    try:
        config = SimConfig(
            n=args.n, h=args.h, seed=args.seed,
            congestion_control=args.cc,
            metrics_sample_interval=args.sample_interval,
            backend=args.backend or "",
        )
        curve = (diurnal_curve(args.period, args.low, args.high)
                 if args.curve == "diurnal" else constant_curve())
        tenants = _parse_tenants(args.tenant) if args.tenant else None
        source = OpenLoopSource(config, tenants, load=args.load,
                                curve=curve)
        session = open_session(
            config,
            source=source,
            telemetry=True,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
        server = ServiceServer(
            session, host=args.host, port=args.port,
            quantum=args.quantum, max_slots=args.max_slots,
        )

        def announce(srv: ServiceServer) -> None:
            print(json.dumps({
                "ready": True,
                "host": srv.host,
                "port": srv.port,
                "protocol": PROTOCOL_VERSION,
                "t": session.t,
                "resumed_from": session.resumed_from,
            }, sort_keys=True), flush=True)

        asyncio.run(server.run(ready=announce))
        if server.result is not None:
            summary = {k: round(float(v), 6)
                       for k, v in server.result.summary.items()}
            print(json.dumps({"finished": True, "t": session.t,
                              "summary": summary}, sort_keys=True))
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
