"""The service wire protocol: JSON lines over a stream transport.

One message per line, UTF-8 JSON, newline-terminated — readable with
``nc`` and implementable from any language without extra dependencies
(the control plane deliberately avoids gRPC/protobuf so the simulator's
dependency set stays numpy-only).

Three message shapes travel over a connection:

* **requests** (client → server): ``{"id": 7, "op": "status", ...}`` —
  ``op`` names a verb from :data:`VERBS`, ``id`` is an arbitrary
  client-chosen token echoed back in the response.
* **responses** (server → client): ``{"id": 7, "ok": true, ...}`` on
  success, ``{"id": 7, "ok": false, "error": "..."}`` on failure.
* **stream events** (server → client, unsolicited): ``{"stream":
  "telemetry", "row": {...}}`` — pushed to connections subscribed via the
  ``stream-telemetry`` verb.  Stream events carry no ``id``; clients must
  dispatch on the presence of the ``stream`` key.

Verbs:

``ping``            liveness check; echoes the server slot.
``status``          the session's :meth:`~repro.service.session.Session.status`.
``submit``          schedule flows: ``{"flows": [[t, src, dst, cells,
                    bytes], ...], "late": "clamp"|"raise"}``.
``adjust-load``     scale the open-loop source: ``{"factor": 1.5}``.
``telemetry``       latest telemetry row + row count (one-shot).
``telemetry-rows``  rows from an index: ``{"since": 42}`` — the polling
                    twin of the stream, used to compose gap-free series
                    across a server restart.
``stream-telemetry``  subscribe this connection to pushed rows.
``stop-stream``     unsubscribe.
``checkpoint-now``  write a durability snapshot immediately.
``drain-and-stop``  stop pulling new load, drain in-flight flows, finish
                    the session, reply with the final summary, shut down.
``stop``            shut down without draining (a checkpoint is written
                    first when the session has one configured).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "VERBS",
    "ServiceError",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
]

#: bumped on incompatible wire changes; carried in the server's ready line
PROTOCOL_VERSION = 1

VERBS = (
    "ping",
    "status",
    "submit",
    "adjust-load",
    "telemetry",
    "telemetry-rows",
    "stream-telemetry",
    "stop-stream",
    "checkpoint-now",
    "drain-and-stop",
    "stop",
)


class ServiceError(RuntimeError):
    """A request the server rejected (carried in the ``error`` field)."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as a canonical JSON line (newline-terminated bytes)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":"),
                   ensure_ascii=True) + "\n"
    ).encode()


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ServiceError` on junk."""
    try:
        message = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def ok_response(request_id: Optional[Any], **data: Any) -> Dict[str, Any]:
    """A success response echoing the request's ``id``."""
    return {"id": request_id, "ok": True, **data}


def error_response(request_id: Optional[Any], error: str) -> Dict[str, Any]:
    """A failure response echoing the request's ``id``."""
    return {"id": request_id, "ok": False, "error": error}
