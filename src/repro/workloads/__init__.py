"""Synthetic workloads modelled after the paper's evaluation setup."""

from .distributions import (
    FLOW_SIZE_BUCKETS,
    EmpiricalCdf,
    FixedSizeDistribution,
    FlowSizeDistribution,
    HeavyTailedDistribution,
    ShortFlowDistribution,
    UniformSizeDistribution,
    bucket_label,
    bucket_of,
    bytes_to_cells,
)
from .trace_io import (
    read_workload,
    workload_from_string,
    workload_stats,
    workload_to_string,
    write_workload,
)
from .generators import (
    all_to_all_workload,
    incast_workload,
    overlaid_permutations_workload,
    permutation_workload,
    poisson_workload,
    single_flow_workload,
)
from .adversarial import (
    adversarial_permutation_workload,
    hot_destination_workload,
    incast_storm_workload,
)
from .streaming import (
    LoadCurve,
    OpenLoopSource,
    TenantProfile,
    constant_curve,
    diurnal_curve,
    split_by_class,
    streaming_workload,
)

__all__ = [
    "FLOW_SIZE_BUCKETS",
    "EmpiricalCdf",
    "FixedSizeDistribution",
    "FlowSizeDistribution",
    "HeavyTailedDistribution",
    "LoadCurve",
    "OpenLoopSource",
    "ShortFlowDistribution",
    "TenantProfile",
    "UniformSizeDistribution",
    "adversarial_permutation_workload",
    "all_to_all_workload",
    "bucket_label",
    "bucket_of",
    "bytes_to_cells",
    "constant_curve",
    "diurnal_curve",
    "hot_destination_workload",
    "incast_storm_workload",
    "incast_workload",
    "overlaid_permutations_workload",
    "permutation_workload",
    "poisson_workload",
    "single_flow_workload",
    "read_workload",
    "split_by_class",
    "streaming_workload",
    "workload_from_string",
    "workload_stats",
    "workload_to_string",
    "write_workload",
]
