"""Flow-size distributions used by the paper's evaluation (Section 5).

The paper drives its simulations with synthetic workloads whose flow sizes
are "modeled after published datacenter traces":

* the **short flow workload**, after the measurement study of production
  datacenters by Benson et al. (IMC 2010) — flows up to 3 MB, dominated by
  small transfers; it produces primarily path-collision congestion;
* the **heavy-tailed workload**, after the VL2 data-mining trace (Greenberg
  et al., SIGCOMM 2009) — flows up to 1 GB with most *bytes* in elephant
  flows; it produces significant egress congestion.

We model each as a piecewise log-linear empirical CDF over flow size in
bytes, matching the published shapes (mass points and tail behaviour), and
expose inverse-CDF sampling.  Exact trace percentiles are not public in
machine-readable form; the CDFs below are digitised from the published
figures and preserve the features the experiments depend on: the short-flow
cap at 3 MB, the heavy tail reaching 1 GB, and the byte/flow-count split.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Optional, Sequence, Tuple

from ..core.cell import PAYLOAD_SIZE_BYTES

__all__ = [
    "FlowSizeDistribution",
    "EmpiricalCdf",
    "ShortFlowDistribution",
    "HeavyTailedDistribution",
    "UniformSizeDistribution",
    "FixedSizeDistribution",
    "bytes_to_cells",
    "FLOW_SIZE_BUCKETS",
    "bucket_label",
    "bucket_of",
]

#: Flow-size bucket boundaries (bytes) used throughout the paper's FCT plots.
FLOW_SIZE_BUCKETS: Tuple[int, ...] = (
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    16 * 1024 * 1024,
    64 * 1024 * 1024,
)

_BUCKET_LABELS = (
    "0-4kB",
    "4-16kB",
    "16-64kB",
    "64-256kB",
    "256kB-1MB",
    "1-4MB",
    "4-16MB",
    "16-64MB",
    "64MB+",
)


def bucket_of(size_bytes: int) -> int:
    """Index of the flow-size bucket containing ``size_bytes``.

    Bucket upper edges are inclusive: exactly 4 kB falls in "0-4kB".
    """
    return bisect.bisect_left(FLOW_SIZE_BUCKETS, size_bytes)


def bucket_label(index: int) -> str:
    """Human-readable label of flow-size bucket ``index``."""
    return _BUCKET_LABELS[index]


def bytes_to_cells(size_bytes: int) -> int:
    """Cells needed to carry ``size_bytes`` of payload (at least one)."""
    return max(1, -(-size_bytes // PAYLOAD_SIZE_BYTES))


class FlowSizeDistribution:
    """Interface for flow-size distributions (sizes in bytes)."""

    #: short name used in reports
    name = "base"

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes."""
        raise NotImplementedError

    def mean_bytes(self) -> float:
        """Expected flow size in bytes (used to convert load to arrival rate)."""
        raise NotImplementedError

    def mean_cells(self) -> float:
        """Expected flow size in cells."""
        return self.mean_bytes() / PAYLOAD_SIZE_BYTES

    def max_bytes(self) -> int:
        """Largest possible flow size."""
        raise NotImplementedError


class EmpiricalCdf(FlowSizeDistribution):
    """Piecewise log-linear empirical CDF over flow sizes.

    Args:
        points: ``(size_bytes, cumulative_probability)`` pairs, strictly
            increasing in both coordinates, ending at probability 1.0.
        name: label for reports.

    Sampling inverts the CDF with log-linear interpolation between knots,
    which matches how flow-size CDFs are drawn (log-scaled size axis).
    """

    def __init__(self, points: Sequence[Tuple[float, float]], name: str = "empirical"):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        prev_size, prev_p = 0.0, -1.0
        for size, p in points:
            if size <= prev_size or p <= prev_p:
                raise ValueError("CDF points must be strictly increasing")
            prev_size, prev_p = size, p
        if abs(points[-1][1] - 1.0) > 1e-9:
            raise ValueError("final CDF point must have probability 1.0")
        self.points = [(float(s), float(p)) for s, p in points]
        self.name = name
        self._probs = [p for _, p in self.points]
        self._mean = self._compute_mean()

    def _compute_mean(self, samples_per_segment: int = 64) -> float:
        """Mean via trapezoidal integration of the inverse CDF."""
        total = 0.0
        prev_p = 0.0
        prev_size = self.points[0][0]
        first_p = self.points[0][1]
        # mass below the first knot: treat as the first knot's size
        total += first_p * prev_size
        for (s0, p0), (s1, p1) in zip(self.points, self.points[1:]):
            # log-linear in size between knots
            for i in range(samples_per_segment):
                f0 = i / samples_per_segment
                f1 = (i + 1) / samples_per_segment
                size0 = math.exp(
                    math.log(s0) + f0 * (math.log(s1) - math.log(s0))
                )
                size1 = math.exp(
                    math.log(s0) + f1 * (math.log(s1) - math.log(s0))
                )
                total += (p1 - p0) / samples_per_segment * (size0 + size1) / 2
        return total

    def quantile(self, u: float) -> int:
        """Inverse CDF at ``u`` in [0, 1)."""
        if not 0.0 <= u < 1.0:
            raise ValueError(f"u must be in [0, 1), got {u}")
        idx = bisect.bisect_right(self._probs, u)
        if idx == 0:
            return max(1, int(self.points[0][0]))
        if idx >= len(self.points):
            return int(self.points[-1][0])
        s0, p0 = self.points[idx - 1]
        s1, p1 = self.points[idx]
        frac = (u - p0) / (p1 - p0)
        size = math.exp(math.log(s0) + frac * (math.log(s1) - math.log(s0)))
        return max(1, int(size))

    def sample(self, rng: random.Random) -> int:
        return self.quantile(rng.random())

    def mean_bytes(self) -> float:
        return self._mean

    def max_bytes(self) -> int:
        return int(self.points[-1][0])


def _scaled(points: Sequence[Tuple[float, float]],
            scale: float) -> List[Tuple[float, float]]:
    """Scale a CDF's size axis, preserving its shape.

    Down-scaled simulations (shorter horizons, fewer nodes) use ``scale < 1``
    so that the same *relative* mix of mice and elephants arrives within the
    simulated window; the paper's 50M-timeslot runs correspond to
    ``scale=1``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    out: List[Tuple[float, float]] = []
    floor = 0.0
    for size, p in points:
        scaled = max(1.0, size * scale)
        if scaled <= floor:  # keep the CDF strictly increasing after clamping
            scaled = floor + 1.0
        out.append((scaled, p))
        floor = scaled
    return out


class ShortFlowDistribution(EmpiricalCdf):
    """The paper's *short flow workload* (after Benson et al., IMC 2010).

    Production-datacenter flow sizes: the overwhelming majority of flows are
    under 10 kB, with the distribution capped at 3 MB.  Produces primarily
    path-collision congestion.

    Args:
        scale: multiply every flow size by this factor (see ``_scaled``).
    """

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(
            points=_scaled([
                (100, 0.02),
                (250, 0.10),
                (500, 0.30),
                (1_000, 0.50),
                (2_000, 0.65),
                (5_000, 0.78),
                (10_000, 0.86),
                (30_000, 0.92),
                (100_000, 0.96),
                (300_000, 0.98),
                (1_000_000, 0.995),
                (3_000_000, 1.0),
            ], scale),
            name="short-flow",
        )


class HeavyTailedDistribution(EmpiricalCdf):
    """The paper's *heavy-tailed workload* (after the VL2 data-mining trace).

    Most flows are mice but most *bytes* ride elephants of up to 1 GB.
    Produces significant egress congestion.

    Args:
        scale: multiply every flow size by this factor (see ``_scaled``).
        The paper's 50M-timeslot runs need scale=1; down-scaled runs use
        a proportionally smaller scale so elephants fit the horizon.
    """

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(
            points=_scaled([
                (100, 0.10),
                (300, 0.30),
                (1_000, 0.50),
                (3_000, 0.60),
                (10_000, 0.70),
                (100_000, 0.80),
                (1_000_000, 0.90),
                (10_000_000, 0.95),
                (100_000_000, 0.985),
                (1_000_000_000, 1.0),
            ], scale),
            name="heavy-tailed",
        )


class UniformSizeDistribution(FlowSizeDistribution):
    """Uniform flow sizes in ``[lo, hi]`` bytes (testing / microbenchmarks)."""

    def __init__(self, lo: int, hi: int):
        if not 1 <= lo <= hi:
            raise ValueError("need 1 <= lo <= hi")
        self.lo = lo
        self.hi = hi
        self.name = f"uniform[{lo},{hi}]"

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def mean_bytes(self) -> float:
        return (self.lo + self.hi) / 2

    def max_bytes(self) -> int:
        return self.hi


class FixedSizeDistribution(FlowSizeDistribution):
    """Every flow has exactly ``size_bytes`` bytes."""

    def __init__(self, size_bytes: int):
        if size_bytes < 1:
            raise ValueError("size must be positive")
        self.size_bytes = size_bytes
        self.name = f"fixed[{size_bytes}]"

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes

    def mean_bytes(self) -> float:
        return float(self.size_bytes)

    def max_bytes(self) -> int:
        return self.size_bytes
