"""Workload generators: Poisson flow arrivals, permutations, incast.

The paper's evaluation setup (Section 5): "Flows arrive according to a
Poisson process, and sources and destinations are chosen with uniform
probability across all nodes", with the arrival rate set by a *load factor*
``L`` — the average sending rate at each node divided by its total available
bandwidth (one cell per timeslot).

The failure experiment (Section 5.4) instead uses "a synthetic workload
consisting of 10 overlaid permutation traffic matrices".
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from ..sim.config import SimConfig
from ..sim.engine import ScheduledFlow
from .distributions import FlowSizeDistribution, bytes_to_cells

__all__ = [
    "poisson_workload",
    "permutation_workload",
    "overlaid_permutations_workload",
    "incast_workload",
    "single_flow_workload",
    "all_to_all_workload",
]


def poisson_workload(
    config: SimConfig,
    distribution: FlowSizeDistribution,
    load: float,
    duration: Optional[int] = None,
    rng: Optional[random.Random] = None,
    nodes: Optional[Sequence[int]] = None,
) -> List[ScheduledFlow]:
    """Poisson flow arrivals with uniform random endpoints at load ``L``.

    Args:
        config: supplies ``n`` and the default duration/seed.
        distribution: flow-size sampler.
        load: target load factor ``L`` in cells per node per timeslot.
        duration: arrival window in timeslots (default: ``config.duration``).
        rng: random source (default: seeded from ``config.seed``).
        nodes: restrict endpoints to this subset (used under failures).

    Returns:
        Flow tuples ``(arrival, src, dst, cells, bytes)`` sorted by arrival.
    """
    if not 0.0 < load <= 1.0:
        raise ValueError(f"load must be in (0, 1], got {load}")
    rng = rng if rng is not None else random.Random(config.seed ^ 0x5EED)
    duration = duration if duration is not None else config.duration
    pool = list(nodes) if nodes is not None else list(range(config.n))
    if len(pool) < 2:
        raise ValueError("need at least two nodes")
    # Network-wide arrival rate: each node sends `load` cells/slot on
    # average, so flows/slot = n * load / E[cells per flow].
    mean_cells = distribution.mean_cells()
    rate = len(pool) * load / mean_cells
    flows: List[ScheduledFlow] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        arrival = int(t)
        if arrival >= duration:
            break
        src = pool[rng.randrange(len(pool))]
        dst = pool[rng.randrange(len(pool))]
        while dst == src:
            dst = pool[rng.randrange(len(pool))]
        size_bytes = distribution.sample(rng)
        flows.append((arrival, src, dst, bytes_to_cells(size_bytes), size_bytes))
    return flows


def permutation_workload(
    config: SimConfig,
    size_cells: int,
    arrival: int = 0,
    rng: Optional[random.Random] = None,
    nodes: Optional[Sequence[int]] = None,
) -> List[ScheduledFlow]:
    """One random permutation: every node sends one flow, no shared endpoints.

    Used by the hardware-validation experiment (Fig. 8) and as the building
    block for the failure experiment (Fig. 12).
    """
    rng = rng if rng is not None else random.Random(config.seed ^ 0x9E37)
    pool = list(nodes) if nodes is not None else list(range(config.n))
    if len(pool) < 2:
        raise ValueError("need at least two nodes")
    targets = _derangement(pool, rng)
    size_bytes = size_cells * 244
    return sorted(
        (arrival, src, dst, size_cells, size_bytes)
        for src, dst in zip(pool, targets)
    )


def _derangement(pool: Sequence[int], rng: random.Random) -> List[int]:
    """A random permutation of ``pool`` with no fixed points."""
    items = list(pool)
    while True:
        rng.shuffle(items)
        if all(a != b for a, b in zip(pool, items)):
            return items


def overlaid_permutations_workload(
    config: SimConfig,
    size_cells: int,
    count: int = 10,
    rng: Optional[random.Random] = None,
    nodes: Optional[Sequence[int]] = None,
) -> List[ScheduledFlow]:
    """``count`` overlaid permutation matrices (the Fig. 12 workload).

    All permutations arrive at time zero; the paper measures the average
    destination throughput over the run.
    """
    rng = rng if rng is not None else random.Random(config.seed ^ 0xFA11)
    flows: List[ScheduledFlow] = []
    for _ in range(count):
        flows.extend(
            permutation_workload(config, size_cells, arrival=0, rng=rng, nodes=nodes)
        )
    return sorted(flows)


def incast_workload(
    config: SimConfig,
    target: int,
    senders: Sequence[int],
    size_cells: int,
    arrival: int = 0,
) -> List[ScheduledFlow]:
    """Every sender starts a ``size_cells`` flow to ``target`` at ``arrival``."""
    if target in senders:
        raise ValueError("target cannot also be a sender")
    size_bytes = size_cells * 244
    return [(arrival, s, target, size_cells, size_bytes) for s in senders]


def single_flow_workload(
    src: int, dst: int, size_cells: int, arrival: int = 0
) -> List[ScheduledFlow]:
    """A single flow (microbenchmarks and latency floor measurements)."""
    return [(arrival, src, dst, size_cells, size_cells * 244)]


def all_to_all_workload(
    config: SimConfig, size_cells: int, arrival: int = 0
) -> List[ScheduledFlow]:
    """Every ordered pair exchanges one flow (saturation stress test)."""
    size_bytes = size_cells * 244
    return sorted(
        (arrival, src, dst, size_cells, size_bytes)
        for src in range(config.n)
        for dst in range(config.n)
        if src != dst
    )
