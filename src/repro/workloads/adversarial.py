"""Adversarial traffic shapes: incast storms, hot-destination skew,
worst-case permutations.

The generators in :mod:`repro.workloads.generators` model the paper's
*benign* evaluation setup — uniform Poisson arrivals and random
permutations, exactly the demands oblivious designs are tuned for.  The
oblivious-routing literature (Optimal ORNs, arXiv:2111.08780) motivates the
opposite question: what does an *adversary* who knows the topology do to an
oblivious schedule?  These generators produce those shapes, each
byte-reproducible from ``config.seed`` with the same
``random.Random(config.seed ^ CONST)`` idiom as the benign generators.

* :func:`incast_storm_workload` — repeated synchronized fan-in bursts at
  random victims: many-to-one congestion that stresses receiver-side
  queues and hop-by-hop backpressure.
* :func:`hot_destination_workload` — Poisson-style arrivals whose
  destinations follow a Zipf law: a few nodes soak up most of the demand,
  concentrating spray traffic on the victims' phase groups.
* :func:`adversarial_permutation_workload` — coordinate-shift permutations
  in which every (src, dst) pair differs in exactly one EBS coordinate, so
  every direct path contends for the same phase's round-robin slots — the
  worst case for direct (non-spray) routing.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.coordinates import CoordinateSystem
from ..sim.config import SimConfig
from ..sim.engine import ScheduledFlow

__all__ = [
    "adversarial_permutation_workload",
    "hot_destination_workload",
    "incast_storm_workload",
]

_CELL_BYTES = 244  # payload bytes per cell, matching generators.py


def incast_storm_workload(
    config: SimConfig,
    size_cells: int,
    bursts: int = 4,
    fan_in: Optional[int] = None,
    duration: Optional[int] = None,
    rng: Optional[random.Random] = None,
    nodes: Optional[Sequence[int]] = None,
) -> List[ScheduledFlow]:
    """Repeated synchronized incast bursts at seeded random victims.

    Each burst picks a victim and ``fan_in`` distinct senders and starts
    all their flows at the same slot — the classic many-to-one storm.
    Burst times are spread evenly over the window with seeded jitter so
    storms can overlap with failure episodes at any phase of the run.

    Args:
        config: supplies ``n``, the default duration and the seed.
        size_cells: cells per flow.
        bursts: number of storm episodes.
        fan_in: senders per burst (default: all other nodes — full incast).
        duration: arrival window (default: ``config.duration``).
        rng: random source (default: seeded from ``config.seed``).
        nodes: restrict endpoints to this subset.
    """
    if bursts < 1:
        raise ValueError(f"need at least one burst, got {bursts}")
    rng = rng if rng is not None else random.Random(config.seed ^ 0x1CA57)
    duration = duration if duration is not None else config.duration
    pool = list(nodes) if nodes is not None else list(range(config.n))
    if len(pool) < 2:
        raise ValueError("need at least two nodes")
    fan = fan_in if fan_in is not None else len(pool) - 1
    if not 1 <= fan <= len(pool) - 1:
        raise ValueError(f"fan_in must be in [1, {len(pool) - 1}], got {fan}")
    size_bytes = size_cells * _CELL_BYTES
    stride = max(1, duration // bursts)
    flows: List[ScheduledFlow] = []
    for k in range(bursts):
        at = min(duration - 1, k * stride + rng.randrange(stride))
        victim = pool[rng.randrange(len(pool))]
        senders = rng.sample([p for p in pool if p != victim], fan)
        flows.extend(
            (at, src, victim, size_cells, size_bytes) for src in senders
        )
    return sorted(flows)


def hot_destination_workload(
    config: SimConfig,
    size_cells: int,
    flows_per_node: int = 4,
    zipf_s: float = 1.2,
    duration: Optional[int] = None,
    rng: Optional[random.Random] = None,
    nodes: Optional[Sequence[int]] = None,
) -> List[ScheduledFlow]:
    """Arrivals whose destinations follow a Zipf law over a seeded ranking.

    Every node originates ``flows_per_node`` flows at uniform random slots;
    each flow's destination is drawn with probability proportional to
    ``1 / rank**zipf_s`` over a seeded shuffle of the node list, so a
    handful of hot nodes receive most of the traffic.  ``zipf_s = 0``
    degenerates to uniform destinations.

    Args:
        config: supplies ``n``, the default duration and the seed.
        size_cells: cells per flow.
        flows_per_node: flows originated by each node.
        zipf_s: skew exponent (larger = hotter head).
        duration: arrival window (default: ``config.duration``).
        rng: random source (default: seeded from ``config.seed``).
        nodes: restrict endpoints to this subset.
    """
    if flows_per_node < 1:
        raise ValueError(f"flows_per_node must be >= 1, got {flows_per_node}")
    if zipf_s < 0:
        raise ValueError(f"zipf exponent must be >= 0, got {zipf_s}")
    rng = rng if rng is not None else random.Random(config.seed ^ 0x21FF)
    duration = duration if duration is not None else config.duration
    pool = list(nodes) if nodes is not None else list(range(config.n))
    if len(pool) < 2:
        raise ValueError("need at least two nodes")
    ranked = list(pool)
    rng.shuffle(ranked)  # which nodes are hot is itself seeded
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(ranked))]
    size_bytes = size_cells * _CELL_BYTES
    flows: List[ScheduledFlow] = []
    for src in pool:
        for _ in range(flows_per_node):
            arrival = rng.randrange(duration)
            dst = rng.choices(ranked, weights=weights)[0]
            while dst == src:
                dst = rng.choices(ranked, weights=weights)[0]
            flows.append((arrival, src, dst, size_cells, size_bytes))
    return sorted(flows)


def adversarial_permutation_workload(
    config: SimConfig,
    size_cells: int,
    rounds: int = 1,
    arrival: int = 0,
    rng: Optional[random.Random] = None,
) -> List[ScheduledFlow]:
    """Coordinate-shift permutations: the worst case for direct routing.

    Round ``k`` picks a phase ``p`` and a non-zero shift ``s`` (seeded) and
    sends ``src -> with_coordinate(src, p, (coord_p(src) + s) % r)``: a
    perfect permutation in which *every* pair differs in exactly one
    coordinate, so every direct path is a single hop through phase ``p``'s
    round-robin — all ``n`` flows contend for the same ``1/r`` slice of
    slots instead of spreading over ``h`` phases.  An adversary who knows
    the EBS wiring cannot concentrate direct traffic harder with a
    permutation demand.  Spray traffic still balances (that is the
    oblivious guarantee under test).

    Args:
        config: supplies ``n``/``h`` and the seed.
        size_cells: cells per flow.
        rounds: overlaid shift-permutations (distinct seeded (p, s) draws).
        arrival: start slot for every round.
        rng: random source (default: seeded from ``config.seed``).
    """
    if rounds < 1:
        raise ValueError(f"need at least one round, got {rounds}")
    rng = rng if rng is not None else random.Random(config.seed ^ 0xADE5)
    coords = CoordinateSystem.shared(config.n, config.h)
    r = coords.r
    if r < 2:
        raise ValueError("adversarial shift needs a radix of at least 2")
    size_bytes = size_cells * _CELL_BYTES
    flows: List[ScheduledFlow] = []
    for _ in range(rounds):
        phase = rng.randrange(config.h)
        shift = 1 + rng.randrange(r - 1)  # non-zero: a true derangement
        for src in range(config.n):
            coord = coords.coordinate(src, phase)
            dst = coords.with_coordinate(src, phase, (coord + shift) % r)
            flows.append((arrival, src, dst, size_cells, size_bytes))
    return sorted(flows)
