"""Workload import/export in a plain CSV format.

Workloads are lists of ``(arrival, src, dst, cells, bytes)`` tuples.  This
module serialises them so that a workload generated once (or converted from
an external trace) can be replayed identically across runs and across
simulators — the Shale engine, the Opera baseline, and the multi-class
simulation all accept the same tuples.

Format: a header line then one flow per line::

    arrival,src,dst,cells,bytes
    0,3,11,42,10248
    17,0,5,1,100
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Iterable, List, Sequence, TextIO, Tuple, Union

from ..sim.engine import ScheduledFlow

__all__ = [
    "write_workload",
    "read_workload",
    "workload_to_string",
    "workload_from_string",
    "workload_stats",
]

_HEADER = ["arrival", "src", "dst", "cells", "bytes"]


def _write(flows: Iterable[ScheduledFlow], handle: TextIO) -> int:
    writer = csv.writer(handle)
    writer.writerow(_HEADER)
    count = 0
    for flow in flows:
        if len(flow) != 5:
            raise ValueError(f"flow tuple must have 5 fields, got {flow!r}")
        writer.writerow(flow)
        count += 1
    return count


def _read(handle: TextIO) -> List[ScheduledFlow]:
    reader = csv.reader(handle)
    header = next(reader, None)
    if header != _HEADER:
        raise ValueError(
            f"bad workload header {header!r}; expected {_HEADER!r}"
        )
    flows: List[ScheduledFlow] = []
    for line_no, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 5:
            raise ValueError(f"line {line_no}: expected 5 fields, got {row!r}")
        try:
            arrival, src, dst, cells, size_bytes = (int(x) for x in row)
        except ValueError as exc:
            raise ValueError(f"line {line_no}: non-integer field: {exc}")
        if cells < 1 or size_bytes < 0 or arrival < 0:
            raise ValueError(f"line {line_no}: out-of-range values in {row!r}")
        if src == dst:
            raise ValueError(f"line {line_no}: src == dst == {src}")
        flows.append((arrival, src, dst, cells, size_bytes))
    flows.sort()
    return flows


def write_workload(
    flows: Iterable[ScheduledFlow],
    path: Union[str, pathlib.Path],
) -> int:
    """Write a workload to ``path``; returns the number of flows written."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        return _write(flows, handle)


def read_workload(path: Union[str, pathlib.Path]) -> List[ScheduledFlow]:
    """Read a workload from ``path`` (sorted by arrival)."""
    with pathlib.Path(path).open("r", newline="") as handle:
        return _read(handle)


def workload_to_string(flows: Iterable[ScheduledFlow]) -> str:
    """Serialise a workload to a CSV string."""
    buffer = io.StringIO()
    _write(flows, buffer)
    return buffer.getvalue()


def workload_from_string(text: str) -> List[ScheduledFlow]:
    """Parse a workload from a CSV string."""
    return _read(io.StringIO(text))


def workload_stats(flows: Sequence[ScheduledFlow]) -> dict:
    """Summary statistics of a workload (for reports and sanity checks)."""
    if not flows:
        return {"flows": 0}
    cells = [f[3] for f in flows]
    sizes = [f[4] for f in flows]
    horizon = max(f[0] for f in flows) + 1
    nodes = {f[1] for f in flows} | {f[2] for f in flows}
    return {
        "flows": len(flows),
        "total_cells": sum(cells),
        "total_bytes": sum(sizes),
        "max_cells": max(cells),
        "mean_cells": sum(cells) / len(cells),
        "horizon": horizon,
        "nodes": len(nodes),
        "offered_cells_per_node_slot": sum(cells) / (len(nodes) * horizon),
    }
