"""Open-loop streaming workloads: replayable arrival traces for live runs.

The batch generators in :mod:`repro.workloads.generators` materialise a
whole workload up front; a *service* run has no horizon — flows keep
arriving while the engine is running.  This module provides the open-loop
side of that picture:

* :class:`OpenLoopSource` — an incremental, seeded arrival process.  Each
  call to :meth:`~OpenLoopSource.take` yields the flows arriving before an
  absolute timeslot, so a live session can pull "everything up to my next
  advance target" between engine steps.  The RNG stream is consumed one
  arrival at a time and never depends on *how* the timeline is sliced:
  ``take(100)`` then ``take(200)`` produces byte-identical flows to a
  single ``take(200)``, which is what makes incremental service runs
  bit-exact with batch runs over the same trace.
* :class:`TenantProfile` — a named share of the offered load with its own
  flow-size distribution and (optionally) its own node pool, so one source
  can mix, say, a latency-sensitive RPC tenant with a bulk-backup tenant.
* diurnal load curves — deterministic slot-indexed multipliers modelling
  the day/night swing of a production service.
* :func:`split_by_class` — maps a trace onto the multi-class traffic
  machinery (:class:`~repro.sim.multiclass.MultiClassSimulation`) using an
  interleave's flow-size cutoffs.

Everything is seeded and byte-reproducible: the same construction
arguments produce the same trace, and :meth:`OpenLoopSource.state_dict` /
:meth:`~OpenLoopSource.load_state` round-trip the generator through a
checkpoint so a restarted service regenerates the exact arrivals the
crashed one would have seen.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.config import SimConfig
from ..sim.engine import ScheduledFlow
from .distributions import (
    FlowSizeDistribution,
    ShortFlowDistribution,
    bytes_to_cells,
)

__all__ = [
    "LoadCurve",
    "OpenLoopSource",
    "TenantProfile",
    "constant_curve",
    "diurnal_curve",
    "split_by_class",
    "streaming_workload",
]

#: a deterministic slot-indexed load multiplier (pure function of the slot)
LoadCurve = Callable[[int], float]


def constant_curve(level: float = 1.0) -> LoadCurve:
    """A flat load multiplier (the open-loop analogue of a fixed load)."""
    if level <= 0.0:
        raise ValueError(f"load level must be > 0, got {level}")

    def curve(t: int) -> float:
        return level

    curve.describe = f"constant({level})"  # type: ignore[attr-defined]
    return curve


def diurnal_curve(
    period: int,
    low: float = 0.25,
    high: float = 1.0,
    peak: Optional[int] = None,
) -> LoadCurve:
    """A sinusoidal day/night load swing with one cycle per ``period`` slots.

    The multiplier moves smoothly between ``low`` (the quietest slot) and
    ``high`` (the busiest), peaking at slot ``peak`` (default: half way
    through the first period).  Both bounds must be positive — an open-loop
    source with a zero rate would never schedule its next arrival.
    """
    if period <= 0:
        raise ValueError(f"period must be >= 1, got {period}")
    if not 0.0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got low={low} high={high}")
    peak_slot = period // 2 if peak is None else peak
    mid = (high + low) / 2.0
    amplitude = (high - low) / 2.0
    omega = 2.0 * math.pi / period

    def curve(t: int) -> float:
        return mid + amplitude * math.cos(omega * (t - peak_slot))

    curve.describe = (  # type: ignore[attr-defined]
        f"diurnal(period={period}, low={low}, high={high}, "
        f"peak={peak_slot})"
    )
    return curve


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's slice of the offered load.

    Attributes:
        name: tenant identifier (lands in per-tenant trace statistics).
        weight: share of the arrival process relative to the other
            tenants' weights (normalised internally).
        distribution: the tenant's flow-size mix.
        nodes: endpoints this tenant's flows may use (default: all nodes).
    """

    name: str
    weight: float = 1.0
    distribution: FlowSizeDistribution = field(
        default_factory=ShortFlowDistribution
    )
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(self.nodes))
            if len(set(self.nodes)) < 2:
                raise ValueError(
                    f"tenant {self.name!r}: needs >= 2 distinct nodes"
                )


class OpenLoopSource:
    """A seeded, incremental, open-loop flow arrival process.

    Flows arrive as a Poisson process whose instantaneous rate is::

        rate(t) = n * load * curve(t) * factor / mean_cells_per_flow

    where ``load`` is the long-run per-node offered load in cells per slot
    (at curve multiplier 1.0 and factor 1.0), ``curve`` is a deterministic
    slot-indexed multiplier (e.g. :func:`diurnal_curve`), and ``factor`` is
    the live adjustment knob (:meth:`set_load_factor` — the service
    control plane's ``adjust-load`` verb).  Each arrival picks a tenant by
    weight, endpoints uniformly from the tenant's pool, and a size from
    the tenant's distribution.

    Determinism contract: the RNG words consumed per arrival are fixed
    (one exponential gap + tenant/endpoint/size draws), and rate changes
    only *scale* the unit-exponential gap, so the arrival sequence is a
    pure function of (seed, curve, adjustment history) — never of how
    :meth:`take` slices the timeline.
    """

    def __init__(
        self,
        config: SimConfig,
        tenants: Optional[Sequence[TenantProfile]] = None,
        *,
        load: float = 0.25,
        curve: Optional[LoadCurve] = None,
        seed: Optional[int] = None,
    ):
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {load}")
        self.config = config
        self.load = load
        self.curve = curve if curve is not None else constant_curve()
        if tenants is None:
            tenants = (TenantProfile("default"),)
        if not tenants:
            raise ValueError("need at least one tenant")
        self.tenants: Tuple[TenantProfile, ...] = tuple(tenants)
        self._pools: List[Tuple[int, ...]] = []
        for tenant in self.tenants:
            pool = (tuple(range(config.n)) if tenant.nodes is None
                    else tenant.nodes)
            if any(not 0 <= node < config.n for node in pool):
                raise ValueError(
                    f"tenant {tenant.name!r}: node out of range for "
                    f"n={config.n}"
                )
            self._pools.append(pool)
        total = sum(t.weight for t in self.tenants)
        self._cum_weights = []
        acc = 0.0
        for tenant in self.tenants:
            acc += tenant.weight / total
            self._cum_weights.append(acc)
        self._cum_weights[-1] = 1.0  # guard against float round-off
        #: weighted mean flow size in cells (sets flows-per-slot for a load)
        self.mean_cells = sum(
            (t.weight / total) * t.distribution.mean_cells()
            for t in self.tenants
        )
        self.seed = config.seed ^ 0x57EA if seed is None else seed
        self.rng = random.Random(self.seed)
        #: live load multiplier (the ``adjust-load`` knob)
        self.factor = 1.0
        #: (cursor slot, factor) history of live adjustments, for manifests
        self.adjustments: List[Tuple[int, float]] = []
        #: continuous arrival-time cursor
        self._clock = 0.0
        #: the next drawn-but-not-yet-emitted (flow, tenant name), if any
        self._next: Optional[Tuple[ScheduledFlow, str]] = None
        #: flows emitted so far
        self.emitted = 0
        #: per-tenant emitted-flow counts (trace statistics)
        self.per_tenant: Dict[str, int] = {t.name: 0 for t in self.tenants}

    # ------------------------------------------------------------------ #
    # the arrival process

    def _rate_at(self, t: int) -> float:
        """Flows per slot at slot ``t`` under the current live factor."""
        level = self.curve(t) * self.factor
        if level <= 0.0:
            raise ValueError(
                f"load curve * factor must stay > 0 (got {level} at t={t})"
            )
        return self.config.n * self.load * level / self.mean_cells

    def _draw(self) -> Tuple[ScheduledFlow, str]:
        """Draw the next arrival (advances the clock and the RNG)."""
        rng = self.rng
        # unit exponential scaled by the rate at the current cursor slot:
        # rate changes rescale the gap but never consume different words
        gap = rng.expovariate(1.0) / self._rate_at(int(self._clock))
        self._clock += gap
        arrival = int(self._clock)
        pick = rng.random()
        index = 0
        while self._cum_weights[index] < pick:
            index += 1
        tenant = self.tenants[index]
        pool = self._pools[index]
        src = pool[rng.randrange(len(pool))]
        dst = pool[rng.randrange(len(pool))]
        while dst == src:
            dst = pool[rng.randrange(len(pool))]
        size_bytes = tenant.distribution.sample(rng)
        flow = (arrival, src, dst, bytes_to_cells(size_bytes), size_bytes)
        return flow, tenant.name

    def take(self, until: int) -> List[ScheduledFlow]:
        """All flows arriving strictly before slot ``until`` (incremental).

        Successive calls continue where the previous one stopped; slicing
        the timeline differently never changes the flows produced.
        """
        out: List[ScheduledFlow] = []
        while True:
            if self._next is None:
                self._next = self._draw()
            flow, tenant_name = self._next
            if flow[0] >= until:
                return out
            out.append(flow)
            self.emitted += 1
            self.per_tenant[tenant_name] += 1
            self._next = None

    def trace(self, horizon: int) -> List[ScheduledFlow]:
        """The whole trace up to ``horizon`` in one call (batch runs)."""
        return self.take(horizon)

    # ------------------------------------------------------------------ #
    # live control

    def set_load_factor(self, factor: float) -> float:
        """Scale the arrival rate going forward; returns the new factor.

        The already-drawn next arrival keeps its slot (its gap was drawn
        under the old rate); every later gap uses the new rate.  The
        adjustment history is recorded for run manifests and checkpoints.
        """
        if factor <= 0.0:
            raise ValueError(f"load factor must be > 0, got {factor}")
        self.factor = float(factor)
        self.adjustments.append((int(self._clock), self.factor))
        return self.factor

    # ------------------------------------------------------------------ #
    # checkpoint round-trip

    def state_dict(self) -> dict:
        """The generator's mutable state (checkpoint encoding).

        Construction inputs (config, tenants, curve, seed) are *not*
        captured — a restored source must be built with the same arguments,
        then :meth:`load_state` resumes the arrival stream bit-exactly.
        """
        return {
            "seed": self.seed,
            "rng": self.rng.getstate(),
            "clock": self._clock,
            "next": (None if self._next is None
                     else [list(self._next[0]), self._next[1]]),
            "factor": self.factor,
            "adjustments": [list(a) for a in self.adjustments],
            "emitted": self.emitted,
            "per_tenant": dict(self.per_tenant),
        }

    def load_state(self, state: dict) -> None:
        if state["seed"] != self.seed:
            raise ValueError(
                f"source state was captured under seed {state['seed']}, "
                f"this source uses {self.seed}"
            )
        self.rng.setstate(
            tuple(
                tuple(part) if isinstance(part, list) else part
                for part in state["rng"]
            )
        )
        self._clock = state["clock"]
        self._next = (None if state["next"] is None
                      else (tuple(state["next"][0]), state["next"][1]))
        self.factor = state["factor"]
        self.adjustments = [tuple(a) for a in state["adjustments"]]
        self.emitted = state["emitted"]
        self.per_tenant = dict(state["per_tenant"])

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OpenLoopSource(n={self.config.n}, load={self.load}, "
            f"tenants={[t.name for t in self.tenants]}, "
            f"factor={self.factor}, emitted={self.emitted})"
        )


def streaming_workload(
    config: SimConfig,
    tenants: Optional[Sequence[TenantProfile]] = None,
    *,
    load: float = 0.25,
    curve: Optional[LoadCurve] = None,
    duration: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[ScheduledFlow]:
    """Materialise an open-loop trace up front (the batch-path twin).

    Equivalent to ``OpenLoopSource(...).trace(duration)``; exists so batch
    experiments and equivalence tests can replay exactly what a live
    session would stream.
    """
    source = OpenLoopSource(
        config, tenants, load=load, curve=curve, seed=seed
    )
    return source.trace(duration if duration is not None
                        else config.duration)


def split_by_class(
    flows: Sequence[ScheduledFlow], interleave
) -> Dict[int, List[ScheduledFlow]]:
    """Partition a trace by an interleave's flow-size cutoffs.

    Maps an open-loop trace onto the multi-class traffic machinery: class
    ``i`` receives exactly the flows
    :meth:`~repro.core.interleave.InterleavedSchedule.classify_flow`
    assigns to sub-schedule ``i`` (short flows ride the low-latency class,
    long flows the high-throughput one).
    """
    out: Dict[int, List[ScheduledFlow]] = {
        i: [] for i in range(len(interleave.specs))
    }
    for flow in flows:
        out[interleave.classify_flow(flow[3])].append(flow)
    return out
