"""Congestion control: mechanism registry and token-budget analysis.

The mechanisms execute inside :class:`repro.sim.node.Node`; this package
holds their metadata (:mod:`~repro.congestion.mechanisms`) and the Appendix D
token-budget mathematics (:mod:`~repro.congestion.token_budget`).
"""

from .mechanisms import (
    EVALUATION_ORDER,
    MECHANISMS,
    MechanismInfo,
    baseline_mechanisms,
    config_for,
    shale_mechanisms,
)
from .token_budget import (
    TokenBudgetPlan,
    bucket_rate_ceiling,
    max_propagation_delay_first_hop,
    max_propagation_delay_interior,
    plan_budgets,
    required_first_hop_budget,
    required_interior_budget,
)

__all__ = [
    "EVALUATION_ORDER",
    "MECHANISMS",
    "MechanismInfo",
    "TokenBudgetPlan",
    "baseline_mechanisms",
    "bucket_rate_ceiling",
    "config_for",
    "max_propagation_delay_first_hop",
    "max_propagation_delay_interior",
    "plan_budgets",
    "required_first_hop_budget",
    "required_interior_budget",
    "shale_mechanisms",
]
