"""Token-budget analysis (paper Appendix D).

Hop-by-hop caps the number of un-acknowledged cells per (neighbour, bucket)
at the token budget ``T`` (``T_F`` on first hops).  Because a token takes at
least one round trip (two propagation delays) to come back, a small budget
throttles a bucket's sending rate when the propagation delay ``P`` is large
relative to the epoch length ``E``.

Appendix D gives the conditions under which the throughput guarantee
survives:

* permutation traffic needs ``P <= h * T_F * E`` (the first hop is the
  bottleneck since it has no fan-out), and
* general traffic needs ``P <= h * T * (r - 1) * E`` for the non-first hops,
  where the fan-in/out degree ``r - 1`` spreads each bucket's load.

This module provides those bounds, the inverse problem (minimum budgets for
a target propagation delay) and the per-bucket rate ceiling used in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.schedule import Schedule

__all__ = [
    "max_propagation_delay_first_hop",
    "max_propagation_delay_interior",
    "required_first_hop_budget",
    "required_interior_budget",
    "bucket_rate_ceiling",
    "TokenBudgetPlan",
    "plan_budgets",
]


def max_propagation_delay_first_hop(schedule: Schedule, t_f: int) -> int:
    """Largest one-way delay (slots) that first-hop budget ``t_f`` tolerates.

    Appendix D: the throughput guarantee holds for permutation traffic while
    ``P <= h * T_F * E``.
    """
    if t_f < 1:
        raise ValueError("T_F must be >= 1")
    return schedule.h * t_f * schedule.epoch_length


def max_propagation_delay_interior(schedule: Schedule, t: int) -> int:
    """Largest delay that interior budget ``t`` tolerates.

    Appendix D: fan-in/fan-out of degree ``r - 1`` means the guarantee holds
    while ``P <= h * T * (r - 1) * E``.
    """
    if t < 1:
        raise ValueError("T must be >= 1")
    return schedule.h * t * (schedule.r - 1) * schedule.epoch_length


def required_first_hop_budget(schedule: Schedule, propagation_delay: int) -> int:
    """Minimum ``T_F`` sustaining the guarantee at ``propagation_delay``."""
    if propagation_delay < 0:
        raise ValueError("propagation delay must be >= 0")
    if propagation_delay == 0:
        return 1
    return max(1, math.ceil(
        propagation_delay / (schedule.h * schedule.epoch_length)
    ))


def required_interior_budget(schedule: Schedule, propagation_delay: int) -> int:
    """Minimum ``T`` sustaining the guarantee at ``propagation_delay``."""
    if propagation_delay < 0:
        raise ValueError("propagation delay must be >= 0")
    if propagation_delay == 0:
        return 1
    return max(1, math.ceil(
        propagation_delay
        / (schedule.h * (schedule.r - 1) * schedule.epoch_length)
    ))


def bucket_rate_ceiling(schedule: Schedule, budget: int,
                        propagation_delay: int) -> float:
    """Upper bound on one bucket's send rate (cells/slot) over one link.

    A token returns no sooner than ``max(E, 2P)`` slots after the cell was
    sent (it must wait for the link's next scheduled slot, one epoch away,
    and for two propagation traversals), so at most ``budget`` cells go out
    per such window; the link itself also caps the rate at one cell per
    epoch.
    """
    window = max(schedule.epoch_length, 2 * propagation_delay)
    return min(1.0 / schedule.epoch_length, budget / window)


@dataclass(frozen=True)
class TokenBudgetPlan:
    """Recommended budgets for a deployment.

    Attributes:
        t: interior token budget ``T``.
        t_f: first-hop token budget ``T_F``.
        propagation_delay: the delay the plan was sized for (slots).
    """

    t: int
    t_f: int
    propagation_delay: int


def plan_budgets(schedule: Schedule, propagation_delay: int) -> TokenBudgetPlan:
    """Size ``T`` and ``T_F`` for a given propagation delay.

    Follows Appendix D's guidance: raise ``T_F`` first (most of the benefit,
    least of the cost) and keep ``T`` at the smallest value that clears the
    interior bound.
    """
    return TokenBudgetPlan(
        t=required_interior_budget(schedule, propagation_delay),
        t_f=required_first_hop_budget(schedule, propagation_delay),
        propagation_delay=propagation_delay,
    )
