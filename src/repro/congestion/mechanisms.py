"""Registry and descriptions of the congestion-control mechanisms.

The mechanisms themselves execute inside :class:`repro.sim.node.Node` (they
change the TX/RX behaviour of every node, every slot, so they are compiled
into the node's hot path rather than dispatched through an interface).  This
module is the front door: mechanism metadata, config factories, and the set
the paper's evaluation compares (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..sim.config import SimConfig

__all__ = [
    "MechanismInfo",
    "MECHANISMS",
    "EVALUATION_ORDER",
    "config_for",
    "shale_mechanisms",
    "baseline_mechanisms",
]


@dataclass(frozen=True)
class MechanismInfo:
    """Metadata for one congestion-control mechanism.

    Attributes:
        name: config string (``SimConfig.congestion_control``).
        kind: ``"shale"`` for the paper's contributions, ``"baseline"``
            for comparison mechanisms.
        in_network: True when the mechanism acts at intermediate hops.
        targets: which congestion type it primarily addresses.
        summary: one-line description.
    """

    name: str
    kind: str
    in_network: bool
    targets: str
    summary: str


MECHANISMS: Dict[str, MechanismInfo] = {
    info.name: info
    for info in (
        MechanismInfo(
            "none", "baseline", False, "nothing",
            "No congestion control beyond the implicit forwarded-first "
            "admission control.",
        ),
        MechanismInfo(
            "priority", "baseline", True, "mean FCT",
            "In-network shortest-flow-first scheduling: cells ranked by "
            "arrival time + flow size x epoch length (pFabric-style).",
        ),
        MechanismInfo(
            "isd", "baseline", False, "egress congestion",
            "Idealized Sender-Driven: clairvoyant fair sharing of each "
            "receiver's bandwidth budget R among its active flows.",
        ),
        MechanismInfo(
            "rd", "baseline", False, "egress congestion",
            "Receiver-driven PULL protocol (NDP without trimming): one PULL "
            "per 20 delivered cells per sender.",
        ),
        MechanismInfo(
            "ndp", "baseline", False, "egress congestion",
            "Receiver-driven PULLs plus queue caps with packet trimming and "
            "retransmission (the paper's NDP analog).",
        ),
        MechanismInfo(
            "spray-short", "shale", True, "path-collision congestion",
            "Spraying hops choose the shortest send queue in the next phase "
            "(ties broken randomly).",
        ),
        MechanismInfo(
            "hop-by-hop", "shale", True, "egress congestion",
            "Per-(neighbour, bucket) token credit with PIEO queues; at most "
            "one outstanding cell per bucket per upstream neighbour.",
        ),
        MechanismInfo(
            "hbh+spray", "shale", True, "both",
            "hop-by-hop combined with spray-short: Shale's complete "
            "congestion-control solution.",
        ),
    )
}

#: The order mechanisms appear along the x-axis of Figs. 10/11/15/16.
EVALUATION_ORDER: Tuple[str, ...] = (
    "none",
    "priority",
    "isd",
    "rd",
    "ndp",
    "spray-short",
    "hop-by-hop",
    "hbh+spray",
)


def config_for(mechanism: str, base: SimConfig) -> SimConfig:
    """A copy of ``base`` running ``mechanism``."""
    if mechanism not in MECHANISMS:
        raise ValueError(
            f"unknown mechanism {mechanism!r}; known: {sorted(MECHANISMS)}"
        )
    return replace(base, congestion_control=mechanism)


def shale_mechanisms() -> List[str]:
    """The paper's contributed mechanisms."""
    return [m for m in EVALUATION_ORDER if MECHANISMS[m].kind == "shale"]


def baseline_mechanisms() -> List[str]:
    """The comparison baselines."""
    return [m for m in EVALUATION_ORDER if MECHANISMS[m].kind == "baseline"]
