"""repro — a from-scratch Python reproduction of Shale (SIGCOMM 2024).

Shale is an Oblivious Reconfigurable Network (ORN): circuit switches follow a
fixed, traffic-oblivious schedule while Valiant load balancing routes cells
indirectly to their destinations.  This package provides:

* :mod:`repro.core` — schedules, coordinates, routing, cells, buckets/tokens;
* :mod:`repro.sim` — a packet-level simulator with every congestion-control
  mechanism the paper evaluates;
* :mod:`repro.congestion` — the congestion-control mechanism registry;
* :mod:`repro.workloads` — the paper's synthetic workloads;
* :mod:`repro.failures` — failure detection and invalidation tokens;
* :mod:`repro.baselines` — the Opera comparison system;
* :mod:`repro.hardware` — FPGA end-host and memory-scaling models;
* :mod:`repro.analysis` — FCT normalisation and theory formulas;
* :mod:`repro.experiments` — regenerators for every paper figure.

Quickstart::

    from repro import SimConfig, simulate
    from repro.workloads import poisson_workload, ShortFlowDistribution

    cfg = SimConfig(n=64, h=2, duration=20_000, congestion_control="hbh+spray")
    wl = poisson_workload(cfg, ShortFlowDistribution(), load=0.2)
    result = simulate(cfg, wl, drain=True)
    print(result.summary)

:func:`simulate` also wires up telemetry, run monitoring, determinism
digests and checkpoint/resume behind keywords; :func:`open_session` is its
live twin — a :class:`~repro.service.Session` you step incrementally while
submitting flows, with the same observer keywords and a durability
checkpoint (serve one over TCP with ``python -m repro serve``); drop down
to :class:`~repro.sim.engine.Engine` for full control.
"""

from .core import (
    Cell,
    CoordinateSystem,
    HeaderCodec,
    InterleavedSchedule,
    Router,
    Schedule,
    Token,
    TokenLedger,
    srrd_schedule,
    two_class_interleave,
)
from .sim import (
    Engine,
    FlowRecord,
    MetricsCollector,
    MultiClassSimulation,
    PieoQueue,
    SimConfig,
    TimingModel,
)
from .api import RunResult, Session, open_session, simulate

__version__ = "1.0.0"

__all__ = [
    "Cell",
    "CoordinateSystem",
    "Engine",
    "RunResult",
    "Session",
    "open_session",
    "simulate",
    "FlowRecord",
    "HeaderCodec",
    "InterleavedSchedule",
    "MetricsCollector",
    "MultiClassSimulation",
    "PieoQueue",
    "Router",
    "Schedule",
    "SimConfig",
    "TimingModel",
    "Token",
    "TokenLedger",
    "srrd_schedule",
    "two_class_interleave",
    "__version__",
]
