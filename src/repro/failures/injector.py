"""Seeded stochastic fault injection: crash/flap processes and wire noise.

The :class:`FaultInjector` turns MTBF/MTTR parameters into a concrete,
fully reproducible schedule of :class:`~repro.failures.manager.FailureEvent`
and :class:`~repro.failures.manager.LinkFailureEvent` items.  Each node and
each link gets its *own* RNG stream derived from the seed and its identity
(``random.Random(f"{seed}:node:{i}")``), so the event sequence for one
entity is invariant under changes to every other parameter — adding link
flaps does not reshuffle the node crashes — and the whole sequence is
byte-identical for a given seed.

Up/down times are exponential (a Poisson failure process), the standard
MTBF/MTTR model.  ``mttr = 0`` means failures are permanent.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.coordinates import CoordinateSystem
from .manager import FailureEvent, FailureManager, LinkFailureEvent

__all__ = ["FaultInjector"]


class FaultInjector:
    """Generates a reproducible fault schedule for an ``N = r**h`` network.

    Args:
        n, h: network shape (defines the link set).
        duration: horizon (slots); no event is generated at or beyond it.
        seed: master seed; every entity derives its own stream from it.
        node_mtbf: mean slots between crashes per node (0 disables crashes).
        node_mttr: mean slots to repair a crashed node (0: permanent).
        link_mtbf: mean slots between flaps per (undirected) link
            (0 disables link flaps).
        link_mttr: mean slots to repair a flapped link (0: permanent).
        cell_loss_rate: transient on-wire payload corruption probability,
            passed through to the :class:`FailureManager`.
        node_ids: restrict crashes to these nodes (default: all).
        links: restrict flaps to these (a, b) pairs (default: every
            one-hop neighbour pair, each counted once).
    """

    def __init__(
        self,
        n: int,
        h: int,
        duration: int,
        seed: object = 0,
        node_mtbf: float = 0.0,
        node_mttr: float = 0.0,
        link_mtbf: float = 0.0,
        link_mttr: float = 0.0,
        cell_loss_rate: float = 0.0,
        node_ids: Optional[Sequence[int]] = None,
        links: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        for name, value in (("node_mtbf", node_mtbf), ("node_mttr", node_mttr),
                            ("link_mtbf", link_mtbf), ("link_mttr", link_mttr)):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        coords = CoordinateSystem.shared(n, h)
        self.n = n
        self.h = h
        self.duration = duration
        self.seed = seed
        self.node_mtbf = node_mtbf
        self.node_mttr = node_mttr
        self.link_mtbf = link_mtbf
        self.link_mttr = link_mttr
        self.cell_loss_rate = cell_loss_rate
        self.node_ids: List[int] = sorted(node_ids) if node_ids is not None \
            else list(range(n))
        if links is not None:
            self.links: List[Tuple[int, int]] = sorted(
                (min(a, b), max(a, b)) for a, b in links
            )
        else:
            self.links = sorted(
                (a, b)
                for a in range(n)
                for b in coords.all_neighbors(a)
                if a < b
            )
        self._events: Optional[List[object]] = None

    @classmethod
    def from_config(cls, config, **kwargs) -> "FaultInjector":
        """Build an injector keyed to a :class:`SimConfig` (shape + seed)."""
        kwargs.setdefault("seed", config.seed)
        return cls(config.n, config.h, config.duration, **kwargs)

    # ------------------------------------------------------------------ #
    # event generation

    def _up_down_process(self, rng: random.Random, mtbf: float,
                         mttr: float) -> List[Tuple[int, bool]]:
        """Alternating up/down transitions as (slot, failed) pairs."""
        out: List[Tuple[int, bool]] = []
        clock = 0.0
        prev = -1
        while True:
            clock += rng.expovariate(1.0 / mtbf)
            fail_at = max(prev + 1, int(clock))
            if fail_at >= self.duration:
                break
            out.append((fail_at, True))
            prev = fail_at
            if mttr <= 0:
                break  # permanent failure
            clock += rng.expovariate(1.0 / mttr)
            recover_at = max(prev + 1, int(clock))
            if recover_at >= self.duration:
                break
            out.append((recover_at, False))
            prev = recover_at
        return out

    def events(self) -> List[object]:
        """The full fault schedule, sorted by time (cached, deterministic)."""
        if self._events is not None:
            return list(self._events)
        events: List[object] = []
        if self.node_mtbf > 0:
            for node_id in self.node_ids:
                rng = random.Random(f"{self.seed}:node:{node_id}")
                for t, failed in self._up_down_process(
                        rng, self.node_mtbf, self.node_mttr):
                    events.append(FailureEvent(t, node_id, failed))
        if self.link_mtbf > 0:
            for a, b in self.links:
                rng = random.Random(f"{self.seed}:link:{a}:{b}")
                for t, failed in self._up_down_process(
                        rng, self.link_mtbf, self.link_mttr):
                    events.append(LinkFailureEvent(t, a, b, failed))
        events.sort(key=self._sort_key)
        self._events = events
        return list(events)

    @staticmethod
    def _sort_key(event) -> Tuple[int, int, int, int]:
        if isinstance(event, LinkFailureEvent):
            return (event.t, 1, event.a, event.b)
        return (event.t, 0, event.node, -1)

    def describe(self) -> str:
        """One line per event — byte-identical for a given seed."""
        return "\n".join(repr(e) for e in self.events())

    # ------------------------------------------------------------------ #
    # manager plumbing

    def build_manager(self, detection_epochs: int = 1,
                      propagate: bool = True) -> FailureManager:
        """A :class:`FailureManager` driving this injector's schedule."""
        return FailureManager(
            events=self.events(),
            detection_epochs=detection_epochs,
            propagate=propagate,
            cell_loss_rate=self.cell_loss_rate,
            loss_seed=f"{self.seed}:wire-loss",
        )
