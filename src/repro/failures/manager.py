"""Failure detection, propagation and rerouting (paper Section 3.4, App. A).

The protocol has three ingredients:

* **Detection** — every node sends and receives a cell from each neighbour
  once per epoch, so a missing cell reveals a failed link or node.  A node
  declares a neighbour down after ``detection_epochs`` consecutive missed
  cells.  Detection is symmetric: once node ``i`` stops hearing from ``j``
  it also stops sending payload to ``j`` and instead *probes* it once per
  epoch with a dummy cell carrying a deafness complaint, so a one-way link
  failure shuts the link down on both sides and a recovered link is
  re-validated from real cells, never from oracle knowledge.

* **Propagation** — *invalidation tokens* ride the token space of cell
  headers.  A route token ``{j, 0}`` tells a neighbour that the sender has
  no valid direct route towards destination ``j``, invalidating the
  corresponding subtree of the deterministic direct-path tree; recipients
  that thereby lose their own last valid route re-announce, so the news
  floods exactly the affected subtree.  *Re-validation tokens* reverse an
  invalidation when a link or node recovers.

* **Reaction** — cells whose direct semi-path would traverse a failed
  node/link are reset to fresh spraying hops; spraying hops simply avoid
  failed or invalidated neighbours; cells whose *final* hop is down are
  dropped (an end-to-end transport above Shale recovers them).

Simulation note (recorded in DESIGN.md): healthy links elide dummy cells,
so per-slot silence cannot be observed directly.  Silence toward a healthy
observer only ever *begins* at a failure event, which lets the manager run
detection from an agenda: when a node or link fails it computes, for every
affected directed pair (sender → observer), the exact slot at which the
observer will have missed ``detection_epochs`` consecutive scheduled cells
(plus propagation delay) and fires the local detection then — equivalent to
per-slot liveness tracking at a fraction of the cost.  Every *clearing* of
a marking, by contrast, is purely cell-driven: it happens only when a real
transmission from the marked neighbour arrives.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.header import TOKEN_INVALIDATE, TOKEN_REGULAR, TOKEN_REVALIDATE, Token
from ..sim.node import LINK_DEAF, LINK_SILENT, Transmission

__all__ = ["FailureManager", "FailureEvent", "LinkFailureEvent"]


class FailureEvent:
    """A scheduled node failure or recovery.

    Attributes:
        t: timeslot at which the event takes effect.
        node: affected node id.
        failed: True to fail the node, False to recover it.
    """

    __slots__ = ("t", "node", "failed")

    def __init__(self, t: int, node: int, failed: bool = True):
        self.t = t
        self.node = node
        self.failed = failed

    def __repr__(self) -> str:
        verb = "fail" if self.failed else "recover"
        return f"FailureEvent({verb} node {self.node} @ {self.t})"


class LinkFailureEvent:
    """A scheduled link failure or recovery between two neighbours.

    Attributes:
        t: timeslot at which the event takes effect.
        a, b: the link endpoints (must be one-hop schedule neighbours).
        failed: True to fail the link, False to recover it.
        bidirectional: when False only the directed ``a -> b`` wire is
            affected (``b``'s transmissions still reach ``a``), modelling a
            one-way fault such as a dead laser.
    """

    __slots__ = ("t", "a", "b", "failed", "bidirectional")

    def __init__(self, t: int, a: int, b: int, failed: bool = True,
                 bidirectional: bool = True):
        self.t = t
        self.a = a
        self.b = b
        self.failed = failed
        self.bidirectional = bidirectional

    def __repr__(self) -> str:
        verb = "fail" if self.failed else "recover"
        arrow = "<->" if self.bidirectional else "->"
        return f"LinkFailureEvent({verb} link {self.a}{arrow}{self.b} @ {self.t})"


def _encode_event(event) -> tuple:
    """A fail/recover event as a plain tuple (checkpoint encoding)."""
    if isinstance(event, LinkFailureEvent):
        return ("link", event.t, event.a, event.b, event.failed,
                event.bidirectional)
    return ("node", event.t, event.node, event.failed)


def _decode_event(state) -> object:
    kind = state[0]
    if kind == "link":
        return LinkFailureEvent(state[1], state[2], state[3],
                                failed=state[4], bidirectional=state[5])
    return FailureEvent(state[1], state[2], failed=state[3])


class FailureManager:
    """Injects failures into an engine and runs the detection/invalidation
    protocol.

    Args:
        failed_nodes: nodes failed from the start of the run.
        events: optional timed :class:`FailureEvent` /
            :class:`LinkFailureEvent` items.
        detection_epochs: consecutive missed cells (one per epoch) before a
            neighbour is declared down.  The paper detects within one epoch;
            raising this models conservative detection against clock skew.
        propagate: when False, only local (neighbour) detection happens and
            no route invalidation tokens are exchanged — an ablation showing
            why propagation matters.  Deafness complaints still flow: they
            are part of detection, not propagation.
        failed_links: (a, b) pairs failed bidirectionally from the start.
        cell_loss_rate: probability that any payload cell is corrupted on
            the wire (its header — tokens, control messages, the liveness
            observation — still arrives).  Drawn from a dedicated RNG
            stream derived from ``SimConfig.seed`` unless ``loss_seed`` is
            given, so runs are reproducible.
        loss_seed: optional explicit seed for the wire-loss RNG stream.
        link_loss_rates: the *gray-failure* wire model — per-directed-link
            payload loss probabilities, ``{(sender, receiver): rate}``.
            A gray link is lossy but alive: payload cells vanish at the
            given rate while headers (tokens, control messages, the
            liveness observation) still land, so the missed-cell detector
            never fires — exactly what makes gray failures nasty in
            production.  A rate of ``1.0`` is not gray but dead and is
            handled by the link-down machinery (the link is failed at
            ``apply`` time, so detection fires like any link failure); a
            rate of ``0.0`` is dropped entirely (no RNG stream is created,
            keeping the run bit-identical to no entry at all).  Each gray
            link draws from its own RNG stream derived from ``gray_seed``
            and its identity, so adding one gray link never reshuffles the
            loss pattern of another.
        gray_seed: optional explicit seed for the gray-link RNG streams
            (default: derived from ``SimConfig.seed``).
    """

    def __init__(
        self,
        failed_nodes: Iterable[int] = (),
        events: Optional[Sequence[object]] = None,
        detection_epochs: int = 1,
        propagate: bool = True,
        failed_links: Iterable[Tuple[int, int]] = (),
        cell_loss_rate: float = 0.0,
        loss_seed: Optional[object] = None,
        link_loss_rates: Optional[Dict[Tuple[int, int], float]] = None,
        gray_seed: Optional[object] = None,
    ):
        self.initial_failed: Set[int] = set(failed_nodes)
        self.initial_failed_links: List[Tuple[int, int]] = sorted(
            (min(a, b), max(a, b)) for a, b in failed_links
        )
        self.events: List[object] = sorted(events or [], key=lambda e: e.t)
        if detection_epochs < 1:
            raise ValueError("detection takes at least one epoch")
        if not 0.0 <= cell_loss_rate < 1.0:
            raise ValueError(f"cell loss rate must be in [0, 1), got {cell_loss_rate}")
        self.link_loss_rates: Dict[Tuple[int, int], float] = {}
        for (a, b), rate in sorted((link_loss_rates or {}).items()):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"gray loss rate for link {a}->{b} must be in [0, 1], "
                    f"got {rate}"
                )
            if rate > 0.0:
                self.link_loss_rates[(a, b)] = rate
        self._gray_seed = gray_seed
        # per-directed-link RNG streams for 0 < rate < 1 (rate 1.0 links
        # are failed outright in apply(), never drawn from)
        self._gray_rng: Dict[Tuple[int, int], random.Random] = {}
        self.detection_epochs = detection_epochs
        self.propagate = propagate
        self.cell_loss_rate = cell_loss_rate
        self._loss_seed = loss_seed
        self._loss_rng: Optional[random.Random] = None
        self._next_event = 0
        self._engine = None
        # directed pairs (sender, observer) currently silent, mapped to the
        # slot at which the silence began; guards agenda staleness
        self._silence: Dict[Tuple[int, int], int] = {}
        # pending detections: (fire_t, seq, sender, observer, silence_start)
        self._agenda: List[Tuple[int, int, int, int, int]] = []
        self._agenda_seq = 0
        #: (t, detector, neighbour) — neighbour declared down from silence
        self.detections: List[Tuple[int, int, int]] = []
        #: (t, recipient, neighbour) — neighbour declared down from a complaint
        self.deaf_notices: List[Tuple[int, int, int]] = []
        #: (t, node, neighbour) — neighbour re-validated from heard cells
        self.undetects: List[Tuple[int, int, int]] = []
        #: applied fail/recover events with a drop-counter snapshot
        self.event_log: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # engine lifecycle hooks

    def apply(self, engine) -> None:
        """Install initial failures into a freshly built engine."""
        self._engine = engine
        if self._loss_rng is None:
            seed = self._loss_seed
            if seed is None:
                seed = f"{engine.config.seed}:wire-loss"
            self._loss_rng = random.Random(seed)
        if self.link_loss_rates and not self._gray_rng:
            gray_seed = self._gray_seed
            if gray_seed is None:
                gray_seed = f"{engine.config.seed}:gray"
            for (a, b), rate in sorted(self.link_loss_rates.items()):
                if rate >= 1.0:
                    continue  # dead, not gray: failed below, no RNG stream
                self._gray_rng[(a, b)] = random.Random(
                    f"{gray_seed}:link:{a}:{b}"
                )
        for a, b in self.initial_failed_links:
            self._fail_link(engine, a, b, 0, bidirectional=True)
        for (a, b), rate in sorted(self.link_loss_rates.items()):
            # a total-loss "gray" link is simply a dead wire: route it
            # through the ordinary link-down machinery so detection fires
            if rate >= 1.0:
                self._fail_link(engine, a, b, 0, bidirectional=False)
        for node_id in sorted(self.initial_failed):
            self._fail_node(engine, node_id, 0)

    # ------------------------------------------------------------------ #
    # checkpoint support

    def state_dict(self) -> dict:
        """Constructor parameters plus all protocol state (checkpointing)."""
        return {
            "params": {
                "failed_nodes": sorted(self.initial_failed),
                "failed_links": list(self.initial_failed_links),
                "detection_epochs": self.detection_epochs,
                "propagate": self.propagate,
                "cell_loss_rate": self.cell_loss_rate,
                "loss_seed": self._loss_seed,
                "link_loss_rates": sorted(self.link_loss_rates.items()),
                "gray_seed": self._gray_seed,
            },
            "events": [_encode_event(e) for e in self.events],
            "next_event": self._next_event,
            "silence": sorted(self._silence.items()),
            "agenda": sorted(self._agenda),
            "agenda_seq": self._agenda_seq,
            "detections": list(self.detections),
            "deaf_notices": list(self.deaf_notices),
            "undetects": list(self.undetects),
            "event_log": [dict(entry, target=list(entry["target"]))
                          for entry in self.event_log],
            "loss_rng": (None if self._loss_rng is None
                         else self._loss_rng.getstate()),
            "gray_rng": [(key, rng.getstate())
                         for key, rng in sorted(self._gray_rng.items())],
        }

    @classmethod
    def from_state(cls, state: dict) -> "FailureManager":
        """Rebuild a manager from the constructor-parameter portion of
        :meth:`state_dict`; :meth:`load_state` restores the runtime state."""
        params = state["params"]
        return cls(
            failed_nodes=params["failed_nodes"],
            events=[_decode_event(e) for e in state["events"]],
            detection_epochs=params["detection_epochs"],
            propagate=params["propagate"],
            failed_links=[tuple(link) for link in params["failed_links"]],
            cell_loss_rate=params["cell_loss_rate"],
            loss_seed=params["loss_seed"],
            link_loss_rates={tuple(link): rate for link, rate
                             in params.get("link_loss_rates", [])},
            gray_seed=params.get("gray_seed"),
        )

    def load_state(self, engine, state: dict) -> None:
        """Restore mid-run protocol state captured by :meth:`state_dict`.

        Node-side failure markings (``failed``/``failed_neighbors``/...) and
        ``engine.failed_links`` live in the node/engine checkpoints; callers
        restore those first, then this method re-aligns the manager.
        """
        self._engine = engine
        self.events = [_decode_event(e) for e in state["events"]]
        self._next_event = state["next_event"]
        self._silence.clear()
        self._silence.update(
            {tuple(key): start for key, start in state["silence"]}
        )
        self._agenda[:] = [tuple(entry) for entry in state["agenda"]]
        heapq.heapify(self._agenda)
        self._agenda_seq = state["agenda_seq"]
        self.detections[:] = [tuple(d) for d in state["detections"]]
        self.deaf_notices[:] = [tuple(d) for d in state["deaf_notices"]]
        self.undetects[:] = [tuple(d) for d in state["undetects"]]
        self.event_log[:] = [
            dict(entry, target=list(entry["target"]))
            for entry in state["event_log"]
        ]
        if state["loss_rng"] is not None:
            if self._loss_rng is None:
                self._loss_rng = random.Random()
            self._loss_rng.setstate(state["loss_rng"])
        for key, rng_state in state.get("gray_rng", []):
            key = tuple(key)
            rng = self._gray_rng.get(key)
            if rng is None:
                rng = self._gray_rng.setdefault(key, random.Random())
            rng.setstate(rng_state)

    def advance(self, engine, t: int) -> None:
        """Apply timed events and fire due missed-cell detections."""
        events = self.events
        while self._next_event < len(events) and events[self._next_event].t <= t:
            event = events[self._next_event]
            self._next_event += 1
            self._apply_event(engine, event, t)
        agenda = self._agenda
        while agenda and agenda[0][0] <= t:
            _, _, sender, observer, start = heapq.heappop(agenda)
            if self._silence.get((sender, observer)) != start:
                continue  # healed or rescheduled since; entry is stale
            node = engine.nodes[observer]
            if node.failed:
                continue  # observer died meanwhile; rescheduled on recovery
            self._mark_link_down(engine, node, sender, t, LINK_SILENT)

    def _apply_event(self, engine, event, t: int) -> None:
        if isinstance(event, LinkFailureEvent):
            if event.failed:
                self._fail_link(engine, event.a, event.b, t, event.bidirectional)
            else:
                self._recover_link(engine, event.a, event.b, t, event.bidirectional)
        else:
            if event.failed:
                self._fail_node(engine, event.node, t)
            else:
                self._recover_node(engine, event.node, t)

    # ------------------------------------------------------------------ #
    # the wire model (called from Engine._deliver_arrivals)

    def filter_arrival(self, engine, tx: Transmission, t: int):
        """Apply failed receivers, failed links and wire noise to ``tx``.

        Returns the (possibly payload-stripped) transmission to deliver, or
        ``None`` when nothing arrives at all.
        """
        cell = tx.cell
        payload = cell is not None and not cell.dummy
        if engine.nodes[tx.receiver].failed:
            if payload:
                engine.wire_drop(tx)
            return None
        if engine.failed_links and (tx.sender, tx.receiver) in engine.failed_links:
            if payload:
                engine.wire_drop(tx)
            return None
        if payload and self._gray_rng:
            gray = self._gray_rng.get((tx.sender, tx.receiver))
            if gray is not None \
                    and gray.random() < self.link_loss_rates[(tx.sender,
                                                              tx.receiver)]:
                # gray link: the payload vanishes on this (and only this)
                # wire while the header still lands, so the link looks
                # alive to the missed-cell detector
                engine.wire_drop(tx)
                return Transmission(tx.sender, tx.receiver, None,
                                    tx.tokens, tx.ctrl)
        if payload and self.cell_loss_rate > 0.0 \
                and self._loss_rng.random() < self.cell_loss_rate:
            # transient corruption: the payload is lost but the header —
            # tokens, control messages and the liveness observation — lands
            engine.wire_drop(tx)
            return Transmission(tx.sender, tx.receiver, None, tx.tokens, tx.ctrl)
        return tx

    # ------------------------------------------------------------------ #
    # failure mechanics

    def _require_link(self, engine, a: int, b: int) -> None:
        if a == b or engine.coords.distance(a, b) != 1:
            raise ValueError(
                f"nodes {a} and {b} are not one-hop schedule neighbours"
            )

    def _log_event(self, engine, t: int, action: str, kind: str,
                   target: List[object]) -> None:
        self.event_log.append({
            "t": t,
            "action": action,
            "kind": kind,
            "target": target,
            "drops_before": engine.metrics.cells_dropped,
        })
        if engine.events is not None:
            engine.events.emit(t, "failure_event", {
                "action": action, "kind": kind, "target": list(target),
            })

    def _fail_node(self, engine, node_id: int, t: int) -> None:
        node = engine.nodes[node_id]
        if node.failed:
            return
        node.failed = True
        self._log_event(engine, t, "fail", "node", [node_id])
        # The node simply goes dark: every neighbour must *notice* the
        # missing cells for itself.  Cells in the dead node's queues stay
        # captive until it recovers (they count as queued for conservation).
        for neighbor_id in engine.coords.all_neighbors(node_id):
            self._begin_silence(engine, node_id, neighbor_id, t)

    def _recover_node(self, engine, node_id: int, t: int) -> None:
        node = engine.nodes[node_id]
        if not node.failed:
            return
        node.failed = False
        self._log_event(engine, t, "recover", "node", [node_id])
        node.reset_for_recovery(t)
        node.wake()
        for neighbor_id in engine.coords.all_neighbors(node_id):
            if (node_id, neighbor_id) not in engine.failed_links:
                # our own transmissions flow again; neighbours re-validate
                # from the cells (or probe replies) they now hear
                self._silence.pop((node_id, neighbor_id), None)
            if engine.nodes[neighbor_id].failed \
                    or (neighbor_id, node_id) in engine.failed_links:
                # fresh eyes: we start a brand-new detection window for any
                # neighbour that is still dark toward us
                self._silence[(neighbor_id, node_id)] = t
                self._schedule_detection(engine, neighbor_id, node_id, t)

    def _fail_link(self, engine, a: int, b: int, t: int,
                   bidirectional: bool) -> None:
        self._require_link(engine, a, b)
        pairs = ((a, b), (b, a)) if bidirectional else ((a, b),)
        changed = False
        for sender, observer in pairs:
            if (sender, observer) in engine.failed_links:
                continue
            changed = True
            engine.failed_links.add((sender, observer))
            self._begin_silence(engine, sender, observer, t)
        if changed:
            self._log_event(engine, t, "fail", "link",
                            [a, b, "bi" if bidirectional else "dir"])

    def _recover_link(self, engine, a: int, b: int, t: int,
                      bidirectional: bool) -> None:
        self._require_link(engine, a, b)
        pairs = ((a, b), (b, a)) if bidirectional else ((a, b),)
        changed = False
        for sender, observer in pairs:
            if (sender, observer) not in engine.failed_links:
                continue
            changed = True
            engine.failed_links.discard((sender, observer))
            if not engine.nodes[sender].failed:
                # the wire works again; the observer re-validates when the
                # sender's cells (or probe replies) actually arrive
                self._silence.pop((sender, observer), None)
        if changed:
            self._log_event(engine, t, "recover", "link",
                            [a, b, "bi" if bidirectional else "dir"])

    # ------------------------------------------------------------------ #
    # missed-cell detection

    def _begin_silence(self, engine, sender: int, observer: int, t: int) -> None:
        key = (sender, observer)
        if key in self._silence:
            return  # already dark for another (still-active) reason
        self._silence[key] = t
        self._schedule_detection(engine, sender, observer, t)

    def _schedule_detection(self, engine, sender: int, observer: int,
                            start: int) -> None:
        """Queue the slot at which ``observer`` has missed ``detection_epochs``
        consecutive cells from ``sender`` (observed after propagation)."""
        sched = engine.schedule
        first_missed = sched.next_send_slot(sender, observer, after=start)
        last_missed = first_missed + (self.detection_epochs - 1) * sched.epoch_length
        fire = last_missed + engine.config.propagation_delay
        heapq.heappush(
            self._agenda,
            (fire, self._agenda_seq, sender, observer, start),
        )
        self._agenda_seq += 1

    def on_contact(self, engine, node, sender: int, t: int,
                   complaint: bool = False) -> None:
        """A transmission from ``sender`` arrived at ``node`` — the liveness
        observation.  Hearing the sender clears a SILENT marking; hearing it
        without a deafness complaint clears a DEAF marking."""
        mask = node._fail_cause.get(sender)
        if mask is None:
            return
        if mask & LINK_SILENT:
            self._silence.pop((sender, node.node_id), None)
            self._mark_link_up(engine, node, sender, t, LINK_SILENT)
        if not complaint and node._fail_cause.get(sender, 0) & LINK_DEAF:
            self._mark_link_up(engine, node, sender, t, LINK_DEAF)

    def _mark_link_down(self, engine, node, neighbor: int, t: int,
                        cause: int) -> None:
        mask = node._fail_cause.get(neighbor, 0)
        if mask & cause:
            return
        node._fail_cause[neighbor] = mask | cause
        if cause == LINK_SILENT:
            self.detections.append((t, node.node_id, neighbor))
        else:
            self.deaf_notices.append((t, node.node_id, neighbor))
        events = self._engine.events if self._engine is not None else None
        if events is not None:
            events.emit(t, "detection", {
                "detector": node.node_id, "neighbor": neighbor,
                "cause": "silent" if cause == LINK_SILENT else "deaf",
            })
        if mask:
            return  # already reacting because of the other cause
        node.failed_neighbors.add(neighbor)
        node.wake()  # must probe the suspect link even when otherwise idle
        self._requeue_link(engine, node, neighbor, t)
        if node.ledger is not None:
            # tokens owed by the dead neighbour will never return
            node.ledger.reset_neighbor(neighbor)
        if self.propagate:
            self._reevaluate_routes_down(engine, node, neighbor, t)

    def _mark_link_up(self, engine, node, neighbor: int, t: int,
                      cause: int) -> None:
        mask = node._fail_cause.get(neighbor, 0)
        if not mask & cause:
            return
        mask &= ~cause
        if mask:
            node._fail_cause[neighbor] = mask
            return
        del node._fail_cause[neighbor]
        node.failed_neighbors.discard(neighbor)
        self.undetects.append((t, node.node_id, neighbor))
        events = self._engine.events if self._engine is not None else None
        if events is not None:
            events.emit(t, "revalidation", {
                "node": node.node_id, "neighbor": neighbor,
            })
        if self.propagate:
            self._reevaluate_routes_up(engine, node, neighbor, t)

    # ------------------------------------------------------------------ #
    # route (in)validation — the direct-path-tree subtree state

    def _has_valid_direct_route(self, engine, node, dest: int) -> bool:
        """Does any mismatched-phase direct hop toward ``dest`` survive?"""
        coords = engine.coords
        nid = node.node_id
        for p in range(coords.h):
            want = coords.coordinate(dest, p)
            if coords.coordinate(nid, p) == want:
                continue
            target = coords.with_coordinate(nid, p, want)
            if target in node.failed_neighbors:
                continue
            if (target, dest) in node.link_invalid:
                continue
            return True
        return False

    def _reevaluate_routes_down(self, engine, node, neighbor: int,
                                t: int) -> None:
        """The link to ``neighbor`` died: announce every destination whose
        last valid direct route ran through it."""
        coords = engine.coords
        p = coords.mismatched_phases(node.node_id, neighbor)[0]
        affected_coord = coords.coordinate(neighbor, p)
        nid = node.node_id
        for dest in range(coords.n):
            if dest == nid:
                continue
            if coords.coordinate(dest, p) != affected_coord:
                continue  # this dest's phase-p hop does not use the link
            if dest in node.known_failed:
                continue
            if not self._has_valid_direct_route(engine, node, dest):
                self._announce_unreachable(engine, node, dest)

    def _reevaluate_routes_up(self, engine, node, neighbor: int, t: int) -> None:
        """The link to ``neighbor`` re-validated: withdraw stale
        announcements and resync route state with the restored peer."""
        # invalidations learned *from* the neighbour may have been
        # withdrawn while the link was down — drop them; the peer
        # re-announces its current set symmetrically
        stale = [key for key in node.link_invalid if key[0] == neighbor]
        for key in stale:
            node.link_invalid.discard(key)
        for dest in sorted(node.known_failed):
            if self._has_valid_direct_route(engine, node, dest):
                self._withdraw_unreachable(engine, node, dest)
        for dest in sorted(node.known_failed):
            if dest != neighbor:
                node._queue_token(neighbor, Token(dest, 0, TOKEN_INVALIDATE))

    def _announce_unreachable(self, engine, node, dest: int) -> None:
        node.known_failed.add(dest)
        for neighbor_id in engine.coords.all_neighbors(node.node_id):
            if neighbor_id == dest or neighbor_id in node.failed_neighbors:
                continue
            node._queue_token(neighbor_id, Token(dest, 0, TOKEN_INVALIDATE))

    def _withdraw_unreachable(self, engine, node, dest: int) -> None:
        node.known_failed.discard(dest)
        for neighbor_id in engine.coords.all_neighbors(node.node_id):
            if neighbor_id == dest or neighbor_id in node.failed_neighbors:
                continue
            node._queue_token(neighbor_id, Token(dest, 0, TOKEN_REVALIDATE))

    # ------------------------------------------------------------------ #
    # reaction: requeue / drop affected cells

    def _requeue_link(self, engine, node, failed_id: int, t: int) -> None:
        """Appendix A reaction at the node adjacent to the failure.

        Cells awaiting their final hop to the failed neighbour are dropped;
        cells on direct semi-paths via it restart their spraying semi-path;
        cells on spraying hops via it re-spray within the same phase.
        """
        coords = engine.coords
        h = coords.h
        for phase in range(h):
            mine = coords.coordinate(node.node_id, phase)
            theirs = coords.coordinate(failed_id, phase)
            if mine == theirs:
                continue
            if coords.with_coordinate(node.node_id, phase, theirs) != failed_id:
                continue
            offset = (theirs - mine) % coords.r
            link = node.link_index(phase, offset)
            queue = node.link_queues[link]
            stranded = queue.remove_if(lambda c: True)
            node.total_enqueued -= len(stranded)
            for cell in stranded:
                self._respray(engine, node, cell, failed_id, phase, t)

    def _requeue_direct_cells(self, engine, node, via: int, dest: int,
                              t: int) -> None:
        """A route token invalidated (via, dest): pull the direct cells for
        ``dest`` off the link to ``via`` and re-spray them."""
        coords = engine.coords
        p = coords.mismatched_phases(node.node_id, via)[0]
        offset = (coords.coordinate(via, p) - coords.coordinate(node.node_id, p)) \
            % coords.r
        link = node.link_index(p, offset)
        stranded = node.link_queues[link].remove_if(
            lambda c: c.sprays_remaining == 0 and c.dst == dest
        )
        node.total_enqueued -= len(stranded)
        for cell in stranded:
            self._respray(engine, node, cell, via, p, t)

    def _respray(self, engine, node, cell, bad_target: int, phase: int,
                 t: int) -> None:
        if node.bucket_tracker is not None:
            node.bucket_tracker.release((cell.dst, cell.sprays_remaining))
        node.release_upstream(cell)
        if engine.tracer is not None:
            engine.tracer.on_reroute(cell)
        if cell.dst == bad_target:
            # its final hop is dead: drop (end-to-end recovery's job)
            engine.metrics.on_drop()
            if engine.digest is not None:
                engine.digest.on_drop(cell, t)
            return
        if cell.sprays_remaining == 0:
            # direct semi-path via the failure: restart spraying
            cell.sprays_remaining = engine.coords.h
        cell.spray_phase = phase
        node.enqueue_forward(cell, t, (phase - 1) % engine.coords.h)

    # ------------------------------------------------------------------ #
    # token reception (called from Node.receive via the engine)

    def on_token(self, engine, node, sender: int, token: Token,
                 phase: int) -> None:
        """Handle a failure-protocol token arriving at ``node``."""
        t = engine.t
        if token.kind == TOKEN_REGULAR:
            return
        if token.sprays >= 1:
            # the link-status channel: dest names the complaining sender
            if token.kind == TOKEN_INVALIDATE and token.dest == sender:
                self._mark_link_down(engine, node, sender, t, LINK_DEAF)
            return
        # route tokens: (in)validation of the direct route to ``dest`` via
        # the sending neighbour
        dest = token.dest
        if dest == node.node_id:
            return
        key = (sender, dest)
        if token.kind == TOKEN_INVALIDATE:
            if key in node.link_invalid:
                return
            node.link_invalid.add(key)
            self._requeue_direct_cells(engine, node, sender, dest, t)
            if self.propagate and dest not in node.known_failed \
                    and not self._has_valid_direct_route(engine, node, dest):
                self._announce_unreachable(engine, node, dest)
        elif token.kind == TOKEN_REVALIDATE:
            if key not in node.link_invalid:
                return
            node.link_invalid.discard(key)
            if dest in node.known_failed \
                    and self._has_valid_direct_route(engine, node, dest):
                self._withdraw_unreachable(engine, node, dest)

    # ------------------------------------------------------------------ #
    # resilience reporting

    def resilience_summary(self) -> Dict[str, object]:
        """Per-event detection latencies and drop attribution.

        Deterministic for a given seed: ``json.dumps(..., sort_keys=True)``
        of the result is byte-identical across identical runs.
        """
        engine = self._engine
        epoch = engine.schedule.epoch_length if engine is not None else 1
        total_drops = engine.metrics.cells_dropped if engine is not None else 0
        events: List[Dict[str, object]] = []
        log = self.event_log
        for i, entry in enumerate(log):
            out = {
                "t": entry["t"],
                "action": entry["action"],
                "kind": entry["kind"],
                "target": list(entry["target"]),
            }
            # the window closes at the next event touching the same target
            end = None
            for later in log[i + 1:]:
                if later["kind"] == entry["kind"] \
                        and later["target"] == entry["target"]:
                    end = later["t"]
                    break
            records = self.detections if entry["action"] == "fail" \
                else self.undetects
            latencies = self._match_latencies(records, entry, end)
            out["reactions"] = len(latencies)
            out["detect_first_slots"] = latencies[0] if latencies else None
            out["detect_last_slots"] = latencies[-1] if latencies else None
            out["detect_first_epochs"] = (
                round(latencies[0] / epoch, 3) if latencies else None
            )
            drops_end = log[i + 1]["drops_before"] if i + 1 < len(log) \
                else total_drops
            out["drops_after"] = drops_end - entry["drops_before"]
            events.append(out)
        return {
            "events": events,
            "detections": len(self.detections),
            "deaf_notices": len(self.deaf_notices),
            "undetects": len(self.undetects),
        }

    def _match_latencies(self, records, entry, end: Optional[int]) -> List[int]:
        """Reaction latencies (slots) attributable to one logged event."""
        t0 = entry["t"]
        target = entry["target"]
        if entry["kind"] == "node":
            node_id = target[0]

            def matches(detector: int, neighbor: int) -> bool:
                return neighbor == node_id
        else:
            a, b = target[0], target[1]
            bidirectional = target[2] == "bi"

            def matches(detector: int, neighbor: int) -> bool:
                if detector == b and neighbor == a:
                    return True
                return bidirectional and detector == a and neighbor == b
        out = [
            t - t0
            for t, detector, neighbor in records
            if t >= t0 and (end is None or t < end) and matches(detector, neighbor)
        ]
        out.sort()
        return out

    def mean_detection_epochs(self) -> Optional[float]:
        """Mean first-detection latency over fail events, in epochs."""
        latencies = [
            e["detect_first_epochs"]
            for e in self.resilience_summary()["events"]
            if e["action"] == "fail" and e["detect_first_epochs"] is not None
        ]
        if not latencies:
            return None
        return round(sum(latencies) / len(latencies), 3)
