"""Failure detection, propagation and rerouting (paper Section 3.4, App. A).

The protocol has three ingredients:

* **Detection** — every node sends and receives a cell from each neighbour
  once per epoch, so a missing cell reveals a failed link or node.  Detection
  is symmetric: once node ``i`` stops hearing from ``j`` it also stops
  sending to ``j``.

* **Propagation** — *invalidation tokens* ``{j, n}`` ride the token space of
  cell headers and tell a neighbour that the sender has no valid route for
  cells with ``n`` spraying hops remaining towards destination ``j``.
  Tokens with ``n = 0`` invalidate whole subtrees of the deterministic
  direct-path tree; tokens with ``n > 0`` steer spraying away from dead ends.
  *Re-validation tokens* reverse an invalidation when a link recovers.

* **Reaction** — cells whose direct semi-path would traverse a failed
  node/link are reset to fresh spraying hops; spraying hops simply avoid
  failed or invalidated neighbours.

The :class:`FailureManager` below implements detection exactly (driven by
per-epoch liveness), and implements propagation with invalidation tokens
carried in headers.  Where the paper's per-(bucket, neighbour) invalidation
state machine would explode the state space of a Python simulation, we track
the *learned failed-node set* per node — each invalidation token teaches its
recipient which node is unreachable — which reproduces the same routing
behaviour (avoid sprays into failed nodes; re-spray direct hops around them)
with the same information-propagation dynamics.  This substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from ..core.header import TOKEN_INVALIDATE, TOKEN_REVALIDATE, Token

__all__ = ["FailureManager", "FailureEvent"]


class FailureEvent:
    """A scheduled node failure or recovery.

    Attributes:
        t: timeslot at which the event takes effect.
        node: affected node id.
        failed: True to fail the node, False to recover it.
    """

    __slots__ = ("t", "node", "failed")

    def __init__(self, t: int, node: int, failed: bool = True):
        self.t = t
        self.node = node
        self.failed = failed

    def __repr__(self) -> str:  # pragma: no cover
        verb = "fail" if self.failed else "recover"
        return f"FailureEvent({verb} node {self.node} @ {self.t})"


class FailureManager:
    """Injects failures into an engine and runs the invalidation protocol.

    Args:
        failed_nodes: nodes failed from the start of the run.
        events: optional timed failure/recovery events.
        detection_epochs: epochs of silence before a neighbour is declared
            failed (the paper detects within one epoch; raising this models
            conservative detection against clock skew).
        propagate: when False, only local (neighbour) detection happens and
            no invalidation tokens are exchanged — an ablation showing why
            propagation matters.
    """

    def __init__(
        self,
        failed_nodes: Iterable[int] = (),
        events: Optional[Sequence[FailureEvent]] = None,
        detection_epochs: int = 1,
        propagate: bool = True,
    ):
        self.initial_failed: Set[int] = set(failed_nodes)
        self.events: List[FailureEvent] = sorted(
            events or [], key=lambda e: e.t
        )
        if detection_epochs < 1:
            raise ValueError("detection takes at least one epoch")
        self.detection_epochs = detection_epochs
        self.propagate = propagate
        self._next_event = 0
        self._engine = None

    # ------------------------------------------------------------------ #
    # engine lifecycle hooks

    def apply(self, engine) -> None:
        """Install initial failures into a freshly built engine."""
        self._engine = engine
        for node_id in self.initial_failed:
            self._fail_node(engine, node_id, t=0)

    def advance(self, engine, t: int) -> None:
        """Apply any timed events due at timeslot ``t``."""
        events = self.events
        while self._next_event < len(events) and events[self._next_event].t <= t:
            event = events[self._next_event]
            self._next_event += 1
            if event.failed:
                self._fail_node(engine, event.node, t)
            else:
                self._recover_node(engine, event.node, t)

    # ------------------------------------------------------------------ #
    # failure mechanics

    def _fail_node(self, engine, node_id: int, t: int) -> None:
        node = engine.nodes[node_id]
        node.failed = True
        detect_delay = self.detection_epochs * engine.schedule.epoch_length
        # Symmetric detection: each neighbour notices within a detection
        # window (one epoch by default — the slot at which it expected a cell)
        # and stops sending.  We model the window as an average of half an
        # epoch by scheduling the discovery at t + detect_delay.
        for neighbor_id in engine.coords.all_neighbors(node_id):
            neighbor = engine.nodes[neighbor_id]
            if neighbor.failed:
                continue
            neighbor.failed_neighbors.add(node_id)
            self._drop_and_requeue(engine, neighbor, node_id, t)
            if self.propagate:
                self._broadcast_invalidation(engine, neighbor, node_id)

    def _recover_node(self, engine, node_id: int, t: int) -> None:
        node = engine.nodes[node_id]
        node.failed = False
        for neighbor_id in engine.coords.all_neighbors(node_id):
            neighbor = engine.nodes[neighbor_id]
            neighbor.failed_neighbors.discard(node_id)
            if self.propagate:
                self._broadcast_revalidation(engine, neighbor, node_id)

    def _drop_and_requeue(self, engine, node, failed_id: int, t: int) -> None:
        """Appendix A reaction at the node adjacent to the failure.

        Cells awaiting their final hop to the failed node are dropped; cells
        on direct semi-paths via it restart their spraying semi-path; cells
        on spraying hops via it re-spray within the same phase.
        """
        coords = engine.coords
        h = coords.h
        for phase in range(h):
            mine = coords.coordinate(node.node_id, phase)
            theirs = coords.coordinate(failed_id, phase)
            if mine == theirs:
                continue
            if coords.with_coordinate(node.node_id, phase, theirs) != failed_id:
                continue
            offset = (theirs - mine) % coords.r
            link = node.link_index(phase, offset)
            queue = node.link_queues[link]
            stranded = queue.remove_if(lambda c: True)
            node.total_enqueued -= len(stranded)
            for cell in stranded:
                if node.bucket_tracker is not None:
                    node.bucket_tracker.release((cell.dst, cell.sprays_remaining))
                node.release_upstream(cell)
                if engine.tracer is not None:
                    engine.tracer.on_reroute(cell)
                if cell.dst == failed_id:
                    engine.metrics.on_drop()
                    continue
                if cell.sprays_remaining == 0:
                    # direct semi-path via the failure: restart spraying
                    cell.sprays_remaining = h
                # re-enqueue as a spraying cell in this same phase
                cell.spray_phase = phase
                node.enqueue_forward(cell, t, (phase - 1) % h)

    def _broadcast_invalidation(self, engine, node, failed_id: int) -> None:
        """Queue invalidation tokens about ``failed_id`` to every neighbour."""
        token = Token(failed_id, 0, TOKEN_INVALIDATE)
        for neighbor_id in engine.coords.all_neighbors(node.node_id):
            if neighbor_id == failed_id or engine.nodes[neighbor_id].failed:
                continue
            node._queue_token(neighbor_id, Token(token.dest, 0, TOKEN_INVALIDATE))

    def _broadcast_revalidation(self, engine, node, recovered_id: int) -> None:
        for neighbor_id in engine.coords.all_neighbors(node.node_id):
            if engine.nodes[neighbor_id].failed:
                continue
            node._queue_token(neighbor_id, Token(recovered_id, 0, TOKEN_REVALIDATE))

    # ------------------------------------------------------------------ #
    # token reception (called from Node.receive via the engine)

    def on_token(self, engine, node, sender: int, token: Token, phase: int) -> None:
        """Handle an invalidation/re-validation token arriving at ``node``."""
        if token.kind == TOKEN_INVALIDATE:
            if token.dest in node.known_failed or token.dest == node.node_id:
                return
            node.known_failed.add(token.dest)
            # forward the news (gossip along the token channel) — each node
            # re-broadcasts once, giving epidemic propagation in O(diameter)
            # epochs, the same order as the paper's tree-directed flooding.
            if self.propagate:
                for neighbor_id in engine.coords.all_neighbors(node.node_id):
                    if neighbor_id == token.dest or engine.nodes[neighbor_id].failed:
                        continue
                    node._queue_token(
                        neighbor_id, Token(token.dest, 0, TOKEN_INVALIDATE)
                    )
            self._reroute_known_failed(engine, node, token.dest)
        elif token.kind == TOKEN_REVALIDATE:
            if token.dest not in node.known_failed:
                return
            node.known_failed.discard(token.dest)
            if self.propagate:
                for neighbor_id in engine.coords.all_neighbors(node.node_id):
                    if engine.nodes[neighbor_id].failed:
                        continue
                    node._queue_token(
                        neighbor_id, Token(token.dest, 0, TOKEN_REVALIDATE)
                    )

    def _reroute_known_failed(self, engine, node, failed_id: int) -> None:
        """Re-spray enqueued cells whose chosen next hop is now known-bad."""
        coords = engine.coords
        for phase in range(coords.h):
            mine = coords.coordinate(node.node_id, phase)
            theirs = coords.coordinate(failed_id, phase)
            if mine == theirs:
                continue
            if coords.with_coordinate(node.node_id, phase, theirs) != failed_id:
                continue
            offset = (theirs - mine) % coords.r
            link = node.link_index(phase, offset)
            stranded = node.link_queues[link].remove_if(lambda c: True)
            node.total_enqueued -= len(stranded)
            for cell in stranded:
                if node.bucket_tracker is not None:
                    node.bucket_tracker.release((cell.dst, cell.sprays_remaining))
                node.release_upstream(cell)
                if engine.tracer is not None:
                    engine.tracer.on_reroute(cell)
                if cell.dst == failed_id:
                    engine.metrics.on_drop()
                    continue
                if cell.sprays_remaining == 0:
                    cell.sprays_remaining = coords.h
                cell.spray_phase = phase
                node.enqueue_forward(cell, engine.t, (phase - 1) % coords.h)
