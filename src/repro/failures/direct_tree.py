"""The direct-semi-path tree and subtree invalidation (paper Appendix A).

For a fixed destination ``j`` and phase ordering, the direct semi-paths from
every node to ``j`` are deterministic and form a tree rooted at ``j``: each
node's parent is the next hop of its direct semi-path.  Appendix A exploits
this structure for failure propagation — an invalidation token ``{j, 0}``
received from a neighbour lets a node compute exactly which final link died
and which destinations became unreachable *through that neighbour*, because
the token must have travelled backwards along tree edges.

This module provides the tree computation and the subtree queries that the
full protocol needs:

* :func:`direct_next_hop` — a node's parent in destination ``j``'s tree;
* :class:`DirectPathTree` — the whole tree with children/subtree queries;
* :func:`invalidated_destinations` — given a failed link ``(i, j)``, the set
  of destinations whose direct semi-paths from a node ``k`` traverse it.

The simulator's failure manager uses the coarser learned-failed-set
propagation (documented in DESIGN.md); these utilities implement the
paper-exact computation and are validated against the manager's behaviour in
the test suite, serving both as a reference implementation and as the
starting point for a fully per-bucket protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.coordinates import CoordinateSystem

__all__ = [
    "direct_next_hop",
    "DirectPathTree",
    "invalidated_destinations",
]


def direct_next_hop(
    coords: CoordinateSystem, node: int, dst: int, start_phase: int = 0
) -> Optional[int]:
    """The first hop of ``node``'s direct semi-path towards ``dst``.

    Phases are scanned cyclically from ``start_phase``; returns ``None``
    when ``node == dst``.
    """
    for i in range(coords.h):
        p = (start_phase + i) % coords.h
        mine = coords.coordinate(node, p)
        want = coords.coordinate(dst, p)
        if mine != want:
            return coords.with_coordinate(node, p, want)
    return None


class DirectPathTree:
    """The tree of direct semi-paths into one destination.

    Built once per (destination, phase ordering); queries are O(1) per node
    after construction.
    """

    def __init__(self, coords: CoordinateSystem, dst: int, start_phase: int = 0):
        self.coords = coords
        self.dst = dst
        self.start_phase = start_phase
        self.parent: Dict[int, int] = {}
        self.children: Dict[int, List[int]] = {}
        for node in range(coords.n):
            if node == dst:
                continue
            hop = direct_next_hop(coords, node, dst, start_phase)
            assert hop is not None
            self.parent[node] = hop
            self.children.setdefault(hop, []).append(node)

    def path_from(self, node: int) -> List[int]:
        """The direct semi-path from ``node`` to the destination."""
        path = [node]
        while path[-1] != self.dst:
            path.append(self.parent[path[-1]])
        return path

    def subtree(self, node: int) -> Set[int]:
        """All nodes whose direct semi-paths pass through ``node``
        (including ``node`` itself; excluding the destination)."""
        out: Set[int] = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur == self.dst:
                continue
            out.add(cur)
            stack.extend(self.children.get(cur, ()))
        return out

    def uses_link(self, node: int, link: Tuple[int, int]) -> bool:
        """Whether ``node``'s direct semi-path traverses directed ``link``."""
        a, b = link
        path = self.path_from(node)
        return any(x == a and y == b for x, y in zip(path, path[1:]))

    def depth(self, node: int) -> int:
        """Hops from ``node`` to the destination along the tree."""
        return len(self.path_from(node)) - 1


def invalidated_destinations(
    coords: CoordinateSystem,
    observer: int,
    failed_link: Tuple[int, int],
    start_phase: int = 0,
) -> Set[int]:
    """Destinations unreachable from ``observer`` via direct semi-paths
    because of ``failed_link``.

    This is the set a single ``{j, 0}`` invalidation token communicates
    (paper Appendix A: "a single invalidation token with index 0 may
    indicate that cells at node i can no longer reach multiple destinations
    via direct semi-paths").

    Brute-force over destinations — exact, intended for verification and
    for small radixes; a production implementation exploits the coordinate
    structure to enumerate the affected subtree directly.
    """
    failed_from, failed_to = failed_link
    out: Set[int] = set()
    for dst in range(coords.n):
        if dst == observer:
            continue
        tree = DirectPathTree(coords, dst, start_phase)
        if observer == dst:
            continue
        path = tree.path_from(observer)
        if any(
            x == failed_from and y == failed_to
            for x, y in zip(path, path[1:])
        ):
            out.add(dst)
    return out
