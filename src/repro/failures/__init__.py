"""Failure detection, invalidation tokens and rerouting (Section 3.4)."""

from .direct_tree import (
    DirectPathTree,
    direct_next_hop,
    invalidated_destinations,
)
from .injector import FaultInjector
from .manager import FailureEvent, FailureManager, LinkFailureEvent

__all__ = [
    "DirectPathTree",
    "FailureEvent",
    "FailureManager",
    "FaultInjector",
    "LinkFailureEvent",
    "direct_next_hop",
    "invalidated_destinations",
]
