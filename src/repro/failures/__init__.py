"""Failure detection, invalidation tokens and rerouting (Section 3.4)."""

from .direct_tree import (
    DirectPathTree,
    direct_next_hop,
    invalidated_destinations,
)
from .manager import FailureEvent, FailureManager

__all__ = [
    "DirectPathTree",
    "FailureEvent",
    "FailureManager",
    "direct_next_hop",
    "invalidated_destinations",
]
