"""Failure detection, invalidation tokens and rerouting (Section 3.4)."""

from .direct_tree import (
    DirectPathTree,
    direct_next_hop,
    invalidated_destinations,
)
from .correlated import CorrelatedFaultInjector, rack_outage_events
from .injector import FaultInjector
from .manager import FailureEvent, FailureManager, LinkFailureEvent

__all__ = [
    "CorrelatedFaultInjector",
    "DirectPathTree",
    "FailureEvent",
    "FailureManager",
    "FaultInjector",
    "LinkFailureEvent",
    "direct_next_hop",
    "invalidated_destinations",
    "rack_outage_events",
]
