"""Correlated failure generators: rack outages, cascades, gray links.

:class:`~repro.failures.injector.FaultInjector` models *independent*
failures — every node and link flaps on its own Poisson clock.  Production
outages are rarely independent: a rack loses power and every link touching
it goes dark at once; a repair crew reboots a switch and its neighbours
brown out moments later; a flaky transceiver drops a third of its cells for
hours without ever going fully down.  This module generates those shapes,
with the same determinism contract as ``FaultInjector``: every episode and
entity derives its own RNG stream from the master seed and its identity
(``random.Random(f"{seed}:outage:{k}")``), so the schedule is
byte-identical for a given seed and adding one failure class never
reshuffles another.

Three correlated shapes:

* **Phase-group (rack) outages** — Shale's natural failure domain is the
  EBS phase group: the ``r`` nodes sharing every coordinate but one are
  the ones wired through the same round-robin circuit (in a physical
  deployment, the same rack or patch panel).  An outage episode fails
  *every* link touching the group's members at one instant and repairs
  them together — the worst case for spraying, because an entire
  phase-``p`` round-robin ring vanishes at once.
* **Cascades** — a primary node crash (its own MTBF/MTTR process) drags
  each of its neighbours down with probability ``cascade_probability``
  shortly after; secondaries are *MTTR-coupled*: they recover when the
  primary recovers (same power event, same repair crew), not on their own
  clock.
* **Gray links** — seeded per-link payload loss rates for the
  :class:`~repro.failures.manager.FailureManager` gray wire model: lossy
  but alive, invisible to the missed-cell detector.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.coordinates import CoordinateSystem
from .manager import FailureEvent, FailureManager, LinkFailureEvent

__all__ = ["CorrelatedFaultInjector", "rack_outage_events"]


def _group_links(coords: CoordinateSystem, members: Sequence[int]
                 ) -> List[Tuple[int, int]]:
    """Every undirected one-hop link touching any of ``members``."""
    links = set()
    for node in members:
        for neighbor in coords.all_neighbors(node):
            links.add((min(node, neighbor), max(node, neighbor)))
    # links internal to the group appear once; sorted for determinism
    return sorted(links)


def rack_outage_events(
    n: int,
    h: int,
    anchor: int,
    phase: int,
    at: int,
    repair: int = 0,
) -> List[LinkFailureEvent]:
    """The event list for one deterministic phase-group outage.

    Fails every link touching the phase-``phase`` group of ``anchor`` at
    slot ``at``; when ``repair > 0`` all of them recover together at
    ``at + repair``.  Useful for targeted experiments and tests; the
    :class:`CorrelatedFaultInjector` draws the same shape stochastically.
    """
    coords = CoordinateSystem.shared(n, h)
    group = coords.phase_group(anchor, phase)
    events: List[LinkFailureEvent] = []
    for a, b in _group_links(coords, group):
        events.append(LinkFailureEvent(at, a, b, failed=True))
        if repair > 0:
            events.append(LinkFailureEvent(at + repair, a, b, failed=False))
    events.sort(key=lambda e: (e.t, e.a, e.b, e.failed))
    return events


class CorrelatedFaultInjector:
    """Generates a reproducible *correlated* fault schedule.

    Args:
        n, h: network shape (defines phase groups and the link set).
        duration: horizon (slots); no event is generated at or beyond it.
        seed: master seed; every episode/entity derives its own stream.
        outages: number of phase-group outage episodes to draw.  Each
            episode picks a slot, a phase and an anchor node from its own
            stream and fails every link touching that phase group at once.
        outage_mttr: mean slots until a downed group is repaired (all its
            links recover together; 0 means the outage is permanent).
        primary_mtbf: mean slots between primary node crashes (per node;
            0 disables the cascade machinery entirely).
        primary_mttr: mean slots to repair a crashed primary (0: permanent).
        cascade_probability: chance that each neighbour of a crashing
            primary is dragged down with it.
        cascade_max_delay: secondaries fail within this many slots after
            the primary (drawn uniformly per neighbour).
        gray_links: number of distinct links to turn gray (lossy-not-dead).
        gray_loss: ``(lo, hi)`` — each gray link's payload loss rate is
            drawn uniformly from this range from its own stream.
        node_ids: restrict primaries to these nodes (default: all).
    """

    def __init__(
        self,
        n: int,
        h: int,
        duration: int,
        seed: object = 0,
        outages: int = 0,
        outage_mttr: float = 0.0,
        primary_mtbf: float = 0.0,
        primary_mttr: float = 0.0,
        cascade_probability: float = 0.0,
        cascade_max_delay: int = 64,
        gray_links: int = 0,
        gray_loss: Tuple[float, float] = (0.05, 0.35),
        node_ids: Optional[Sequence[int]] = None,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        for name, value in (("outage_mttr", outage_mttr),
                            ("primary_mtbf", primary_mtbf),
                            ("primary_mttr", primary_mttr)):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if not 0.0 <= cascade_probability <= 1.0:
            raise ValueError(
                f"cascade probability must be in [0, 1], "
                f"got {cascade_probability}"
            )
        if outages < 0 or gray_links < 0:
            raise ValueError("episode counts must be non-negative")
        if cascade_max_delay < 1:
            raise ValueError("cascade delay window must be at least 1 slot")
        lo, hi = gray_loss
        if not 0.0 < lo <= hi < 1.0:
            raise ValueError(
                f"gray loss range must satisfy 0 < lo <= hi < 1, "
                f"got {gray_loss}"
            )
        self.coords = CoordinateSystem.shared(n, h)
        self.n = n
        self.h = h
        self.duration = duration
        self.seed = seed
        self.outages = outages
        self.outage_mttr = outage_mttr
        self.primary_mtbf = primary_mtbf
        self.primary_mttr = primary_mttr
        self.cascade_probability = cascade_probability
        self.cascade_max_delay = cascade_max_delay
        self.gray_links = gray_links
        self.gray_loss = (lo, hi)
        self.node_ids: List[int] = sorted(node_ids) if node_ids is not None \
            else list(range(n))
        self._events: Optional[List[object]] = None
        self._gray: Optional[Dict[Tuple[int, int], float]] = None

    @classmethod
    def from_config(cls, config, **kwargs) -> "CorrelatedFaultInjector":
        """Build an injector keyed to a :class:`SimConfig` (shape + seed)."""
        kwargs.setdefault("seed", config.seed)
        return cls(config.n, config.h, config.duration, **kwargs)

    # ------------------------------------------------------------------ #
    # event generation

    def _outage_events(self) -> List[object]:
        events: List[object] = []
        for k in range(self.outages):
            rng = random.Random(f"{self.seed}:outage:{k}")
            at = rng.randrange(max(1, self.duration - 1))
            phase = rng.randrange(self.h)
            anchor = rng.randrange(self.n)
            group = self.coords.phase_group(anchor, phase)
            repair = 0
            if self.outage_mttr > 0:
                repair = max(1, int(rng.expovariate(1.0 / self.outage_mttr)))
            for a, b in _group_links(self.coords, group):
                events.append(LinkFailureEvent(at, a, b, failed=True))
                recover_at = at + repair
                if repair > 0 and recover_at < self.duration:
                    events.append(
                        LinkFailureEvent(recover_at, a, b, failed=False)
                    )
        return events

    def _cascade_events(self) -> List[object]:
        if self.primary_mtbf <= 0:
            return []
        events: List[object] = []
        for node_id in self.node_ids:
            rng = random.Random(f"{self.seed}:primary:{node_id}")
            clock = 0.0
            prev = -1
            while True:
                clock += rng.expovariate(1.0 / self.primary_mtbf)
                fail_at = max(prev + 1, int(clock))
                if fail_at >= self.duration:
                    break
                recover_at: Optional[int] = None
                if self.primary_mttr > 0:
                    clock += rng.expovariate(1.0 / self.primary_mttr)
                    recover_at = max(fail_at + 1, int(clock))
                events.append(FailureEvent(fail_at, node_id, failed=True))
                if recover_at is not None and recover_at < self.duration:
                    events.append(
                        FailureEvent(recover_at, node_id, failed=False)
                    )
                events.extend(
                    self._secondaries_for(node_id, fail_at, recover_at)
                )
                if recover_at is None:
                    break  # permanent failure
                prev = recover_at
        return events

    def _secondaries_for(self, primary: int, fail_at: int,
                         recover_at: Optional[int]) -> List[object]:
        """MTTR-coupled secondaries: neighbours dragged down with the
        primary recover when (and only because) the primary does."""
        if self.cascade_probability <= 0:
            return []
        out: List[object] = []
        for neighbor in sorted(set(self.coords.all_neighbors(primary))):
            rng = random.Random(
                f"{self.seed}:cascade:{primary}:{fail_at}:{neighbor}"
            )
            if rng.random() >= self.cascade_probability:
                continue
            window = self.cascade_max_delay
            if recover_at is not None:
                window = min(window, max(1, recover_at - fail_at))
            sec_fail = fail_at + 1 + rng.randrange(window)
            if sec_fail >= self.duration:
                continue
            out.append(FailureEvent(sec_fail, neighbor, failed=True))
            if recover_at is not None and recover_at < self.duration:
                out.append(FailureEvent(max(sec_fail + 1, recover_at),
                                        neighbor, failed=False))
        return out

    def events(self) -> List[object]:
        """The full fault schedule, sorted by time (cached, deterministic)."""
        if self._events is not None:
            return list(self._events)
        events = self._outage_events() + self._cascade_events()
        events.sort(key=self._sort_key)
        self._events = events
        return list(events)

    @staticmethod
    def _sort_key(event) -> Tuple[int, int, int, int, int]:
        if isinstance(event, LinkFailureEvent):
            return (event.t, 1, event.a, event.b, event.failed)
        return (event.t, 0, event.node, -1, event.failed)

    def link_loss_rates(self) -> Dict[Tuple[int, int], float]:
        """Per-directed-link gray loss rates (cached, deterministic).

        Both directions of a gray link share one rate (the transceiver is
        sick, not one laser); the manager still draws each direction from
        its own RNG stream.
        """
        if self._gray is not None:
            return dict(self._gray)
        rates: Dict[Tuple[int, int], float] = {}
        if self.gray_links:
            all_links = sorted(
                (a, b)
                for a in range(self.n)
                for b in self.coords.all_neighbors(a)
                if a < b
            )
            picker = random.Random(f"{self.seed}:gray-pick")
            count = min(self.gray_links, len(all_links))
            lo, hi = self.gray_loss
            for a, b in sorted(picker.sample(all_links, count)):
                rng = random.Random(f"{self.seed}:gray:{a}:{b}")
                rate = lo + rng.random() * (hi - lo)
                rates[(a, b)] = rate
                rates[(b, a)] = rate
        self._gray = rates
        return dict(rates)

    def describe(self) -> str:
        """One line per event/gray link — byte-identical for a given seed."""
        lines = [repr(e) for e in self.events()]
        gray = self.link_loss_rates()
        for (a, b), rate in sorted(gray.items()):
            if a < b:  # one line per undirected gray link
                lines.append(f"GrayLink({a}<->{b} loss={rate:.6f})")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # manager plumbing

    def build_manager(self, detection_epochs: int = 1,
                      propagate: bool = True,
                      cell_loss_rate: float = 0.0) -> FailureManager:
        """A :class:`FailureManager` driving this injector's schedule."""
        return FailureManager(
            events=self.events(),
            detection_epochs=detection_epochs,
            propagate=propagate,
            cell_loss_rate=cell_loss_rate,
            loss_seed=f"{self.seed}:wire-loss",
            link_loss_rates=self.link_loss_rates(),
            gray_seed=f"{self.seed}:gray-wire",
        )
