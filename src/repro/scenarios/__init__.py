"""Adversarial/correlated scenario matrix and resilience scorecards.

The fig12 experiment measures one stress shape (independent node failures
under benign permutations).  This package crosses *named* failure patterns
(:data:`FAILURE_PATTERNS`: baseline, rack outages, gray links, cascades,
independent flaps) with *named* workload shapes (:data:`WORKLOAD_SHAPES`:
uniform permutations, incast storms, hot-destination skew, adversarial
permutations) and every congestion-control mechanism, runs each cell
through the standard sweep machinery (:func:`run_matrix`), scores it from
the :class:`~repro.sim.monitor.RunMonitor` conservation/stall/detection
metrics (:func:`score_cell`) and reduces the grid to a deterministic
per-mechanism resilience scorecard (:func:`build_scorecard`).

Every cell derives its own seed from the master seed and its grid
coordinates (:func:`scenario_cell_seed`), so the whole scorecard is
byte-identical across reruns and across worker counts.
"""

from .registry import (
    FAILURE_PATTERNS,
    WORKLOAD_SHAPES,
    FailurePattern,
    WorkloadShape,
    register_failure_pattern,
    register_workload_shape,
)
from .matrix import run_matrix, scenario_cell_seed
from .scorecard import (
    SCORE_WEIGHTS,
    build_scorecard,
    format_scorecard,
    score_cell,
)

__all__ = [
    "FAILURE_PATTERNS",
    "FailurePattern",
    "SCORE_WEIGHTS",
    "WORKLOAD_SHAPES",
    "WorkloadShape",
    "build_scorecard",
    "format_scorecard",
    "register_failure_pattern",
    "register_workload_shape",
    "run_matrix",
    "scenario_cell_seed",
    "score_cell",
]
