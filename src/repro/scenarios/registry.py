"""Named failure patterns and workload shapes for the scenario matrix.

Each entry is a small builder keyed to a :class:`~repro.sim.config.SimConfig`
(shape, horizon, seed), so a cell's whole scenario derives from its config —
the matrix driver only has to cross names.  Knobs scale with ``n`` and
``duration`` so the same pattern names work for smoke grids (n=16, a few
thousand slots) and larger sweeps.

The registries are plain ordered dicts; downstream code (notebooks, future
experiments) can add shapes with :func:`register_failure_pattern` /
:func:`register_workload_shape` without touching the drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..failures.correlated import CorrelatedFaultInjector
from ..failures.injector import FaultInjector
from ..failures.manager import FailureManager
from ..sim.config import SimConfig
from ..sim.engine import ScheduledFlow
from ..workloads.adversarial import (
    adversarial_permutation_workload,
    hot_destination_workload,
    incast_storm_workload,
)
from ..workloads.generators import overlaid_permutations_workload

__all__ = [
    "FAILURE_PATTERNS",
    "WORKLOAD_SHAPES",
    "FailurePattern",
    "WorkloadShape",
    "register_failure_pattern",
    "register_workload_shape",
]


@dataclass(frozen=True)
class FailurePattern:
    """A named fault shape: config -> :class:`FailureManager` (or None)."""

    name: str
    description: str
    build: Callable[[SimConfig], Optional[FailureManager]]


@dataclass(frozen=True)
class WorkloadShape:
    """A named traffic shape: (config, flow_cells) -> scheduled flows."""

    name: str
    description: str
    build: Callable[[SimConfig, int], List[ScheduledFlow]]


FAILURE_PATTERNS: Dict[str, FailurePattern] = {}
WORKLOAD_SHAPES: Dict[str, WorkloadShape] = {}


def register_failure_pattern(name: str, description: str,
                             build: Callable[[SimConfig],
                                             Optional[FailureManager]]
                             ) -> FailurePattern:
    """Add (or replace) a named failure pattern in the registry."""
    pattern = FailurePattern(name, description, build)
    FAILURE_PATTERNS[name] = pattern
    return pattern


def register_workload_shape(name: str, description: str,
                            build: Callable[[SimConfig, int],
                                            List[ScheduledFlow]]
                            ) -> WorkloadShape:
    """Add (or replace) a named workload shape in the registry."""
    shape = WorkloadShape(name, description, build)
    WORKLOAD_SHAPES[name] = shape
    return shape


# ---------------------------------------------------------------------- #
# failure patterns

def _baseline(config: SimConfig) -> Optional[FailureManager]:
    return None


def _rack_outage(config: SimConfig) -> FailureManager:
    return CorrelatedFaultInjector.from_config(
        config,
        outages=2,
        outage_mttr=config.duration / 6,
    ).build_manager()


def _gray_links(config: SimConfig) -> FailureManager:
    return CorrelatedFaultInjector.from_config(
        config,
        gray_links=max(2, config.n // 8),
        gray_loss=(0.05, 0.35),
    ).build_manager()


def _cascade(config: SimConfig) -> FailureManager:
    return CorrelatedFaultInjector.from_config(
        config,
        primary_mtbf=config.duration * 4,   # ~n/4 primary crashes expected
        primary_mttr=config.duration / 8,
        cascade_probability=0.5,
    ).build_manager()


def _flaky(config: SimConfig) -> FailureManager:
    return FaultInjector.from_config(
        config,
        node_mtbf=config.duration * 2,
        node_mttr=config.duration / 10,
        link_mtbf=config.duration * 2,
        link_mttr=config.duration / 10,
        cell_loss_rate=0.005,
    ).build_manager()


register_failure_pattern(
    "baseline", "no failures (control row)", _baseline)
register_failure_pattern(
    "rack-outage",
    "two correlated phase-group outages: every link touching the group "
    "fails at once and recovers together",
    _rack_outage)
register_failure_pattern(
    "gray-links",
    "seeded lossy-not-dead wires (5-35% payload loss) on n/8 links; "
    "invisible to the missed-cell detector",
    _gray_links)
register_failure_pattern(
    "cascade",
    "primary node crashes drag neighbours down with p=0.5; secondaries "
    "recover with the primary (MTTR-coupled)",
    _cascade)
register_failure_pattern(
    "flaky",
    "independent node/link flaps plus 0.5% uniform wire loss (the PR 1 "
    "injector, for comparison against the correlated shapes)",
    _flaky)


# ---------------------------------------------------------------------- #
# workload shapes

def _uniform_perms(config: SimConfig, flow_cells: int) -> List[ScheduledFlow]:
    return overlaid_permutations_workload(config, flow_cells, count=4)


def _incast_storm(config: SimConfig, flow_cells: int) -> List[ScheduledFlow]:
    return incast_storm_workload(
        config, flow_cells, bursts=3, fan_in=min(config.n - 1, 8))


def _hot_dest(config: SimConfig, flow_cells: int) -> List[ScheduledFlow]:
    return hot_destination_workload(
        config, flow_cells, flows_per_node=3, zipf_s=1.2)


def _adversarial_perm(config: SimConfig,
                      flow_cells: int) -> List[ScheduledFlow]:
    return adversarial_permutation_workload(config, flow_cells, rounds=2)


register_workload_shape(
    "uniform-perms",
    "four overlaid random permutations (the benign fig12 demand)",
    _uniform_perms)
register_workload_shape(
    "incast-storm",
    "three synchronized fan-in bursts at seeded victims",
    _incast_storm)
register_workload_shape(
    "hot-dest",
    "Zipf(1.2) destination skew: a few hot nodes soak up most demand",
    _hot_dest)
register_workload_shape(
    "adversarial-perm",
    "two coordinate-shift permutations serializing all direct traffic "
    "through a single phase",
    _adversarial_perm)
