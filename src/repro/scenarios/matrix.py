"""The scenario matrix driver: {failure} x {workload} x {mechanism} cells.

Each cell is one simulation: the named failure pattern and workload shape
are materialised from the registry inside the worker (only names cross the
process boundary), a :class:`~repro.sim.monitor.RunMonitor` watches the
run, and the cell returns its reduced metrics plus resilience score.

Cells run through :func:`repro.sim.parallel.sweep`, so they pick up the
ambient cell cache, checkpoint policy, telemetry capture and crash-retry
budget exactly like the figure experiments.

Determinism: every cell's engine seed is
:func:`scenario_cell_seed(master, pattern, workload, mechanism)
<scenario_cell_seed>` — a CRC32 of the master seed and the cell's grid
coordinates.  Cells are therefore independent of grid order, worker count
and which other cells exist, and the scorecard built from them is
byte-identical across reruns.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Sequence

from ..sim.config import SimConfig
from ..sim.engine import Engine
from ..sim.monitor import RunMonitor
from .registry import FAILURE_PATTERNS, WORKLOAD_SHAPES
from .scorecard import score_cell

__all__ = ["run_matrix", "scenario_cell_seed"]


def scenario_cell_seed(seed: object, pattern: str, workload: str,
                       mechanism: str) -> int:
    """The deterministic engine seed for one grid cell."""
    return zlib.crc32(f"{seed}:{pattern}:{workload}:{mechanism}".encode())


def _scenario_cell(
    pattern: str,
    workload: str,
    mechanism: str,
    n: int,
    h: int,
    duration: int,
    flow_cells: int,
    propagation_delay: int,
    seed: object,
) -> Dict[str, Any]:
    """One matrix cell — module-level so process pools can run it."""
    cfg = SimConfig(
        n=n, h=h, duration=duration,
        propagation_delay=propagation_delay,
        congestion_control=mechanism,
        seed=scenario_cell_seed(seed, pattern, workload, mechanism),
    )
    manager = FAILURE_PATTERNS[pattern].build(cfg)
    flows = WORKLOAD_SHAPES[workload].build(cfg, flow_cells)
    engine = Engine(cfg, workload=flows, failure_manager=manager)
    monitor = RunMonitor().attach(engine)
    engine.run()
    metrics = monitor.scorecard_metrics()
    return {
        "pattern": pattern,
        "workload": workload,
        "mechanism": mechanism,
        "metrics": metrics,
        "score": score_cell(metrics),
    }


def run_matrix(
    patterns: Sequence[str],
    workloads: Sequence[str],
    mechanisms: Sequence[str],
    *,
    n: int,
    h: int,
    duration: int,
    flow_cells: int,
    propagation_delay: int = 2,
    seed: object = 0,
    workers: Optional[int] = None,
    retries: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run the full scenario grid; return scored cells in grid order.

    The grid iterates patterns (outer), workloads, mechanisms (inner).
    Unknown names fail fast, before any worker is spawned.
    """
    for pattern in patterns:
        if pattern not in FAILURE_PATTERNS:
            raise KeyError(
                f"unknown failure pattern {pattern!r}; "
                f"known: {sorted(FAILURE_PATTERNS)}"
            )
    for workload in workloads:
        if workload not in WORKLOAD_SHAPES:
            raise KeyError(
                f"unknown workload shape {workload!r}; "
                f"known: {sorted(WORKLOAD_SHAPES)}"
            )
    from ..sim.parallel import sweep

    grid = [
        dict(pattern=pattern, workload=workload, mechanism=mechanism,
             n=n, h=h, duration=duration, flow_cells=flow_cells,
             propagation_delay=propagation_delay, seed=seed)
        for pattern in patterns
        for workload in workloads
        for mechanism in mechanisms
    ]
    return sweep(_scenario_cell, grid, workers=workers,
                 label="scenarios", retries=retries)
