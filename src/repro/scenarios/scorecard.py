"""Resilience scoring: RunMonitor metrics -> per-mechanism scorecard.

A cell's score is a weighted blend of four [0, 1] components, all read from
:meth:`RunMonitor.scorecard_metrics() <repro.sim.monitor.RunMonitor.scorecard_metrics>`
(the same reduction the ``--telemetry`` runtime sidecar carries):

* **delivery** (weight 0.50) — the delivery ratio, clamped to [0, 1];
* **conservation** (0.20) — 1 when the cell-conservation invariant held at
  every check, else 0;
* **stability** (0.15) — 1 minus 0.25 per plain stall and 0.5 per
  livelock, floored at 0;
* **detection** (0.15) — the fraction of failure events whose protocol
  reaction fired (1 when the cell injected no failures).

``score = round(100 * (0.50*delivery + 0.20*conservation
                       + 0.15*stability + 0.15*detection), 2)``

Everything is arithmetic over deterministic monitor counters, so scorecards
are byte-identical across reruns and worker counts for a given seed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["SCORE_WEIGHTS", "score_cell", "build_scorecard",
           "format_scorecard"]

#: component weights of the resilience score (documented in DESIGN.md §9)
SCORE_WEIGHTS = {
    "delivery": 0.50,
    "conservation": 0.20,
    "stability": 0.15,
    "detection": 0.15,
}

#: stability penalties per recorded stall/livelock
_STALL_PENALTY = 0.25
_LIVELOCK_PENALTY = 0.5


def score_cell(metrics: Dict[str, object]) -> float:
    """Score one cell's :meth:`RunMonitor.scorecard_metrics` in [0, 100]."""
    delivery = min(1.0, max(0.0, float(metrics["delivery_ratio"])))
    conservation = 1.0 if metrics["conserved"] else 0.0
    livelocks = int(metrics["livelocks"])
    plain_stalls = int(metrics["stalls"]) - livelocks
    stability = max(0.0, 1.0 - _STALL_PENALTY * plain_stalls
                    - _LIVELOCK_PENALTY * livelocks)
    events = int(metrics["failure_events"])
    detection = (int(metrics["failures_detected"]) / events
                 if events else 1.0)
    return round(100 * (SCORE_WEIGHTS["delivery"] * delivery
                        + SCORE_WEIGHTS["conservation"] * conservation
                        + SCORE_WEIGHTS["stability"] * stability
                        + SCORE_WEIGHTS["detection"] * detection), 2)


def build_scorecard(cells: Sequence[Dict[str, object]],
                    grid: Dict[str, object]) -> Dict[str, object]:
    """Reduce scored matrix cells to the per-mechanism scorecard.

    Args:
        cells: :func:`repro.scenarios.matrix.run_matrix` output — one dict
            per cell with ``pattern``/``workload``/``mechanism``/
            ``metrics``/``score``.
        grid: the matrix parameters (axes, n, h, duration, seed), recorded
            verbatim so the artifact is self-describing.

    Returns:
        A JSON-serialisable dict: ``grid``, per-``mechanisms`` aggregates
        (mean/min score, worst cell, per-pattern means), a ``ranking`` and
        the raw ``cells``.  Deterministic for deterministic inputs.
    """
    mechanisms: Dict[str, Dict[str, object]] = {}
    for mech in grid["mechanisms"]:
        rows = [c for c in cells if c["mechanism"] == mech]
        if not rows:
            continue
        scores = [c["score"] for c in rows]
        worst = min(rows, key=lambda c: (c["score"], c["pattern"],
                                         c["workload"]))
        per_pattern: Dict[str, float] = {}
        for pattern in grid["patterns"]:
            pattern_scores = [c["score"] for c in rows
                              if c["pattern"] == pattern]
            if pattern_scores:
                per_pattern[pattern] = round(
                    sum(pattern_scores) / len(pattern_scores), 2)
        mechanisms[mech] = {
            "score": round(sum(scores) / len(scores), 2),
            "min_score": worst["score"],
            "worst_cell": {"pattern": worst["pattern"],
                           "workload": worst["workload"]},
            "delivery_ratio": round(
                sum(float(c["metrics"]["delivery_ratio"]) for c in rows)
                / len(rows), 4),
            "conserved_cells": sum(1 for c in rows
                                   if c["metrics"]["conserved"]),
            "cells": len(rows),
            "per_pattern": per_pattern,
        }
    ranking = sorted(mechanisms,
                     key=lambda m: (-mechanisms[m]["score"], m))
    return {
        "schema": 1,
        "grid": dict(grid),
        "mechanisms": mechanisms,
        "ranking": ranking,
        "cells": list(cells),
    }


def format_scorecard(card: Dict[str, object]) -> str:
    """Render the scorecard as an aligned plain-text table."""
    patterns = [p for p in card["grid"]["patterns"]
                if any(p in card["mechanisms"][m]["per_pattern"]
                       for m in card["mechanisms"])]
    headers = ["mechanism", "score", "min", "worst cell",
               "delivery", "conserved"] + list(patterns)
    rows: List[List[str]] = []
    for mech in card["ranking"]:
        agg = card["mechanisms"][mech]
        worst = agg["worst_cell"]
        rows.append(
            [mech, f"{agg['score']:.2f}", f"{agg['min_score']:.2f}",
             f"{worst['pattern']}/{worst['workload']}",
             f"{agg['delivery_ratio']:.4f}",
             f"{agg['conserved_cells']}/{agg['cells']}"]
            + [f"{agg['per_pattern'].get(p, float('nan')):.2f}"
               for p in patterns]
        )
    table = [headers] + rows
    widths = [max(len(row[i]) for row in table)
              for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
