"""Hardware resource measurement from simulation runs (Figs. 7 and 13).

The paper dimensions its FPGA design from simulation: the maximum number of
*active buckets* and the maximum *PIEO queue length* observed in the
scalability experiments (both doubled for headroom) feed the memory model of
Section 4.3.  This module extracts those quantities from a finished
:class:`~repro.sim.engine.Engine` run and produces the corresponding
:class:`~repro.hardware.memory_model.ShaleMemoryModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Engine
from .memory_model import ShaleMemoryModel

__all__ = ["ResourceObservation", "observe_resources", "provision_memory"]


@dataclass(frozen=True)
class ResourceObservation:
    """Peak resource usage observed during a run.

    Attributes:
        n, h: network parameters.
        max_active_buckets: peak number of simultaneously active buckets at
            any node.
        max_pieo_length: peak occupancy of any PIEO queue.
        max_buffer_occupancy: peak total cells buffered at any node.
    """

    n: int
    h: int
    max_active_buckets: int
    max_pieo_length: int
    max_buffer_occupancy: int


def observe_resources(engine: Engine) -> ResourceObservation:
    """Extract peak hardware-relevant occupancies from a finished run."""
    max_active = 0
    max_pieo = 0
    max_buffer = 0
    for node in engine.nodes:
        if node.bucket_tracker is not None:
            max_active = max(max_active, node.bucket_tracker.peak)
        max_pieo = max(max_pieo, node.max_pieo_occupancy())
        max_buffer = max(max_buffer, node.buffer_occupancy())
    # metrics track sampled maxima too; take the larger of the two views
    max_active = max(max_active, engine.metrics.max_active_buckets)
    max_pieo = max(max_pieo, engine.metrics.max_pieo_length)
    max_buffer = max(max_buffer, engine.metrics.max_buffer_occupancy)
    return ResourceObservation(
        n=engine.config.n,
        h=engine.config.h,
        max_active_buckets=max_active,
        max_pieo_length=max_pieo,
        max_buffer_occupancy=max_buffer,
    )


def provision_memory(
    observation: ResourceObservation,
    headroom: float = 2.0,
    token_queue_depth: int = 16,
) -> ShaleMemoryModel:
    """Dimension the end host from observed peaks (paper doubles them)."""
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1.0")
    return ShaleMemoryModel(
        n=observation.n,
        h=observation.h,
        active_buckets=max(1, int(observation.max_active_buckets * headroom)),
        pieo_depth=max(1, int(observation.max_pieo_length * headroom)),
        token_queue_depth=token_queue_depth,
    )
