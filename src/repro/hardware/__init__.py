"""Hardware models: FPGA end-host prototype and memory scaling."""

from .memory_model import (
    BUCKET_ID_BYTES,
    COUNTER_BYTES,
    SHOAL_PAIR_STATE_BYTES,
    TOKEN_BYTES,
    ShaleMemoryModel,
    shoal_on_chip_bytes,
)
from .pieo_hw import PieoHardwareModel
from .prototype import HardwareNetwork, HardwareNode, HardwareTimings
from .resources import ResourceObservation, observe_resources, provision_memory

__all__ = [
    "BUCKET_ID_BYTES",
    "COUNTER_BYTES",
    "HardwareNetwork",
    "HardwareNode",
    "HardwareTimings",
    "PieoHardwareModel",
    "ResourceObservation",
    "SHOAL_PAIR_STATE_BYTES",
    "ShaleMemoryModel",
    "TOKEN_BYTES",
    "observe_resources",
    "provision_memory",
    "shoal_on_chip_bytes",
]
