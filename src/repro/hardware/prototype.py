"""Cycle-level model of the FPGA end-host prototype (paper Section 4, App. C).

The paper validates its packet simulator against a Bluespec prototype
simulated in ModelSim (Fig. 8): identical 16-node permutation workloads run
on both, and throughput plus maximum queue length are compared.

This module is our stand-in for the ModelSim side: an *independently
structured* simulation of the end host that follows the hardware's RX/TX
pipelines step by step —

* TX: get neighbour (1 cycle) -> PIEO dequeue attempt (up to 3 cycles) ->
  load cell from forward/local queue, spend token, enqueue return token
  (1 cycle) -> add up to 2 tokens and start sending (1 cycle); ~7 cycles
  total in the critical path;
* RX: receive cell (1 cycle) -> classify + compute next hop (1 cycle) ->
  update token counts, write buffer, enqueue bucket id in PIEO (1 cycle);
  2 cycles in the critical path after the cell lands.

The model enforces the DE5-Net timing budget: at 156.25 MHz a 68-cycle
timeslot (Section 5.1) must fit both paths, and it tracks cycle consumption
so configurations that would not fit in hardware are rejected rather than
silently mis-simulated.

Functionally the prototype executes the same protocol as
:class:`repro.sim.node.Node`, but the code path is written against the
hardware data structures (per-phase/per-bucket FIFOs + bucket-id PIEO queues
+ active-bucket index allocation) instead of the simulator's flat cell
queues, giving the cross-validation real teeth: agreement means two
different implementations of the spec agree, exactly as in the paper.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.buckets import BucketId
from ..core.cell import Cell
from ..core.coordinates import CoordinateSystem
from ..core.schedule import Schedule

__all__ = ["HardwareTimings", "HardwareNode", "HardwareNetwork"]


class HardwareTimings:
    """Clock/timeslot budget of the prototype (DE5-Net defaults).

    Attributes:
        clock_mhz: FPGA clock (156.25 MHz on the DE5-Net).
        cycles_per_slot: clock cycles per timeslot (68 in Section 5.1).
        tx_cycles: TX critical path length.
        rx_cycles: RX critical path length.
        link_gbps: per-port line rate (10 Gbps on the DE5-Net).
        cell_bytes: cell size used by the prototype run (512 B in Fig. 8).
    """

    def __init__(
        self,
        clock_mhz: float = 156.25,
        cycles_per_slot: int = 68,
        tx_cycles: int = 7,
        rx_cycles: int = 2,
        link_gbps: float = 10.0,
        cell_bytes: int = 512,
    ):
        if cycles_per_slot < tx_cycles + rx_cycles:
            raise ValueError(
                "timeslot budget cannot fit the TX and RX pipelines: "
                f"{cycles_per_slot} < {tx_cycles} + {rx_cycles}"
            )
        self.clock_mhz = clock_mhz
        self.cycles_per_slot = cycles_per_slot
        self.tx_cycles = tx_cycles
        self.rx_cycles = rx_cycles
        self.link_gbps = link_gbps
        self.cell_bytes = cell_bytes

    @property
    def cycle_ns(self) -> float:
        """Nanoseconds per clock cycle."""
        return 1e3 / self.clock_mhz

    @property
    def slot_ns(self) -> float:
        """Nanoseconds per timeslot."""
        return self.cycles_per_slot * self.cycle_ns

    @property
    def available_gbps(self) -> float:
        """Effective bandwidth after slot overheads (9.412 Gbps in the
        paper's 68-cycle configuration with 512-byte cells)."""
        return self.cell_bytes * 8 / self.slot_ns


class HardwareNode:
    """One prototype end host, organised like the FPGA memory layout (Fig. 6).

    Data structures:

    * ``pieo``: per-neighbour-link PIEO queues holding *bucket ids*;
    * ``forward_fifos``: per-(phase, bucket) FIFO queues of cell payloads
      (the DRAM side) — spray queues shared across the phase's neighbours
      (optimization 1), direct queues keyed the same way since all direct
      hops for a destination leave on one link;
    * ``token_counts``: per-(neighbour, bucket) available credit;
    * ``token_return``: per-neighbour FIFO of tokens to send back;
    * ``active_index``: bucket id -> active slot allocation (optimization 2).
    """

    def __init__(self, node_id: int, network: "HardwareNetwork"):
        self.node_id = node_id
        self.net = network
        self.coords = network.coords
        self.h = network.coords.h
        self.r = network.coords.r
        self.rng = network.rng
        links = self.h * (self.r - 1)
        # PIEO queues store (bucket, phase) entries per outgoing link
        self.pieo: List[Deque[Tuple[BucketId, int]]] = [
            deque() for _ in range(links)
        ]
        # forward FIFOs keyed by (phase, bucket)
        self.forward_fifos: Dict[Tuple[int, BucketId], Deque[Cell]] = {}
        self.token_counts: Dict[Tuple[int, BucketId], int] = {}
        self.token_return: Dict[int, Deque[BucketId]] = {}
        self.active_index: Dict[BucketId, int] = {}
        self.free_slots: List[int] = list(range(network.active_bucket_slots))
        self.local_queue: Deque[Cell] = deque()
        self.cells_received = 0
        self.cells_delivered = 0
        self.max_queue_seen = 0
        self.cycles_used_tx = 0
        self.cycles_used_rx = 0

    # ------------------------------------------------------------------ #
    # helpers mirroring the hardware maps

    def _link(self, phase: int, offset: int) -> int:
        return phase * (self.r - 1) + (offset - 1)

    def _alloc_bucket(self, bucket: BucketId) -> None:
        """Freelist + priority-encoder allocation of an active bucket slot."""
        if bucket in self.active_index:
            return
        if not self.free_slots:
            raise OverflowError(
                f"node {self.node_id}: out of active bucket slots "
                f"(A={self.net.active_bucket_slots}); raise the allocation"
            )
        self.active_index[bucket] = self.free_slots.pop(0)

    def _maybe_free_bucket(self, bucket: BucketId) -> None:
        """Release the slot when no cells or outstanding tokens remain."""
        if any(
            fifo and key[1] == bucket
            for key, fifo in self.forward_fifos.items()
        ):
            return
        if any(
            spent > 0 and key[1] == bucket
            for key, spent in self.token_counts.items()
        ):
            return
        slot = self.active_index.pop(bucket, None)
        if slot is not None:
            self.free_slots.append(slot)

    def _spent(self, neighbor: int, bucket: BucketId) -> int:
        return self.token_counts.get((neighbor, bucket), 0)

    # ------------------------------------------------------------------ #
    # TX path (Appendix C, left column)

    def tx(self, t: int, phase: int, offset: int) -> Optional[Tuple[int, Cell, List[BucketId]]]:
        """Run the TX pipeline; returns (receiver, cell, tokens) or None."""
        cycles = 1  # get neighbour for the current timeslot
        neighbor = self.coords.neighbor_at_offset(self.node_id, phase, offset)
        link = self._link(phase, offset)
        cell: Optional[Cell] = None

        cycles += 3  # PIEO dequeue attempt
        entry = self._pieo_dequeue(link, neighbor)
        if entry is not None:
            bucket, src_phase = entry
            cycles += 1  # load cell, spend token, enqueue return token
            fifo = self.forward_fifos[(src_phase, bucket)]
            cell = fifo.popleft()
            if not fifo:
                del self.forward_fifos[(src_phase, bucket)]
            if neighbor != cell.dst:
                next_bucket = (
                    (cell.dst, cell.sprays_remaining - 1)
                    if cell.sprays_remaining > 0
                    else (cell.dst, 0)
                )
                self.token_counts[(neighbor, next_bucket)] = (
                    self._spent(neighbor, next_bucket) + 1
                )
                self._alloc_bucket(next_bucket)
            if cell.prev_hop >= 0:
                self.token_return.setdefault(cell.prev_hop, deque()).append(
                    (cell.dst, cell.sprays_remaining)
                )
            if cell.sprays_remaining > 0:
                cell.sprays_remaining -= 1
            self._maybe_free_bucket(bucket)
        else:
            cycles += 1  # select a local flow to send from
            cell = self._local_tx(neighbor, phase)

        tokens: List[BucketId] = []
        queue = self.token_return.get(neighbor)
        if queue:
            while queue and len(tokens) < 2:
                tokens.append(queue.popleft())
        cycles += 1  # add tokens, start sending
        self.cycles_used_tx = max(self.cycles_used_tx, cycles)

        if cell is None and not tokens:
            return None
        if cell is None:
            cell = Cell.make_dummy(self.node_id, neighbor)
        else:
            cell.prev_hop = self.node_id
        return neighbor, cell, tokens

    def _pieo_dequeue(self, link: int, neighbor: int) -> Optional[Tuple[BucketId, int]]:
        """First eligible (bucket, phase) entry in this link's PIEO queue."""
        pieo = self.pieo[link]
        for i, (bucket, src_phase) in enumerate(pieo):
            dst, sprays = bucket
            if neighbor == dst:
                eligible = True
            else:
                next_bucket = (dst, sprays - 1) if sprays > 0 else (dst, 0)
                eligible = self._spent(neighbor, next_bucket) < self.net.token_budget
            if eligible:
                del pieo[i]
                return bucket, src_phase
        return None

    def _local_tx(self, neighbor: int, phase: int) -> Optional[Cell]:
        if not self.local_queue:
            return None
        cell = self.local_queue[0]
        bucket = (cell.dst, self.h - 1)
        if neighbor != cell.dst:
            if self._spent(neighbor, bucket) >= self.net.first_hop_budget:
                return None
            self.token_counts[(neighbor, bucket)] = (
                self._spent(neighbor, bucket) + 1
            )
            self._alloc_bucket(bucket)
        self.local_queue.popleft()
        cell.sprays_remaining = self.h - 1
        cell.spray_phase = (phase + 1) % self.h
        return cell

    # ------------------------------------------------------------------ #
    # RX path (Appendix C, right column)

    def rx(self, cell: Cell, tokens: List[BucketId], t: int, phase: int) -> None:
        """Run the RX pipeline for an arriving transmission."""
        cycles = 1  # receive the loaded cell
        sender = cell.prev_hop if not cell.dummy else cell.src
        cycles += 1  # convert tokens, classify, compute next hop
        for bucket in tokens:
            key = (sender, bucket)
            spent = self.token_counts.get(key, 0)
            if spent > 0:
                if spent == 1:
                    del self.token_counts[key]
                else:
                    self.token_counts[key] = spent - 1
            self._maybe_free_bucket(bucket)
        if cell.dummy:
            self.cycles_used_rx = max(self.cycles_used_rx, cycles)
            return
        self.cells_received += 1
        if cell.dst == self.node_id:
            self.cells_delivered += 1
            self.net.delivered += 1
            self.cycles_used_rx = max(self.cycles_used_rx, cycles + 1)
            return
        cycles += 1  # token counts, buffer write, PIEO enqueue
        self._enqueue_forward(cell, phase)
        self.cycles_used_rx = max(self.cycles_used_rx, cycles)

    def _enqueue_forward(self, cell: Cell, arrival_phase: int) -> None:
        bucket = (cell.dst, cell.sprays_remaining)
        # Next phase follows the previous hop's wire phase (carried on the
        # cell), so long propagation delays cannot skip a spray coordinate.
        hint = cell.spray_phase if cell.spray_phase >= 0 \
            else (arrival_phase + 1) % self.h
        if cell.sprays_remaining > 0:
            next_phase = hint
            offset = self.rng.randrange(1, self.r)
        else:
            next_phase = offset = None
            for i in range(self.h):
                p = (hint + i) % self.h
                mine = self.coords.coordinate(self.node_id, p)
                want = self.coords.coordinate(cell.dst, p)
                if mine != want:
                    next_phase, offset = p, (want - mine) % self.r
                    break
            if next_phase is None:
                raise AssertionError("cell for self reached _enqueue_forward")
        cell.spray_phase = (next_phase + 1) % self.h
        self._alloc_bucket(bucket)
        fifo = self.forward_fifos.setdefault((next_phase, bucket), deque())
        fifo.append(cell)
        link = self._link(next_phase, offset)
        self.pieo[link].append((bucket, next_phase))
        depth = len(self.pieo[link])
        if depth > self.max_queue_seen:
            self.max_queue_seen = depth

    # ------------------------------------------------------------------ #

    def add_local_cells(self, dst: int, count: int, t: int) -> None:
        """Queue ``count`` cells of local traffic towards ``dst``."""
        for seq in range(count):
            self.local_queue.append(
                Cell(self.node_id, dst, flow_id=dst, seq=seq,
                     sprays_remaining=self.h, created_at=t)
            )

    def total_buffered(self) -> int:
        """Cells buffered for forwarding."""
        return sum(len(f) for f in self.forward_fifos.values())


class HardwareNetwork:
    """A network of :class:`HardwareNode` plus the connecting switch.

    Mirrors the paper's ModelSim setup (Section 5.1): a switch wires the
    nodes according to Shale's connection schedule, all hosts share one
    clock, and a new timeslot begins every ``cycles_per_slot`` cycles.
    """

    def __init__(
        self,
        n: int,
        h: int,
        propagation_delay: int = 0,
        timings: Optional[HardwareTimings] = None,
        token_budget: int = 1,
        first_hop_budget: int = 0,
        active_bucket_slots: int = 4096,
        seed: int = 1,
        schedule: str = "ebs",
    ):
        from ..core.strategies import shared_schedule

        self.schedule = shared_schedule(schedule, n, h)
        self.coords = self.schedule.coords
        self.timings = timings if timings is not None else HardwareTimings()
        self.token_budget = token_budget
        self.first_hop_budget = first_hop_budget or token_budget
        self.active_bucket_slots = active_bucket_slots
        self.rng = random.Random(seed)
        self.nodes = [HardwareNode(i, self) for i in range(n)]
        self.propagation_delay = propagation_delay
        self.t = 0
        self.delivered = 0
        self._in_flight: Deque[Tuple[int, int, Cell, List[BucketId]]] = deque()

    def step(self) -> None:
        """One timeslot of the whole network."""
        t = self.t
        phase = self.schedule.phase_of(t)
        offset = self.schedule.offset_of(t)
        while self._in_flight and self._in_flight[0][0] <= t:
            _, receiver, cell, tokens = self._in_flight.popleft()
            self.nodes[receiver].rx(cell, tokens, t, self.schedule.phase_of(t))
        arrival = t + self.propagation_delay
        for node in self.nodes:
            out = node.tx(t, phase, offset)
            if out is None:
                continue
            receiver, cell, tokens = out
            self._in_flight.append((arrival, receiver, cell, tokens))
        self.t = t + 1

    def run(self, slots: int) -> None:
        """Run ``slots`` timeslots."""
        for _ in range(slots):
            self.step()

    # ------------------------------------------------------------------ #
    # measurements reported by Fig. 8

    def throughput_gbps(self) -> float:
        """Mean delivered goodput per node, in Gbps at the prototype's
        cell size and slot timing."""
        if self.t == 0:
            return 0.0
        cells_per_node_slot = self.delivered / (self.t * len(self.nodes))
        return cells_per_node_slot * self.timings.available_gbps

    def max_queue_length(self) -> int:
        """Largest PIEO queue depth observed anywhere."""
        return max(node.max_queue_seen for node in self.nodes)

    def timing_ok(self) -> bool:
        """Whether every pipeline fit the per-slot cycle budget."""
        budget = self.timings.cycles_per_slot
        return all(
            node.cycles_used_tx <= budget and node.cycles_used_rx <= budget
            for node in self.nodes
        )
