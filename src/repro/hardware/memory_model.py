"""Hardware memory-requirement models (paper Sections 4.2, 4.3; Fig. 7).

Shale's end-host needs:

* **on-chip memory** — PIEO queues (bucket ids), token return queues, local
  token counts for active buckets, and the bucket<->index maps:
  ``O(h (r-1) (Q_P + Q_T + A) + h N)`` where ``A`` is the active-bucket
  allocation, ``Q_P`` the PIEO queue depth and ``Q_T`` the token-return
  queue depth;
* **DRAM** — cell buffers for ``2 A h (r - 1)`` cells after both Section 4.2
  optimizations (per-phase shared spray queues + active-bucket allocation).

Shoal (representative of RotorNet and Sirius — same schedule and routing)
keeps per-neighbour state for all ``N - 1`` neighbours: its hop-by-hop
variant stores one queue per (neighbour, destination) pair reachable in its
2-hop paths, giving on-chip memory that scales linearly in ``N`` per
neighbour — quadratically overall — which is what Fig. 7 plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.cell import CELL_SIZE_BYTES

__all__ = [
    "ShaleMemoryModel",
    "shoal_on_chip_bytes",
    "BUCKET_ID_BYTES",
    "TOKEN_BYTES",
    "COUNTER_BYTES",
]

#: bytes to store one bucket id in on-chip memory (dest id + spray index)
BUCKET_ID_BYTES = 3
#: bytes per queued token (same contents as a bucket id + kind bits)
TOKEN_BYTES = 3
#: bytes per token/flow counter
COUNTER_BYTES = 2


@dataclass(frozen=True)
class ShaleMemoryModel:
    """On-chip and DRAM memory required by a Shale end host.

    Args:
        n: network size.
        h: tuning parameter.
        active_buckets: the allocation ``A`` for active buckets.
        pieo_depth: per-link PIEO queue depth ``Q_P``.
        token_queue_depth: per-neighbour token return queue depth ``Q_T``.
    """

    n: int
    h: int
    active_buckets: int
    pieo_depth: int
    token_queue_depth: int

    @property
    def radix(self) -> int:
        """Phase-group size ``r`` (rounded up for non-perfect powers)."""
        r = math.ceil(self.n ** (1.0 / self.h))
        while r**self.h < self.n:
            r += 1
        while r > 2 and (r - 1) ** self.h >= self.n:
            r -= 1
        return max(2, r)

    @property
    def neighbors(self) -> int:
        """Total one-hop neighbours: ``h (r - 1)``."""
        return self.h * (self.radix - 1)

    def pieo_bytes(self) -> int:
        """PIEO queues: one per neighbour, ``Q_P`` bucket ids deep."""
        return self.neighbors * self.pieo_depth * BUCKET_ID_BYTES

    def token_queue_bytes(self) -> int:
        """Token return queues: one per neighbour, ``Q_T`` tokens deep."""
        return self.neighbors * self.token_queue_depth * TOKEN_BYTES

    def token_count_bytes(self) -> int:
        """Local token counts for the ``A`` active buckets, per phase degree.

        Section 4.2: ``A h (r - 1)`` counters.
        """
        return self.active_buckets * self.neighbors * COUNTER_BYTES

    def bucket_map_bytes(self) -> int:
        """Forward map (size ``h N``) plus reverse map (size ``A``)."""
        index_bytes = max(1, (self.active_buckets.bit_length() + 7) // 8)
        forward = self.h * self.n * index_bytes
        reverse = self.active_buckets * BUCKET_ID_BYTES
        return forward + reverse

    def freelist_bytes(self) -> int:
        """Freelist bitmap over the ``A`` active bucket slots."""
        return (self.active_buckets + 7) // 8

    def on_chip_bytes(self) -> int:
        """Total on-chip memory (the Fig. 7 y-axis for Shale)."""
        return (
            self.pieo_bytes()
            + self.token_queue_bytes()
            + self.token_count_bytes()
            + self.bucket_map_bytes()
            + self.freelist_bytes()
        )

    def dram_cells(self) -> int:
        """Cell buffers after both optimizations: ``2 A h (r - 1)`` cells."""
        return 2 * self.active_buckets * self.neighbors

    def dram_bytes(self) -> int:
        """DRAM bytes for forwarded-cell storage."""
        return self.dram_cells() * CELL_SIZE_BYTES

    def naive_dram_cells(self) -> int:
        """Cell storage without the Section 4.2 optimizations.

        Per-neighbour, per-bucket FIFOs each sized for ``r - 1`` cells:
        ``h^2 N (r - 1)^2`` cells.
        """
        return self.h**2 * self.n * (self.radix - 1) ** 2

    def first_optimization_dram_cells(self) -> int:
        """Cell storage with only the shared-spray-queue optimization:
        ``h^2 N (r - 1)`` cells."""
        return self.h**2 * self.n * (self.radix - 1)


#: per-(neighbour, destination) queue state in Shoal: head/tail pointers,
#: a token counter and an occupancy bit — about six bytes of SRAM.
SHOAL_PAIR_STATE_BYTES = 6


def shoal_on_chip_bytes(
    n: int,
    cell_buffer_depth: int = 2,
) -> int:
    """On-chip memory for Shoal's end host at ``n`` nodes (Fig. 7 baseline).

    Shoal (representative of RotorNet and Sirius: same SRRD schedule and
    routing) gives every node ``N - 1`` neighbours.  Its hop-by-hop
    congestion control maintains the invariant "at most one enqueued cell
    per (upstream neighbour, destination) pair", which requires queue and
    token state for every such pair — ``(N - 1)^2`` entries of
    :data:`SHOAL_PAIR_STATE_BYTES` each.  This quadratic term dominates; a
    per-neighbour cell buffer of ``cell_buffer_depth`` cells adds the linear
    remainder.

    The resulting curve matches the published scaling: ~100 MB near
    N=5,000 growing to multiple GB by N=25,000, orders of magnitude above
    Shale with ``h > 1`` (whose neighbour count is ``h (r - 1)``, not
    ``N - 1``).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    neighbors = n - 1
    pair_state = neighbors * neighbors * SHOAL_PAIR_STATE_BYTES
    cell_buffers = neighbors * cell_buffer_depth * CELL_SIZE_BYTES
    counters = neighbors * COUNTER_BYTES
    return pair_state + cell_buffers + counters
