"""Timing model of the hardware PIEO module (paper Sections 4.3, App. C).

The FPGA prototype implements PIEO queues after Shrivastav (SIGCOMM 2019):
a dequeue occupies the module for four clock cycles, eligibility testing and
rank comparison use priority encoders, and — because only one PIEO queue is
dequeued at a time — multiplexers share a single set of priority encoders
across all of a node's queues (Section 4.3's scalability argument).

Appendix C builds the feasibility story on top: the RX and TX paths can each
use the module once per timeslot, so a timeslot must be at least four cycles
long with a dedicated module per path (or eight sharing one).  This model
captures those constraints so configurations can be checked analytically:

* how many PIEO operations per timeslot a given clock/slot budget allows;
* whether a target timeslot period is feasible with ``m`` modules;
* the ALM-style cost proxy of sharing encoders vs. replicating them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PieoHardwareModel"]


@dataclass(frozen=True)
class PieoHardwareModel:
    """Feasibility/cost model of a node's PIEO subsystem.

    Attributes:
        queues: PIEO queues at the node (one per neighbour link).
        depth: entries per queue.
        op_cycles: cycles one enqueue/dequeue occupies the module (4 in
            the reference design).
        modules: parallel PIEO modules (1 shares encoders across all
            queues via multiplexers; more trade area for rate).
        clock_mhz: module clock.
    """

    queues: int
    depth: int
    op_cycles: int = 4
    modules: int = 1
    clock_mhz: float = 156.25

    def __post_init__(self) -> None:
        if self.queues < 1 or self.depth < 1:
            raise ValueError("need at least one queue with one entry")
        if self.op_cycles < 1 or self.modules < 1:
            raise ValueError("op_cycles and modules must be positive")

    # ------------------------------------------------------------------ #
    # rate / feasibility

    def ops_per_slot(self, cycles_per_slot: int) -> int:
        """PIEO operations available per timeslot."""
        if cycles_per_slot < 1:
            raise ValueError("timeslot must be at least one cycle")
        return (cycles_per_slot // self.op_cycles) * self.modules

    def supports_timeslot(self, cycles_per_slot: int,
                          ops_needed: int = 2) -> bool:
        """Whether a slot of ``cycles_per_slot`` cycles fits the RX + TX
        PIEO work (one op each by default, Appendix C)."""
        return self.ops_per_slot(cycles_per_slot) >= ops_needed

    def min_timeslot_cycles(self, ops_needed: int = 2) -> int:
        """Shortest feasible timeslot in cycles.

        Appendix C: "Our design can easily support four-cycle timeslots by
        using a dedicated PIEO module for both the RX and TX paths" — i.e.
        ``ops_needed=2`` with ``modules=2`` gives 4 cycles.
        """
        per_module = -(-ops_needed // self.modules)  # ceil
        return per_module * self.op_cycles

    def min_timeslot_ns(self, ops_needed: int = 2) -> float:
        """Shortest feasible timeslot in nanoseconds at this clock."""
        return self.min_timeslot_cycles(ops_needed) * 1e3 / self.clock_mhz

    # ------------------------------------------------------------------ #
    # area proxies

    def encoder_sets(self) -> int:
        """Priority-encoder sets instantiated: one per module — *not* one
        per queue, thanks to the multiplexer sharing of Section 4.3."""
        return self.modules

    def encoder_width(self) -> int:
        """Width each priority encoder must handle: the queue depth."""
        return self.depth

    def mux_inputs(self) -> int:
        """Multiplexer fan-in to share the encoders across queues."""
        return self.queues

    def area_cost_proxy(self) -> int:
        """A dimensionless area proxy: encoders dominate (width x sets),
        plus per-queue storage wiring."""
        return self.encoder_width() * self.encoder_sets() + self.queues

    def naive_area_cost_proxy(self) -> int:
        """The same proxy without encoder sharing (one set per queue)."""
        return self.encoder_width() * self.queues + self.queues
