"""Tests for the multiprocess sweep helper.

Covers the dispatch paths (sequential, single-cell, pool, pool-unavailable
fallback) through one shared grid-order assertion, worker crash isolation,
and — for every experiment module's worker function — that a parallel run
is *identical* to a sequential one: same plain results and same
per-engine :class:`~repro.sim.digest.DeterminismDigest`s.
"""

import os

import pytest

from repro.sim.parallel import CellOutcome, default_workers, sweep, sweep_cells

#: recorded at import time in the parent; fork copies it, so a worker
#: process sees a stale value and can be told apart from the parent
_PARENT_PID = os.getpid()


def square(x):
    return x * x


def combine(a, b=10):
    return a + b


def parent_only(x):
    """Succeeds in the sweep parent, raises in any forked worker."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("simulated worker crash")
    return x * 2


def always_fail(x):
    raise ValueError("this cell is broken everywhere")


def flaky_engine_cell(duration):
    """``engine_cell``, but dies in any forked worker (parent retry wins)."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("simulated worker crash")
    return engine_cell(duration)


def engine_cell(duration):
    """A tiny real simulation, for telemetry/digest dispatch tests."""
    from repro.sim.config import SimConfig
    from repro.sim.engine import Engine
    from repro.workloads.generators import permutation_workload

    cfg = SimConfig(n=9, h=2, duration=duration, seed=3)
    engine = Engine(cfg, workload=permutation_workload(cfg, 20))
    engine.run()
    return engine.metrics.payload_cells_delivered


def assert_grid_order(fn, grid, expected, **kwargs):
    """Shared helper: every dispatch path must return results in grid order.

    Exercises ``workers<=1``, ``len(cells)<=1`` (each cell alone) and the
    pool path against the same expectation.
    """
    assert sweep(fn, grid, workers=1, **kwargs) == expected
    assert sweep(fn, grid, workers=None, **kwargs) == expected
    assert sweep(fn, grid, workers=2, **kwargs) == expected
    for cell, value in zip(grid, expected):
        assert sweep(fn, [cell], workers=4, **kwargs) == [value]


class TestSweep:
    def test_sequential(self):
        grid = [{"x": i} for i in range(5)]
        assert sweep(square, grid, workers=1) == [0, 1, 4, 9, 16]

    def test_parallel_matches_sequential(self):
        grid = [{"x": i} for i in range(8)]
        assert sweep(square, grid, workers=3) == sweep(square, grid, workers=1)

    def test_all_paths_grid_order(self):
        grid = [{"x": i} for i in range(6)]
        assert_grid_order(square, grid, [0, 1, 4, 9, 16, 25])

    def test_order_preserved(self):
        grid = [{"a": i, "b": 100 - i} for i in range(6)]
        assert_grid_order(combine, grid, [100] * 6)

    def test_empty_grid(self):
        assert sweep(square, [], workers=4) == []

    def test_single_cell_runs_inline(self):
        assert sweep(square, [{"x": 7}], workers=4) == [49]

    def test_none_workers_sequential(self):
        assert sweep(square, [{"x": 2}], workers=None) == [4]

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert default_workers(cap=2) <= 2


class TestCrashIsolation:
    def test_worker_crash_retried_sequentially(self):
        """A cell that dies in a worker is retried in the parent, not fatal."""
        grid = [{"x": i} for i in range(4)]
        assert sweep(parent_only, grid, workers=2) == [0, 2, 4, 6]

    def test_persistent_failure_propagates(self):
        """A cell that fails in the worker AND in the retry raises."""
        with pytest.raises(ValueError, match="broken everywhere"):
            sweep(always_fail, [{"x": 1}, {"x": 2}], workers=2)

    def test_sequential_failure_propagates(self):
        with pytest.raises(ValueError, match="broken everywhere"):
            sweep(always_fail, [{"x": 1}, {"x": 2}], workers=1)

    def test_zero_retry_budget_fails_fast(self):
        """``retries=0`` turns a worker crash into an immediate error."""
        grid = [{"x": i} for i in range(4)]
        with pytest.raises(RuntimeError, match="retry budget is 0"):
            sweep(parent_only, grid, workers=2, retries=0)

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="retry budget"):
            sweep(square, [{"x": 1}, {"x": 2}], workers=2, retries=-1)

    def test_ambient_retry_default_configurable(self):
        from repro.sim.parallel import (default_cell_retries,
                                        set_default_cell_retries)

        assert default_cell_retries() == 1
        set_default_cell_retries(3)
        try:
            assert default_cell_retries() == 3
            with pytest.raises(ValueError):
                set_default_cell_retries(-1)
        finally:
            set_default_cell_retries(1)

    def test_attempts_land_in_runtime_sidecar(self):
        """Crash-retried cells record their attempt count in the sidecar."""
        from repro.obs.capture import TelemetryCapture

        grid = [{"duration": 120}, {"duration": 160}]
        with TelemetryCapture() as capture:
            values = sweep(flaky_engine_cell, grid, workers=2)
            runtimes = capture.collect_runtime()
        assert values == sweep(engine_cell, grid, workers=1)
        stamped = [r["runtime"] for r in runtimes]
        assert [r["cell_attempts"] for r in stamped] == [2, 2]
        assert all(r["cell_retried"] for r in stamped)

    def test_clean_cells_record_single_attempt(self):
        from repro.obs.capture import TelemetryCapture

        grid = [{"duration": 120}, {"duration": 160}]
        with TelemetryCapture() as capture:
            sweep(engine_cell, grid, workers=2)
            runtimes = capture.collect_runtime()
        stamped = [r["runtime"] for r in runtimes]
        assert [r["cell_attempts"] for r in stamped] == [1, 1]
        assert not any(r["cell_retried"] for r in stamped)


class TestPoolFallback:
    def test_fallback_keeps_results_and_telemetry(self, monkeypatch):
        """Pool-unavailable falls back sequentially WITHOUT losing telemetry."""
        from repro.obs.capture import TelemetryCapture
        from repro.sim import parallel

        def broken_get_context(method):
            raise OSError("no process pools in this sandbox")

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", broken_get_context
        )
        grid = [{"duration": 120}, {"duration": 160}]
        with TelemetryCapture() as capture:
            values = sweep(engine_cell, grid, workers=2)
            runs = capture.collect()
        assert values == sweep(engine_cell, grid, workers=1)
        # the fallback path must still ship per-cell telemetry home,
        # merged in grid order
        assert [run["index"] for run in runs] == [0, 1]
        assert all("summary" in run for run in runs)


class TestSweepCells:
    def test_outcomes_carry_digests_and_wall(self):
        grid = [{"duration": 120}, {"duration": 160}]
        outcomes = sweep_cells(engine_cell, grid, workers=1, digest=True)
        assert all(isinstance(o, CellOutcome) for o in outcomes)
        assert all(len(o.digests) == 1 for o in outcomes)
        assert all(o.wall >= 0.0 for o in outcomes)
        assert not any(o.cached for o in outcomes)
        # different horizons must hash differently
        assert outcomes[0].digests != outcomes[1].digests

    def test_digests_off_by_default(self):
        outcomes = sweep_cells(engine_cell, [{"duration": 120}], workers=1)
        assert outcomes[0].digests == ()


# --------------------------------------------------------------------------- #
# parallel-vs-sequential equivalence, one case per experiment worker function

def _fig10_grid():
    from repro.experiments.fig10_shortflow import _run_cell

    shared = dict(n=16, duration=1000, propagation_delay=2,
                  workload_name="short-flow", seed=5, load=0.15)
    return _run_cell, [dict(mechanism=m, h=2, **shared)
                       for m in ("none", "hbh+spray")]


def _fig01_grid():
    from repro.experiments.fig01_tradeoff import _point

    return _point, [dict(n=4096, slot_ns=5.632, h=h) for h in (1, 2)]


def _fig04_grid():
    from repro.experiments.fig04_opera import _run_system

    shared = dict(n=16, duration=1000, load=0.3, propagation_delay=4,
                  opera_period_cells=145, workload_scale=0.02, seed=1)
    return _run_system, [dict(system=s, **shared)
                         for s in ("shale", "opera")]


def _fig08_grid():
    from repro.experiments.fig08_validation import _run_cell

    shared = dict(n=16, flow_cells=800, duration=800,
                  propagation_delay=0, seed=7)
    return _run_cell, [dict(h=h, **shared) for h in (2, 4)]


def _fig09_grid():
    from repro.experiments.fig09_interleaving import _run_cell

    shared = dict(n=16, h_bulk=2, h_latency=4, duration=1000,
                  propagation_delay=2, cutoff_cells=64,
                  workload_scale=0.02, seed=3)
    return _run_cell, [dict(s=s, **shared) for s in (0.0, 0.4)]


def _fig12_grid():
    from repro.experiments.fig12_failures import _run_cell

    shared = dict(n=16, duration=1200, flow_cells=400, permutations=4,
                  propagation_delay=2, seed=23, mode="nodes",
                  detection_epochs=1)
    return _run_cell, [dict(h=2, fraction=f, **shared) for f in (0.0, 0.06)]


def _fig13_grid():
    from repro.experiments.fig13_scalability import _run_cell

    shared = dict(duration=1000, propagation_delay=2, seed=13)
    return _run_cell, [dict(h=2, n=n, **shared) for n in (16, 25)]


def _fig17_grid():
    from repro.experiments.fig17_nonincast import _run_cell

    shared = dict(n=16, h=2, duration=1200, propagation_delay=2, seed=17,
                  elephant_bytes=100_000, workload_scale=0.02, load=0.15)
    return _run_cell, [dict(mechanism=m, **shared)
                       for m in ("ndp", "hbh+spray")]


def _appd_grid():
    from repro.experiments.appd_token_budget import _run_cell

    shared = dict(n=16, h=2, duration=800, flow_cells=400, seed=19)
    return _run_cell, [dict(t_f=1, delay=d, **shared) for d in (0, 30)]


EQUIVALENCE_CASES = {
    "fig01": _fig01_grid,
    "fig04": _fig04_grid,
    "fig08": _fig08_grid,
    "fig09": _fig09_grid,
    "fig10": _fig10_grid,
    "fig12": _fig12_grid,
    "fig13": _fig13_grid,
    "fig17": _fig17_grid,
    "appd": _appd_grid,
}


class TestExperimentParallelism:
    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_CASES))
    def test_parallel_equals_sequential(self, name):
        """Same results AND same determinism digests, workers=1 vs 2."""
        fn, grid = EQUIVALENCE_CASES[name]()
        seq = sweep_cells(fn, grid, workers=1, digest=True)
        par = sweep_cells(fn, grid, workers=2, digest=True)
        assert [o.value for o in seq] == [o.value for o in par]
        assert [o.digests for o in seq] == [o.digests for o in par]

    def test_fig10_parallel_equals_sequential(self):
        from repro.experiments import fig10_shortflow

        kwargs = dict(
            n=16, h_values=(2,), mechanisms=("none", "hbh+spray"),
            duration=3000, propagation_delay=2, load=0.15,
        )
        seq = fig10_shortflow.run(workers=1, **kwargs)
        par = fig10_shortflow.run(workers=2, **kwargs)
        for a, b in zip(seq.cells, par.cells):
            assert a.mechanism == b.mechanism
            assert a.fct_tail == b.fct_tail
            assert a.buffer_p9999 == b.buffer_p9999
            assert a.max_queue == b.max_queue
