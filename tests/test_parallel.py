"""Tests for the multiprocess sweep helper."""

import pytest

from repro.sim.parallel import default_workers, sweep


def square(x):
    return x * x


def combine(a, b=10):
    return a + b


class TestSweep:
    def test_sequential(self):
        grid = [{"x": i} for i in range(5)]
        assert sweep(square, grid, workers=1) == [0, 1, 4, 9, 16]

    def test_parallel_matches_sequential(self):
        grid = [{"x": i} for i in range(8)]
        assert sweep(square, grid, workers=3) == sweep(square, grid, workers=1)

    def test_order_preserved(self):
        grid = [{"a": i, "b": 100 - i} for i in range(6)]
        assert sweep(combine, grid, workers=2) == [100] * 6

    def test_empty_grid(self):
        assert sweep(square, [], workers=4) == []

    def test_single_cell_runs_inline(self):
        assert sweep(square, [{"x": 7}], workers=4) == [49]

    def test_none_workers_sequential(self):
        assert sweep(square, [{"x": 2}], workers=None) == [4]

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert default_workers(cap=2) <= 2


class TestExperimentParallelism:
    def test_fig10_parallel_equals_sequential(self):
        from repro.experiments import fig10_shortflow

        kwargs = dict(
            n=16, h_values=(2,), mechanisms=("none", "hbh+spray"),
            duration=3000, propagation_delay=2, load=0.15,
        )
        seq = fig10_shortflow.run(workers=1, **kwargs)
        par = fig10_shortflow.run(workers=2, **kwargs)
        for a, b in zip(seq.cells, par.cells):
            assert a.mechanism == b.mechanism
            assert a.fct_tail == b.fct_tail
            assert a.buffer_p9999 == b.buffer_p9999
            assert a.max_queue == b.max_queue
