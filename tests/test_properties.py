"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinates import CoordinateSystem
from repro.core.header import (
    TOKEN_INVALIDATE,
    TOKEN_REGULAR,
    TOKEN_REVALIDATE,
    HeaderCodec,
    Token,
)
from repro.core.routing import Router
from repro.core.schedule import Schedule
from repro.sim.pieo import PieoQueue
from repro.workloads.distributions import (
    HeavyTailedDistribution,
    ShortFlowDistribution,
    bucket_of,
    bytes_to_cells,
)

# networks small enough to enumerate exhaustively inside properties
NETWORKS = st.sampled_from(
    [(4, 1), (8, 1), (4, 2), (9, 2), (16, 2), (25, 2), (8, 3), (27, 3), (16, 4)]
)


class TestCoordinateProperties:
    @given(NETWORKS, st.integers(min_value=0, max_value=10**6))
    def test_roundtrip(self, net, raw):
        n, h = net
        cs = CoordinateSystem(n, h)
        node = raw % n
        assert cs.node_id(cs.coords(node)) == node

    @given(NETWORKS, st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(0, 10**6))
    def test_with_coordinate_sets_exactly_one(self, net, raw, p_raw, v_raw):
        n, h = net
        cs = CoordinateSystem(n, h)
        node = raw % n
        p = p_raw % h
        value = v_raw % cs.r
        moved = cs.with_coordinate(node, p, value)
        for q in range(h):
            if q == p:
                assert cs.coordinate(moved, q) == value
            else:
                assert cs.coordinate(moved, q) == cs.coordinate(node, q)

    @given(NETWORKS, st.integers(0, 10**6))
    def test_neighbor_relation_symmetric(self, net, raw):
        n, h = net
        cs = CoordinateSystem(n, h)
        node = raw % n
        for nb in cs.all_neighbors(node):
            assert node in cs.all_neighbors(nb)


class TestScheduleProperties:
    @given(NETWORKS, st.integers(0, 5000))
    def test_every_slot_is_permutation(self, net, t):
        n, h = net
        sched = Schedule.for_network(n, h)
        matrix = sched.connection_matrix(t)
        assert sorted(matrix) == list(range(n))

    @given(NETWORKS, st.integers(0, 5000))
    def test_send_recv_inverse(self, net, t):
        n, h = net
        sched = Schedule.for_network(n, h)
        for x in range(n):
            assert sched.recv_source(sched.send_target(x, t), t) == x

    @given(NETWORKS, st.integers(0, 1000), st.integers(0, 10**6),
           st.integers(0, 10**6))
    def test_next_send_slot_correct(self, net, after, a_raw, b_raw):
        n, h = net
        sched = Schedule.for_network(n, h)
        src = a_raw % n
        neighbors = sched.coords.all_neighbors(src)
        dst = neighbors[b_raw % len(neighbors)]
        t = sched.next_send_slot(src, dst, after)
        assert t >= after
        assert t - after < sched.epoch_length
        assert sched.send_target(src, t) == dst


class TestRoutingProperties:
    @settings(max_examples=60)
    @given(NETWORKS, st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(0, 3), st.integers(0, 2**31 - 1))
    def test_sampled_paths_always_reach(self, net, a_raw, b_raw, phase_raw,
                                        seed):
        n, h = net
        src = a_raw % n
        dst = b_raw % n
        router = Router(Schedule.for_network(n, h), rng=random.Random(seed))
        path = router.sample_path(src, dst, start_phase=phase_raw % h)
        assert path[0] == src
        assert path[-1] == dst
        assert len(path) - 1 <= 2 * h

    @settings(max_examples=60)
    @given(NETWORKS, st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(0, 10**6))
    def test_path_via_visits_intermediate(self, net, a_raw, b_raw, m_raw):
        n, h = net
        router = Router(Schedule.for_network(n, h),
                        rng=random.Random(0))
        src, dst, mid = a_raw % n, b_raw % n, m_raw % n
        path = router.path_via(src, mid, dst)
        assert path[h] == mid
        assert path[-1] == dst


class TestHeaderProperties:
    codec = HeaderCodec()

    @given(
        st.integers(0, (1 << 15) - 1),
        st.integers(0, (1 << 15) - 1),
        st.integers(0, 3),
        st.integers(0, (1 << 18) - 1),
        st.lists(
            st.tuples(
                st.integers(0, (1 << 15) - 1),
                st.integers(0, 3),
                st.sampled_from(
                    [TOKEN_REGULAR, TOKEN_INVALIDATE, TOKEN_REVALIDATE]
                ),
            ),
            max_size=2,
        ),
    )
    def test_pack_unpack_roundtrip(self, src, dst, sprays, seq, token_specs):
        tokens = [Token(d, s, k) for d, s, k in token_specs]
        data = self.codec.pack(src, dst, sprays, seq, tokens=tokens)
        assert len(data) == 12
        got = self.codec.unpack(data)
        assert got == (src, dst, sprays, seq, tokens)

    @given(st.binary(min_size=12, max_size=12))
    def test_unpack_never_crashes_on_garbage(self, data):
        """Arbitrary 12 bytes either decode or raise ValueError — never
        anything else."""
        try:
            self.codec.unpack(data)
        except ValueError:
            pass


class TestPieoProperties:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 100)),
                    max_size=50))
    def test_extraction_order_sorted_by_rank_then_fifo(self, items):
        q = PieoQueue()
        for i, (rank, _) in enumerate(items):
            q.push((rank, i), rank=rank)
        out = []
        while q:
            out.append(q.extract_head())
        assert out == sorted(out, key=lambda x: (x[0], x[1]))

    @given(st.lists(st.integers(0, 9), max_size=40), st.sets(st.integers(0, 9)))
    def test_extract_first_eligible_semantics(self, values, eligible_set):
        q = PieoQueue()
        for v in values:
            q.push(v)
        got = q.extract_first_eligible(lambda v: v in eligible_set)
        expected = next((v for v in values if v in eligible_set), None)
        assert got == expected
        remaining = list(q)
        if expected is None:
            assert remaining == values
        else:
            copy = list(values)
            copy.remove(expected)
            assert remaining == copy

    @given(st.lists(st.integers(0, 100), max_size=50))
    def test_length_conserved(self, values):
        q = PieoQueue()
        for v in values:
            q.push(v)
        assert len(q) == len(values)
        count = 0
        while q.extract_head() is not None:
            count += 1
        assert count == len(values)


class TestWorkloadProperties:
    @given(st.integers(0, 2**31 - 1))
    def test_short_flow_samples_in_support(self, seed):
        dist = ShortFlowDistribution()
        size = dist.sample(random.Random(seed))
        assert 1 <= size <= 3_000_000

    @given(st.integers(0, 2**31 - 1))
    def test_heavy_tail_samples_in_support(self, seed):
        dist = HeavyTailedDistribution()
        size = dist.sample(random.Random(seed))
        assert 1 <= size <= 1_000_000_000

    @given(st.integers(1, 10**10))
    def test_bucket_of_total_and_monotone(self, size):
        b = bucket_of(size)
        assert 0 <= b <= 8
        assert bucket_of(size + 1) >= b

    @given(st.integers(1, 10**9))
    def test_bytes_to_cells_covers_payload(self, size):
        cells = bytes_to_cells(size)
        assert cells * 244 >= size
        assert (cells - 1) * 244 < size


class TestEngineFastPathEquivalence:
    """The active-set TX fast path must be invisible in simulated behaviour.

    ``Engine._run_tx`` normally visits only the nodes in the active set and
    runs an inlined copy of the common-case TX pipeline; with
    ``force_full_scan`` it scans every node each slot through the reference
    ``Node.transmit``.  The two paths must produce identical delivery events
    and identical event digests for every mechanism and seed.
    """

    @settings(deadline=None, max_examples=10)
    @given(
        st.sampled_from([16, 64]),
        st.sampled_from([1, 2]),
        st.sampled_from(["none", "hop-by-hop", "hbh+spray", "isd"]),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_active_set_matches_full_scan(self, n, h, cc, seed):
        from repro.sim.config import SimConfig
        from repro.sim.engine import Engine
        from repro.workloads.generators import permutation_workload

        def run(full_scan):
            cfg = SimConfig(
                n=n, h=h, duration=10**9, propagation_delay=2,
                congestion_control=cc, seed=seed,
            )
            engine = Engine(cfg, workload=permutation_workload(cfg, 40))
            engine.force_full_scan = full_scan
            digest = engine.enable_digest()
            events = []
            engine.delivery_hook = lambda cell, t: events.append(
                (t, cell.flow_id, cell.seq, cell.src, cell.dst)
            )
            engine.run(duration=400)
            return events, digest.hexdigest(), engine.metrics.cells_sent

        fast_events, fast_digest, fast_sent = run(False)
        ref_events, ref_digest, ref_sent = run(True)
        assert fast_events == ref_events
        assert fast_digest == ref_digest
        assert fast_sent == ref_sent
