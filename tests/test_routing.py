"""Unit tests for Shale's VLB routing scheme."""

import random

import pytest

from repro.core.coordinates import CoordinateSystem
from repro.core.routing import Router, direct_semi_path
from repro.core.schedule import Schedule


@pytest.fixture
def router27():
    return Router(Schedule.for_network(27, 3), rng=random.Random(42))


@pytest.fixture
def router16():
    return Router(Schedule.for_network(16, 2), rng=random.Random(42))


class TestSprayHops:
    def test_spray_options_are_phase_neighbors(self, router16):
        cs = router16.coords
        for phase in range(2):
            assert set(router16.spray_options(5, phase)) == set(
                cs.phase_neighbors(5, phase)
            )

    def test_spray_hop_stays_in_phase(self, router16):
        cs = router16.coords
        for _ in range(50):
            hop = router16.spray_hop(5, 1)
            assert hop in cs.phase_neighbors(5, 1)

    def test_spray_hop_covers_all_options(self, router16):
        seen = {router16.spray_hop(0, 0) for _ in range(200)}
        assert seen == set(router16.spray_options(0, 0))


class TestDirectHops:
    def test_direct_hop_fixes_coordinate(self, router27):
        cs = router27.coords
        src = cs.node_id((0, 1, 2))
        dst = cs.node_id((2, 1, 0))
        hop = router27.direct_hop(src, dst, 0)
        assert cs.coordinate(hop, 0) == 2
        assert cs.coordinate(hop, 1) == 1
        assert cs.coordinate(hop, 2) == 2

    def test_direct_hop_none_when_matching(self, router27):
        cs = router27.coords
        src = cs.node_id((0, 1, 2))
        dst = cs.node_id((2, 1, 0))
        assert router27.direct_hop(src, dst, 1) is None

    def test_next_direct_phase_cycles(self, router27):
        cs = router27.coords
        src = cs.node_id((0, 0, 1))
        dst = cs.node_id((0, 0, 2))
        # only phase 2 mismatches, regardless of the starting phase
        for start in range(3):
            assert router27.next_direct_phase(src, dst, start) == 2

    def test_next_direct_phase_none_at_destination(self, router27):
        assert router27.next_direct_phase(5, 5, 0) is None


class TestFullPaths:
    @pytest.mark.parametrize("start_phase", [0, 1, 2])
    def test_sample_path_reaches_destination(self, router27, start_phase):
        for src in (0, 13):
            for dst in (26, 1):
                if src == dst:
                    continue
                path = router27.sample_path(src, dst, start_phase)
                assert path[0] == src
                assert path[-1] == dst

    def test_sample_path_hop_bound(self, router27):
        for _ in range(100):
            path = router27.sample_path(0, 26)
            assert len(path) - 1 <= router27.max_path_hops()

    def test_sample_path_consecutive_hops_are_neighbors(self, router16):
        cs = router16.coords
        for _ in range(50):
            path = router16.sample_path(0, 15)
            for a, b in zip(path, path[1:]):
                if a != b:
                    assert b in cs.all_neighbors(a)

    def test_self_path_trivial(self, router16):
        assert router16.sample_path(3, 3) == [3]

    def test_path_via_lands_on_intermediate(self, router16):
        cs = router16.coords
        src, mid, dst = 0, 10, 15
        path = router16.path_via(src, mid, dst, start_phase=0)
        # after h hops of the spraying semi-path the cell is at `mid`
        assert path[router16.h] == mid
        assert path[-1] == dst

    def test_spray_randomizes_intermediate(self, router16):
        """VLB property: each spray hop takes one of the r-1 links in its
        phase uniformly, so the intermediate node is uniform over the
        (r-1)^h reachable intermediates (all coordinates changed)."""
        counts = {}
        trials = 4000
        for _ in range(trials):
            path = router16.sample_path(0, 15, start_phase=0)
            mid = path[router16.h]
            counts[mid] = counts.get(mid, 0) + 1
        r, h = router16.r, router16.h
        assert len(counts) == (r - 1) ** h
        # no intermediate shares a coordinate with the source (hops move)
        cs = router16.coords
        for mid in counts:
            for p in range(h):
                assert cs.coordinate(mid, p) != cs.coordinate(0, p)
        expected = trials / len(counts)
        for count in counts.values():
            assert 0.5 * expected < count < 1.6 * expected


class TestDirectSemiPath:
    def test_reaches_destination(self):
        cs = CoordinateSystem(27, 3)
        path = direct_semi_path(cs, 0, 26)
        assert path[0] == 0
        assert path[-1] == 26

    def test_each_hop_fixes_one_coordinate(self):
        cs = CoordinateSystem(27, 3)
        dst = 26
        path = direct_semi_path(cs, 0, dst)
        for a, b in zip(path, path[1:]):
            assert cs.distance(b, dst) == cs.distance(a, dst) - 1

    def test_tree_property(self):
        """Direct semi-paths into one destination form a tree: each node has
        a unique next hop toward the destination (for a fixed phase order)."""
        cs = CoordinateSystem(16, 2)
        dst = 9
        next_hop = {}
        for node in range(16):
            if node == dst:
                continue
            path = direct_semi_path(cs, node, dst, start_phase=0)
            next_hop[node] = path[1]
        # following next hops always terminates at dst (no cycles)
        for node in range(16):
            if node == dst:
                continue
            seen = set()
            cur = node
            while cur != dst:
                assert cur not in seen
                seen.add(cur)
                cur = next_hop[cur]

    def test_length_bounded_by_h(self):
        cs = CoordinateSystem(81, 4)
        for node in (0, 40, 80):
            path = direct_semi_path(cs, node, 80)
            assert len(path) - 1 <= 4
