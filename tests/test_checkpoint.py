"""Checkpoint/resume: bit-exact snapshots of a running simulation.

The contract under test: ``run(0..T)`` and ``run(0..k); snapshot; restore;
run(k..T)`` are indistinguishable — same determinism digest, same metrics,
same flow records — for every congestion-control mechanism, with and
without failures and telemetry.  Plus the file format's self-healing: a
corrupt, truncated or foreign-versioned checkpoint is treated as absent
(start from slot 0), never a crash.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures.manager import FailureEvent, FailureManager
from repro.obs.events import EventLog, RingSink
from repro.obs.timeseries import TimeSeriesRecorder
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointPolicy,
    apply_checkpoint,
    load_checkpoint,
    load_checkpoint_or_none,
    restore_engine,
    save_checkpoint,
    snapshot_engine,
)
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.workloads.generators import permutation_workload

from .test_golden_traces import MECHANISMS, SCENARIOS, run_scenario

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_traces.json"


def _build(cc, params, with_observers=True):
    cfg = SimConfig(
        n=params["n"], h=params["h"], seed=params["seed"],
        duration=params["duration"], propagation_delay=4,
        congestion_control=cc,
        schedule=params.get("schedule", "ebs"),
        routing=params.get("routing", "vlb"),
    )
    manager = None
    if "fail_node" in params:
        manager = FailureManager(events=[
            FailureEvent(params["fail_at"], params["fail_node"], failed=True),
            FailureEvent(params["recover_at"], params["fail_node"],
                         failed=False),
        ])
    workload = permutation_workload(cfg, params["size_cells"])
    engine = Engine(cfg, workload=workload, failure_manager=manager)
    engine.enable_digest()
    if with_observers:
        TimeSeriesRecorder().attach(engine)
        log = EventLog()
        log.add_sink(RingSink())
        log.attach(engine)
        engine.enable_profiler()
    return engine


def _fingerprint(engine):
    fcts = [record.fct for record in engine.flows.completed]
    return {
        "digest": engine.digest.hexdigest(),
        "events": engine.digest.events,
        "delivered": engine.metrics.payload_cells_delivered,
        "dropped": engine.metrics.cells_dropped,
        "fct_sum": sum(fcts),
        "fct_count": len(fcts),
    }


def _run_through_checkpoint(cc, params, k, tmp_path, attach_after=True):
    """run(0..k); snapshot to disk; restore; run(k..T); fingerprint."""
    engine = _build(cc, params)
    engine.run(k)
    path = tmp_path / "mid.ckpt"
    save_checkpoint(engine.snapshot(), path)
    restored = restore_engine(load_checkpoint(path))
    assert restored.t == k
    if attach_after:
        # observers attached post-restore absorb their pending state
        TimeSeriesRecorder().attach(restored)
        log = EventLog()
        log.add_sink(RingSink())
        log.attach(restored)
        restored.enable_profiler()
    restored.run(params["duration"] - k)
    return _fingerprint(restored)


class TestGoldenTracesThroughCheckpoint:
    """Every golden trace must survive a mid-run snapshot/restore cycle."""

    @pytest.mark.parametrize("cc", MECHANISMS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_golden_after_restore(self, cc, scenario, tmp_path):
        params = SCENARIOS[scenario]
        golden = json.loads(GOLDEN_PATH.read_text())[scenario][cc]
        k = params["duration"] // 2
        result = _run_through_checkpoint(cc, params, k, tmp_path)
        assert result == golden, (
            f"{scenario}/{cc}: resumed run diverged from the golden trace"
        )


class TestRoundTripProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        cc=st.sampled_from(MECHANISMS),
        k=st.integers(min_value=1, max_value=499),
        scenario=st.sampled_from(sorted(SCENARIOS)),
    )
    def test_snapshot_at_any_slot_is_bit_exact(self, cc, k, scenario,
                                               tmp_path_factory):
        params = SCENARIOS[scenario]
        k = min(k, params["duration"] - 1)
        straight = run_scenario(cc, params)
        tmp = tmp_path_factory.mktemp("ckpt")
        resumed = _run_through_checkpoint(cc, params, k, tmp)
        assert resumed == straight


class TestObserversAcrossRestore:
    def test_timeseries_and_events_identical(self, tmp_path):
        params = SCENARIOS["n16_seed1"]
        straight = _build("hbh+spray", params, with_observers=False)
        rec1 = TimeSeriesRecorder().attach(straight)
        log1 = EventLog().add_sink(RingSink()).attach(straight)
        straight.run()

        engine = _build("hbh+spray", params, with_observers=False)
        rec2 = TimeSeriesRecorder().attach(engine)
        log2 = EventLog().add_sink(RingSink()).attach(engine)
        engine.run(220)
        path = tmp_path / "mid.ckpt"
        save_checkpoint(engine.snapshot(), path)
        restored = restore_engine(load_checkpoint(path))
        rec3 = TimeSeriesRecorder().attach(restored)
        log3 = EventLog().add_sink(RingSink()).attach(restored)
        restored.run(params["duration"] - 220)

        assert rec3.state_dict() == rec1.state_dict()
        assert log3.state_dict() == log1.state_dict()
        assert restored.digest.value == straight.digest.value

    def test_failure_manager_restored_mid_outage(self, tmp_path):
        """Snapshot taken between failure and recovery keeps the protocol."""
        params = SCENARIOS["n16_nodefail"]
        straight = run_scenario("hbh+spray", params)
        k = (params["fail_at"] + params["recover_at"]) // 2
        resumed = _run_through_checkpoint("hbh+spray", params, k, tmp_path)
        assert resumed == straight


class TestFileFormat:
    def _snapshot(self, tmp_path):
        engine = _build("none", SCENARIOS["n16_seed1"], with_observers=False)
        engine.run(100)
        path = tmp_path / "x.ckpt"
        save_checkpoint(engine.snapshot(), path)
        return engine, path

    def test_round_trip_preserves_t_and_config(self, tmp_path):
        engine, path = self._snapshot(tmp_path)
        chk = load_checkpoint(path)
        assert chk.t == 100
        assert chk.config == engine.config
        assert chk.version == CHECKPOINT_VERSION

    def test_garbage_file_raises_and_self_heals(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
        assert load_checkpoint_or_none(path) is None
        assert not path.exists()  # bad file removed

    def test_truncated_file_self_heals(self, tmp_path):
        _, path = self._snapshot(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert load_checkpoint_or_none(path) is None
        assert not path.exists()

    def test_flipped_byte_fails_integrity(self, tmp_path):
        _, path = self._snapshot(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint_or_none(tmp_path / "absent.ckpt") is None

    def test_config_mismatch_rejected(self, tmp_path):
        _, path = self._snapshot(tmp_path)
        chk = load_checkpoint(path)
        other = Engine(SimConfig(n=16, h=2, seed=2, duration=500,
                                 propagation_delay=4))
        with pytest.raises(CheckpointError, match="configuration"):
            apply_checkpoint(other, chk)

    def test_foreign_version_self_heals(self, tmp_path, monkeypatch):
        engine, _ = self._snapshot(tmp_path)
        import repro.sim.checkpoint as ckpt_mod

        chk = snapshot_engine(engine)
        monkeypatch.setattr(ckpt_mod, "CHECKPOINT_VERSION", 999)
        path = tmp_path / "future.ckpt"
        chk.version = 999
        save_checkpoint(chk, path)
        monkeypatch.undo()
        # a file written by a future format version reads as "no checkpoint"
        assert load_checkpoint_or_none(path) is None
        assert not path.exists()


class TestCellScope:
    def test_corrupt_checkpoint_starts_from_zero(self, tmp_path):
        policy = CheckpointPolicy(tmp_path, every=100)
        key = "deadbeef"
        (tmp_path / f"{key}-00.ckpt").write_bytes(b"garbage")
        with policy.cell_scope(key) as scope:
            engine = _build("none", SCENARIOS["n16_seed1"],
                            with_observers=False)
            engine.run()
        assert scope.resumed == []  # fresh start, no crash
        assert engine.t == SCENARIOS["n16_seed1"]["duration"]

    def test_resume_matches_uninterrupted(self, tmp_path):
        params = SCENARIOS["n16_seed1"]
        straight = run_scenario("hbh+spray", params)
        policy = CheckpointPolicy(tmp_path, every=100)
        key = "cafef00d"

        class Boom(Exception):
            pass

        with policy.cell_scope(key):
            # no profiler: run() must dispatch through the patched step
            engine = _build("hbh+spray", params, with_observers=False)
            real_step = engine.step
            def step():
                if engine.t >= 350:
                    raise Boom()
                real_step()
            engine.step = step
            with pytest.raises(Boom):
                engine.run()
        assert list(tmp_path.glob(f"{key}-*.ckpt"))

        with policy.cell_scope(key) as scope:
            resumed = _build("hbh+spray", params)
            resumed.run()
        assert scope.resumed and scope.resume_slot == 300
        assert _fingerprint(resumed) == straight

        # clean completion discards the snapshots
        with policy.cell_scope(key) as scope:
            engine = _build("hbh+spray", params)
            engine.run()
            scope.discard()
        assert not list(tmp_path.glob(f"{key}-*.ckpt"))


class TestApiFacade:
    def test_simulate_checkpoint_resume(self, tmp_path):
        from repro.api import simulate
        from repro.workloads import ShortFlowDistribution, poisson_workload

        cfg = SimConfig(n=16, h=2, duration=4000,
                        congestion_control="hbh+spray")
        wl = poisson_workload(cfg, ShortFlowDistribution(), load=0.2)
        clean = simulate(cfg, wl, drain=True, digest=True)

        path = tmp_path / "run.ckpt"
        engine = Engine(cfg, workload=list(wl))
        engine.enable_digest()
        engine.enable_checkpoints(path, 500)
        engine.run(2750)  # "interrupted" partway: checkpoint stays on disk
        assert path.exists()

        resumed = simulate(cfg, wl, drain=True, digest=True, checkpoint=path)
        assert resumed.resumed_from == 2500
        assert resumed.digest == clean.digest
        assert not path.exists()  # clean completion removes the file
