"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed outright so
a refactor that breaks an example fails CI rather than a user's first run.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: examples cheap enough to execute inside the test suite
FAST_EXAMPLES = ["schedule_gallery.py"]


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_examples_have_docstrings_and_main():
    for path in ALL_EXAMPLES:
        source = path.read_text()
        assert source.lstrip().startswith(("#!", '"""')), path.name
        assert '__name__ == "__main__"' in source, path.name
