"""Unit tests for the coordinate system."""

import pytest

from repro.core.coordinates import (
    CoordinateSystem,
    integer_root,
    is_perfect_power,
)


class TestIntegerRoot:
    def test_exact_square(self):
        assert integer_root(81, 2) == 9

    def test_exact_cube(self):
        assert integer_root(27, 3) == 3

    def test_h_one_returns_n(self):
        assert integer_root(17, 1) == 17

    def test_large_power(self):
        assert integer_root(10**12, 4) == 1000

    def test_non_power_raises(self):
        with pytest.raises(ValueError):
            integer_root(80, 2)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            integer_root(0, 2)

    def test_negative_h_raises(self):
        with pytest.raises(ValueError):
            integer_root(8, -1)

    def test_is_perfect_power(self):
        assert is_perfect_power(64, 3)
        assert not is_perfect_power(65, 3)


class TestConstruction:
    def test_basic(self):
        cs = CoordinateSystem(81, 2)
        assert cs.r == 9
        assert cs.n == 81
        assert cs.h == 2

    def test_h1_is_srrd(self):
        cs = CoordinateSystem(10, 1)
        assert cs.r == 10

    def test_radix_one_rejected(self):
        # 1**h == 1 node: meaningless network
        with pytest.raises(ValueError):
            CoordinateSystem(1, 2)

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            CoordinateSystem(10, 2)

    def test_equality_and_hash(self):
        assert CoordinateSystem(16, 2) == CoordinateSystem(16, 2)
        assert CoordinateSystem(16, 2) != CoordinateSystem(16, 4)
        assert hash(CoordinateSystem(16, 2)) == hash(CoordinateSystem(16, 2))


class TestConversions:
    def test_roundtrip_all_nodes(self):
        cs = CoordinateSystem(27, 3)
        for node in cs.nodes():
            assert cs.node_id(cs.coords(node)) == node

    def test_coords_match_base_r_digits(self):
        cs = CoordinateSystem(27, 3)
        # node 14 = 1*9 + 1*3 + 2 in base 3: digits (1, 1, 2)
        assert cs.coords(14) == (1, 1, 2)

    def test_single_coordinate_matches_tuple(self):
        cs = CoordinateSystem(64, 3)
        for node in (0, 17, 42, 63):
            full = cs.coords(node)
            for p in range(3):
                assert cs.coordinate(node, p) == full[p]

    def test_with_coordinate(self):
        cs = CoordinateSystem(16, 2)
        node = cs.node_id((1, 2))
        moved = cs.with_coordinate(node, 0, 3)
        assert cs.coords(moved) == (3, 2)

    def test_with_coordinate_identity(self):
        cs = CoordinateSystem(16, 2)
        node = cs.node_id((2, 3))
        assert cs.with_coordinate(node, 1, 3) == node

    def test_out_of_range_node(self):
        cs = CoordinateSystem(16, 2)
        with pytest.raises(ValueError):
            cs.coords(16)
        with pytest.raises(ValueError):
            cs.coords(-1)

    def test_bad_coordinate_value(self):
        cs = CoordinateSystem(16, 2)
        with pytest.raises(ValueError):
            cs.node_id((4, 0))
        with pytest.raises(ValueError):
            cs.with_coordinate(0, 0, 4)

    def test_wrong_arity(self):
        cs = CoordinateSystem(16, 2)
        with pytest.raises(ValueError):
            cs.node_id((1, 2, 3))


class TestNeighborhood:
    def test_phase_neighbors_count(self):
        cs = CoordinateSystem(81, 2)
        for p in range(2):
            assert len(cs.phase_neighbors(40, p)) == 8

    def test_phase_neighbors_differ_only_in_p(self):
        cs = CoordinateSystem(27, 3)
        node = 13
        for p in range(3):
            for nb in cs.phase_neighbors(node, p):
                diff = [
                    q for q in range(3)
                    if cs.coordinate(node, q) != cs.coordinate(nb, q)
                ]
                assert diff == [p]

    def test_phase_group_includes_self(self):
        cs = CoordinateSystem(16, 2)
        group = cs.phase_group(5, 0)
        assert 5 in group
        assert len(group) == 4

    def test_all_neighbors_count(self):
        cs = CoordinateSystem(16, 2)
        assert len(cs.all_neighbors(0)) == 2 * 3

    def test_all_neighbors_distinct(self):
        cs = CoordinateSystem(64, 2)
        nbs = cs.all_neighbors(10)
        assert len(set(nbs)) == len(nbs)

    def test_neighbor_at_offset_wraps(self):
        cs = CoordinateSystem(16, 2)
        node = cs.node_id((3, 0))
        nb = cs.neighbor_at_offset(node, 0, 1)
        assert cs.coords(nb) == (0, 0)

    def test_neighbor_offset_roundtrip(self):
        cs = CoordinateSystem(16, 2)
        for p in range(2):
            for k in range(1, 4):
                nb = cs.neighbor_at_offset(6, p, k)
                assert cs.offset_to(6, p, nb) == k

    def test_offset_zero_rejected(self):
        cs = CoordinateSystem(16, 2)
        with pytest.raises(ValueError):
            cs.neighbor_at_offset(0, 0, 0)

    def test_offset_to_non_neighbor_raises(self):
        cs = CoordinateSystem(16, 2)
        # node differing in both coordinates is not a phase neighbour
        a = cs.node_id((0, 0))
        b = cs.node_id((1, 1))
        with pytest.raises(ValueError):
            cs.offset_to(a, 0, b)

    def test_neighborhood_is_symmetric(self):
        cs = CoordinateSystem(27, 3)
        for node in (0, 13, 26):
            for nb in cs.all_neighbors(node):
                assert node in cs.all_neighbors(nb)


class TestDistance:
    def test_distance_zero_to_self(self):
        cs = CoordinateSystem(16, 2)
        assert cs.distance(7, 7) == 0

    def test_distance_counts_mismatches(self):
        cs = CoordinateSystem(27, 3)
        a = cs.node_id((0, 1, 2))
        b = cs.node_id((0, 2, 1))
        assert cs.distance(a, b) == 2
        assert cs.mismatched_phases(a, b) == [1, 2]

    def test_max_distance_is_h(self):
        cs = CoordinateSystem(16, 4)
        a = cs.node_id((0, 0, 0, 0))
        b = cs.node_id((1, 1, 1, 1))
        assert cs.distance(a, b) == 4


class TestLabels:
    def test_paper_style_labels(self):
        cs = CoordinateSystem(9, 2)
        assert cs.label(0) == "AA"
        assert cs.label(8) == "CC"

    def test_numeric_fallback_for_large_radix(self):
        cs = CoordinateSystem(30, 1)
        assert cs.label(29) == "29"
