"""Tests for the hardware models: memory scaling, prototype, resources."""

import pytest

from repro.hardware.memory_model import (
    ShaleMemoryModel,
    shoal_on_chip_bytes,
)
from repro.hardware.prototype import (
    HardwareNetwork,
    HardwareNode,
    HardwareTimings,
)
from repro.hardware.resources import (
    ResourceObservation,
    observe_resources,
    provision_memory,
)
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.workloads.generators import permutation_workload


class TestShaleMemoryModel:
    def make(self, n=10_000, h=2, a=600, qp=50, qt=16):
        return ShaleMemoryModel(
            n=n, h=h, active_buckets=a, pieo_depth=qp, token_queue_depth=qt
        )

    def test_radix_rounds_up_for_non_powers(self):
        model = self.make(n=10_000, h=2)
        assert model.radix == 100
        model = self.make(n=10_001, h=2)
        assert model.radix == 101

    def test_neighbors(self):
        assert self.make(n=10_000, h=2).neighbors == 2 * 99

    def test_on_chip_components_sum(self):
        model = self.make()
        assert model.on_chip_bytes() == (
            model.pieo_bytes()
            + model.token_queue_bytes()
            + model.token_count_bytes()
            + model.bucket_map_bytes()
            + model.freelist_bytes()
        )

    def test_h4_leaner_than_h2(self):
        """Fig. 7: h=4 needs less on-chip memory than h=2 at equal N."""
        h2 = ShaleMemoryModel(10_000, 2, 1200, 100, 16)
        h4 = ShaleMemoryModel(10_000, 4, 250, 150, 16)
        assert h4.on_chip_bytes() < h2.on_chip_bytes()

    def test_dram_formula(self):
        model = self.make()
        assert model.dram_cells() == 2 * 600 * model.neighbors

    def test_optimizations_reduce_memory(self):
        """Section 4.2: each optimization strictly shrinks cell storage."""
        model = self.make(n=2_401, h=4, a=100)
        naive = model.naive_dram_cells()
        first = model.first_optimization_dram_cells()
        final = model.dram_cells()
        assert naive > first > final

    def test_on_chip_magnitude_matches_paper(self):
        """Fig. 7: Shale h=2 at N=10,000 sits around a megabyte."""
        model = ShaleMemoryModel(10_000, 2, 1200, 100, 16)
        assert 100_000 < model.on_chip_bytes() < 5_000_000


class TestShoalModel:
    def test_quadratic_scaling(self):
        small = shoal_on_chip_bytes(5_000)
        large = shoal_on_chip_bytes(25_000)
        assert large / small == pytest.approx(25, rel=0.15)

    def test_gigabytes_at_datacenter_scale(self):
        assert shoal_on_chip_bytes(25_000) > 1 << 30  # > 1 GB

    def test_orders_of_magnitude_vs_shale(self):
        """The Fig. 7 headline gap."""
        shale = ShaleMemoryModel(25_000, 4, 250, 150, 16).on_chip_bytes()
        assert shoal_on_chip_bytes(25_000) > 1000 * shale

    def test_validation(self):
        with pytest.raises(ValueError):
            shoal_on_chip_bytes(1)


class TestHardwareTimings:
    def test_defaults_match_paper(self):
        t = HardwareTimings()
        assert t.cycle_ns == pytest.approx(6.4)
        assert t.slot_ns == pytest.approx(435.2)
        assert t.available_gbps == pytest.approx(9.412, rel=1e-3)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            HardwareTimings(cycles_per_slot=5, tx_cycles=7, rx_cycles=2)


class TestHardwarePrototype:
    def test_permutation_throughput_above_guarantee(self):
        net = HardwareNetwork(16, 2, seed=3)
        for node in net.nodes:
            node.add_local_cells((node.node_id + 5) % 16, 6000, 0)
        net.run(6000)
        assert net.throughput_gbps() >= net.timings.available_gbps / 4 * 0.95

    def test_pipelines_fit_cycle_budget(self):
        net = HardwareNetwork(16, 2, seed=3)
        for node in net.nodes:
            node.add_local_cells((node.node_id + 3) % 16, 500, 0)
        net.run(2000)
        assert net.timing_ok()
        assert all(n.cycles_used_tx <= 7 for n in net.nodes)
        assert all(n.cycles_used_rx <= 3 for n in net.nodes)

    def test_delivery_conservation(self):
        net = HardwareNetwork(16, 2, seed=3)
        net.nodes[0].add_local_cells(9, 50, 0)
        net.run(3000)
        assert net.nodes[9].cells_delivered == 50

    def test_h4_works(self):
        net = HardwareNetwork(16, 4, seed=3)
        net.nodes[0].add_local_cells(15, 20, 0)
        net.run(3000)
        assert net.nodes[15].cells_delivered == 20

    def test_active_bucket_exhaustion_raises(self):
        net = HardwareNetwork(16, 2, active_bucket_slots=1, seed=3)
        for node in net.nodes:
            node.add_local_cells((node.node_id + 1) % 16, 100, 0)
        with pytest.raises(OverflowError):
            net.run(2000)

    def test_propagation_delay_slows_tokens(self):
        fast = HardwareNetwork(16, 2, propagation_delay=0, seed=3)
        slow = HardwareNetwork(16, 2, propagation_delay=30, seed=3)
        for net in (fast, slow):
            for node in net.nodes:
                node.add_local_cells((node.node_id + 5) % 16, 4000, 0)
            net.run(4000)
        assert slow.delivered < fast.delivered


class TestResources:
    def run_engine(self):
        cfg = SimConfig(
            n=16, h=2, duration=3000, propagation_delay=2,
            congestion_control="hbh+spray", seed=3,
        )
        engine = Engine(cfg, workload=permutation_workload(cfg, 500))
        engine.run()
        return engine

    def test_observation_fields(self):
        obs = observe_resources(self.run_engine())
        assert obs.n == 16
        assert obs.h == 2
        assert obs.max_active_buckets > 0
        assert obs.max_pieo_length > 0

    def test_provisioning_doubles(self):
        obs = ResourceObservation(16, 2, 10, 20, 30)
        model = provision_memory(obs, headroom=2.0)
        assert model.active_buckets == 20
        assert model.pieo_depth == 40

    def test_headroom_validation(self):
        obs = ResourceObservation(16, 2, 10, 20, 30)
        with pytest.raises(ValueError):
            provision_memory(obs, headroom=0.5)

    def test_observation_without_hbh(self):
        cfg = SimConfig(
            n=16, h=2, duration=1000, propagation_delay=2,
            congestion_control="none", seed=3,
        )
        engine = Engine(cfg, workload=permutation_workload(cfg, 100))
        engine.run()
        obs = observe_resources(engine)
        assert obs.max_active_buckets == 0  # no bucket tracking without HBH
