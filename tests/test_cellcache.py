"""Tests for the content-addressed sweep cell cache.

Unit level: hit/miss accounting, key sensitivity (kwargs, config defaults,
schema version, code fingerprint, telemetry flag), corrupt-entry recovery
and atomic writes.  System level: the golden-trace scenarios run through a
cached sweep must be byte-identical between the cold (computed) and warm
(restored) pass — proving the cache is a pure observer.
"""

import os
import pickle

import pytest

from repro.sim import cellcache
from repro.sim.cellcache import MISS, CellCache, code_fingerprint
from repro.sim.parallel import sweep, sweep_cells


def plain_cell(x, y=1):
    return {"sum": x + y}


def golden_cell(cc, scenario):
    """One golden-trace scenario as a sweep cell (see test_golden_traces)."""
    from tests.test_golden_traces import SCENARIOS, run_scenario

    return run_scenario(cc, SCENARIOS[scenario])


class TestKeys:
    def test_key_is_stable(self, tmp_path):
        cache = CellCache(tmp_path)
        a = cache.key_for(plain_cell, {"x": 1})
        b = cache.key_for(plain_cell, {"x": 1})
        assert a == b and len(a) == 64

    def test_key_covers_kwargs(self, tmp_path):
        cache = CellCache(tmp_path)
        assert (cache.key_for(plain_cell, {"x": 1})
                != cache.key_for(plain_cell, {"x": 2}))

    def test_key_covers_function(self, tmp_path):
        cache = CellCache(tmp_path)
        assert (cache.key_for(plain_cell, {"x": 1})
                != cache.key_for(golden_cell, {"x": 1}))

    def test_key_covers_telemetry_flag(self, tmp_path):
        """Entries recorded without telemetry must not satisfy an
        instrumented run (the cached value would lack the shipped bundle)."""
        cache = CellCache(tmp_path)
        assert (cache.key_for(plain_cell, {"x": 1}, telemetry=False)
                != cache.key_for(plain_cell, {"x": 1}, telemetry=True))

    def test_key_covers_schema_version(self, tmp_path, monkeypatch):
        cache = CellCache(tmp_path)
        before = cache.key_for(plain_cell, {"x": 1})
        monkeypatch.setattr(cellcache, "SCHEMA", cellcache.SCHEMA + 1)
        assert cache.key_for(plain_cell, {"x": 1}) != before

    def test_key_covers_code_fingerprint(self, tmp_path, monkeypatch):
        cache = CellCache(tmp_path)
        before = cache.key_for(plain_cell, {"x": 1})
        monkeypatch.setattr(cellcache, "_fingerprint", "deadbeefdeadbeef")
        assert cache.key_for(plain_cell, {"x": 1}) != before

    def test_key_covers_config_defaults(self, tmp_path):
        """Cell kwargs overriding SimConfig fields change the resolved
        config part of the key even though the kwargs part would too; a
        kwarg that matches no config field still changes the key."""
        cache = CellCache(tmp_path)
        keys = {
            cache.key_for(plain_cell, {"n": 16}),
            cache.key_for(plain_cell, {"n": 64}),
            cache.key_for(plain_cell, {"unrelated": 3}),
            cache.key_for(plain_cell, {}),
        }
        assert len(keys) == 4

    def test_code_fingerprint_memoized(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestHitMiss:
    def test_roundtrip(self, tmp_path):
        cache = CellCache(tmp_path)
        key = cache.key_for(plain_cell, {"x": 1})
        assert cache.get(key) is MISS
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.stats() == {"hits": 1, "misses": 1, "writes": 1}

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        key = cache.key_for(plain_cell, {"x": 1})
        cache.put(key, None)
        assert cache.get(key) is None
        assert cache.hits == 1

    def test_version_bump_invalidates_stored_entry(self, tmp_path,
                                                   monkeypatch):
        """An entry written under an older schema is a miss and is removed."""
        cache = CellCache(tmp_path)
        key = cache.key_for(plain_cell, {"x": 1})
        cache.put(key, {"answer": 42})
        monkeypatch.setattr(cellcache, "SCHEMA", cellcache.SCHEMA + 1)
        assert cache.get(key) is MISS
        assert not cache._path(key).exists()

    def test_corrupt_entry_recovers(self, tmp_path):
        cache = CellCache(tmp_path)
        key = cache.key_for(plain_cell, {"x": 1})
        cache._path(key).write_bytes(b"this is not a pickle")
        assert cache.get(key) is MISS
        assert not cache._path(key).exists()
        # and the slot is immediately writable again
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}

    def test_truncated_entry_recovers(self, tmp_path):
        """A simulated torn write (partial pickle) is a miss, not a crash."""
        cache = CellCache(tmp_path)
        key = cache.key_for(plain_cell, {"x": 1})
        cache.put(key, {"answer": list(range(1000))})
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get(key) is MISS
        assert not path.exists()

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """An entry stored under a foreign key (e.g. a renamed file) never
        satisfies a lookup — the key inside the entry must match."""
        cache = CellCache(tmp_path)
        key_a = cache.key_for(plain_cell, {"x": 1})
        key_b = cache.key_for(plain_cell, {"x": 2})
        cache.put(key_a, {"answer": 42})
        os.replace(cache._path(key_a), cache._path(key_b))
        assert cache.get(key_b) is MISS

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        cache = CellCache(tmp_path)
        for x in range(5):
            cache.put(cache.key_for(plain_cell, {"x": x}), x)
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []
        assert len(list(tmp_path.glob("*.pkl"))) == 5

    def test_failed_write_cleans_its_tmp_file(self, tmp_path):
        cache = CellCache(tmp_path)
        key = cache.key_for(plain_cell, {"x": 1})
        with pytest.raises(Exception):
            cache.put(key, lambda: None)  # unpicklable
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get(key) is MISS


class TestDefaultCache:
    def test_install_and_restore(self, tmp_path):
        cache = CellCache(tmp_path)
        previous = cellcache.set_default_cache(cache)
        try:
            assert cellcache.default_cache() is cache
            # sweep picks the ambient default up with no explicit cache=
            assert sweep(plain_cell, [{"x": 1}], workers=1) == [{"sum": 2}]
            assert cache.writes == 1
            assert sweep(plain_cell, [{"x": 1}], workers=1) == [{"sum": 2}]
            assert cache.hits == 1
        finally:
            cellcache.set_default_cache(previous)

    def test_directory_path_accepted(self, tmp_path):
        out = sweep(plain_cell, [{"x": 3}], workers=1,
                    cache=tmp_path / "cells")
        assert out == [{"sum": 4}]
        assert list((tmp_path / "cells").glob("*.pkl"))


class TestSweepIntegration:
    def test_warm_sweep_marks_cached(self, tmp_path):
        cache = CellCache(tmp_path)
        grid = [{"x": i} for i in range(3)]
        cold = sweep_cells(plain_cell, grid, workers=1, cache=cache)
        warm = sweep_cells(plain_cell, grid, workers=1, cache=cache)
        assert not any(o.cached for o in cold)
        assert all(o.cached for o in warm)
        assert [o.value for o in warm] == [o.value for o in cold]
        assert cache.stats() == {"hits": 3, "misses": 3, "writes": 3}

    def test_parallel_cold_then_warm(self, tmp_path):
        cache = CellCache(tmp_path)
        grid = [{"x": i} for i in range(4)]
        cold = sweep(plain_cell, grid, workers=2, cache=cache)
        warm = sweep(plain_cell, grid, workers=2, cache=cache)
        assert warm == cold == [{"sum": i + 1} for i in range(4)]
        # the pool writes happen in the parent after reassembly, so the
        # warm pass must hit every cell
        assert cache.hits == 4

    def test_golden_traces_through_cache_byte_identical(self, tmp_path):
        """Cold (computed) and warm (restored) golden cells are
        byte-identical — pickle-level, not just equal — and match the
        recorded goldens, proving the cache is a pure observer."""
        from tests.test_golden_traces import _load_goldens

        cache = CellCache(tmp_path)
        grid = [
            {"cc": "none", "scenario": "n16_seed1"},
            {"cc": "hbh+spray", "scenario": "n16_seed1"},
        ]
        cold = sweep_cells(golden_cell, grid, workers=1, cache=cache)
        warm = sweep_cells(golden_cell, grid, workers=1, cache=cache)
        goldens = _load_goldens()
        for cell, outcome in zip(grid, cold):
            assert outcome.value == goldens[cell["scenario"]][cell["cc"]]
        for a, b in zip(cold, warm):
            assert pickle.dumps(a.value) == pickle.dumps(b.value)
            assert a.digests == b.digests
        assert all(o.cached for o in warm)
        assert not any(o.cached for o in cold)
