"""Unit tests for the end-host Node: TX/RX pipelines in isolation."""

import pytest

from repro.core.cell import Cell
from repro.core.header import TOKEN_REGULAR, Token
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.node import ControlMessage, Transmission


def make_engine(cc="none", n=16, h=2, **kw):
    cfg = SimConfig(
        n=n, h=h, duration=1000, propagation_delay=2,
        congestion_control=cc, seed=2, **kw
    )
    return Engine(cfg)


def fresh_cell(engine, src, dst, sprays=None):
    cell = Cell(src, dst, flow_id=0, seq=0,
                sprays_remaining=engine.coords.h - 1 if sprays is None else sprays)
    cell.prev_hop = src
    cell.hops = 1
    return cell


class TestLinkIndexing:
    def test_link_index_layout(self):
        engine = make_engine()
        node = engine.nodes[0]
        assert node.link_index(0, 1) == 0
        assert node.link_index(0, 3) == 2
        assert node.link_index(1, 1) == 3

    def test_neighbor_table_matches_coords(self):
        engine = make_engine()
        node = engine.nodes[5]
        for p in range(2):
            for k in range(1, 4):
                assert node.neighbors[p][k - 1] == \
                    engine.coords.neighbor_at_offset(5, p, k)

    def test_idle_flag(self):
        engine = make_engine()
        node = engine.nodes[0]
        assert node.idle
        cell = fresh_cell(engine, 1, 9)
        node.enqueue_forward(cell, t=0, arrival_phase=0)
        assert not node.idle


class TestRxPath:
    def test_delivery_updates_flow_table(self):
        engine = make_engine()
        flow = engine.flows.new_flow(1, 0, size_cells=1, arrival=0)
        node = engine.nodes[0]
        cell = fresh_cell(engine, 1, 0)
        cell.flow_id = flow.flow_id
        node.receive(Transmission(1, 0, cell), t=5, phase=0)
        assert len(engine.flows.completed) == 1
        assert engine.metrics.cells_delivered == 1

    def test_dummy_cells_not_forwarded(self):
        engine = make_engine()
        node = engine.nodes[0]
        dummy = Cell.make_dummy(1, 0)
        node.receive(Transmission(1, 0, dummy), t=0, phase=0)
        assert node.total_enqueued == 0

    def test_forwarded_cell_enqueued_on_spray_link(self):
        engine = make_engine()
        node = engine.nodes[0]
        cell = fresh_cell(engine, 1, 9, sprays=1)
        node.enqueue_forward(cell, t=0, arrival_phase=0)
        # spray must land on a phase-1 link
        phase1_links = range(node.link_index(1, 1), node.link_index(1, 3) + 1)
        occupied = [i for i, q in enumerate(node.link_queues) if len(q)]
        assert occupied and all(i in phase1_links for i in occupied)

    def test_direct_cell_enqueued_on_correct_link(self):
        engine = make_engine()
        cs = engine.coords
        node_id = cs.node_id((0, 0))
        dst = cs.node_id((0, 3))  # differs only in coordinate 1
        node = engine.nodes[node_id]
        cell = fresh_cell(engine, 1, dst, sprays=0)
        node.enqueue_forward(cell, t=0, arrival_phase=0)
        link = node.link_index(1, 3)  # phase 1, offset 3
        assert len(node.link_queues[link]) == 1

    def test_tokens_in_header_credit_ledger(self):
        engine = make_engine(cc="hop-by-hop")
        node = engine.nodes[0]
        node.ledger.charge(1, (9, 1))
        assert not node.ledger.can_send(1, (9, 1))
        dummy = Cell.make_dummy(1, 0)
        node.receive(
            Transmission(1, 0, dummy, tokens=(Token(9, 1, TOKEN_REGULAR),)),
            t=0, phase=0,
        )
        assert node.ledger.can_send(1, (9, 1))


class TestTxPath:
    def test_nothing_to_send_returns_none(self):
        engine = make_engine()
        assert engine.nodes[0].transmit(0, 0, 1) is None

    def test_local_flow_emits_first_hop(self):
        engine = make_engine()
        flow = engine.flows.new_flow(0, 9, size_cells=3, arrival=0)
        node = engine.nodes[0]
        node.add_flow(flow)
        tx = node.transmit(0, 0, 1)
        assert tx is not None
        assert tx.cell.dst == 9
        assert tx.cell.sprays_remaining == engine.coords.h - 1
        assert tx.receiver == node.neighbors[0][0]
        assert flow.sent == 1

    def test_forwarded_cells_take_priority_over_local(self):
        engine = make_engine()
        node = engine.nodes[0]
        flow = engine.flows.new_flow(0, 9, size_cells=3, arrival=0)
        node.add_flow(flow)
        forwarded = fresh_cell(engine, 1, 9, sprays=1)
        node.enqueue_forward(forwarded, t=0, arrival_phase=0)
        # find the link the forwarded cell is on and transmit there
        link = next(i for i, q in enumerate(node.link_queues) if len(q))
        phase, offset = divmod(link, engine.coords.r - 1)
        tx = node.transmit(0, phase, offset + 1)
        assert tx.cell is forwarded
        assert flow.sent == 0

    def test_token_return_rides_dummy(self):
        engine = make_engine(cc="hop-by-hop")
        node = engine.nodes[0]
        neighbor = node.neighbors[0][0]
        node._queue_token(neighbor, Token(9, 0, TOKEN_REGULAR))
        tx = node.transmit(0, 0, 1)
        assert tx is not None
        assert tx.cell.dummy
        assert len(tx.tokens) == 1
        assert node.pending_tokens == 0

    def test_tokens_capped_per_header(self):
        engine = make_engine(cc="hop-by-hop", tokens_per_header=2)
        node = engine.nodes[0]
        neighbor = node.neighbors[0][0]
        for i in range(5):
            node._queue_token(neighbor, Token(i + 1, 0, TOKEN_REGULAR))
        tx = node.transmit(0, 0, 1)
        assert len(tx.tokens) == 2
        assert node.pending_tokens == 3

    def test_finished_flow_pruned(self):
        engine = make_engine()
        flow = engine.flows.new_flow(0, 9, size_cells=1, arrival=0)
        node = engine.nodes[0]
        node.add_flow(flow)
        node.transmit(0, 0, 1)
        assert flow.done_sending
        assert flow not in node.local_flows

    def test_hbh_first_hop_requires_credit(self):
        engine = make_engine(cc="hop-by-hop", first_hop_token_budget=1)
        node = engine.nodes[0]
        flow = engine.flows.new_flow(0, 9, size_cells=10, arrival=0)
        node.add_flow(flow)
        neighbor = node.neighbors[0][0]
        # exhaust the first-hop budget toward this neighbour
        node.ledger.charge(neighbor, (9, 1), first_hop=True)
        tx = node.transmit(0, 0, 1)
        assert tx is None or tx.cell.dummy
        assert flow.sent == 0

    def test_hbh_forward_generates_upstream_token(self):
        engine = make_engine(cc="hop-by-hop")
        node = engine.nodes[0]
        cell = fresh_cell(engine, 1, 9, sprays=1)
        node.receive(Transmission(1, 0, cell), t=0, phase=0)
        link = next(i for i, q in enumerate(node.link_queues) if len(q))
        phase, offset = divmod(link, engine.coords.r - 1)
        tx = node.transmit(1, phase, offset + 1)
        assert tx.cell is cell
        assert cell.sprays_remaining == 0  # decremented on the spray hop
        assert cell.prev_hop == 0
        # the upstream token is either awaiting the next slot to node 1 or —
        # when the spray hop itself went to node 1 — already on this wire
        queued = list(node.token_return.get(1, ()))
        on_wire = list(tx.tokens) if tx.receiver == 1 else []
        tokens = queued + on_wire
        assert tokens and tokens[0].bucket() == (9, 1)

    def test_final_hop_needs_no_token(self):
        engine = make_engine(cc="hop-by-hop")
        cs = engine.coords
        dst = 9
        # pick a node one hop from dst
        penultimate = cs.phase_neighbors(dst, 0)[0]
        node = engine.nodes[penultimate]
        cell = fresh_cell(engine, 1, dst, sprays=0)
        node.enqueue_forward(cell, t=0, arrival_phase=1)
        link = next(i for i, q in enumerate(node.link_queues) if len(q))
        phase, offset = divmod(link, cs.r - 1)
        # no credit pre-charged anywhere; final hops are always eligible
        tx = node.transmit(0, phase, offset + 1)
        assert tx.cell is cell
        assert tx.receiver == dst


class TestControlMessages:
    def test_ctrl_routed_to_destination(self):
        engine = make_engine(cc="rd")
        flow = engine.flows.new_flow(12, 3, size_cells=5, arrival=0)
        # hand-route a PULL from the receiver (3) to the sender (12)
        node = engine.nodes[3]
        node._send_ctrl(ControlMessage("pull", flow.flow_id, 3, 12), t=0)
        assert node.pending_ctrl == 1
        # run the engine; the ctrl message must eventually be consumed
        engine.run(800)
        assert flow.credit >= engine.config.pull_batch

    def test_trim_triggers_rtx_request(self):
        engine = make_engine(cc="ndp")
        node = engine.nodes[0]
        msg = ControlMessage("trim", 3, src=5, dst=0, seq=9)
        node._consume_ctrl(msg, t=0)
        # the receiver responds by asking the sender (node 5) to resend
        assert node.pending_ctrl == 1

    def test_rtx_request_enqueues_retransmission(self):
        engine = make_engine(cc="ndp")
        node = engine.nodes[5]
        node._consume_ctrl(ControlMessage("rtx", 3, src=0, dst=5, seq=9), t=0)
        assert list(node.rtx_queue) == [(3, 0, 9)]
