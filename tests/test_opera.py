"""Tests for the Opera baseline model."""

import pytest

from repro.baselines.opera import OperaConfig, OperaSimulator, RotorTopology


class TestRotorTopology:
    def test_validation(self):
        with pytest.raises(ValueError):
            RotorTopology(2, 1)
        with pytest.raises(ValueError):
            RotorTopology(10, 0)
        with pytest.raises(ValueError):
            RotorTopology(10, 10)

    def test_offsets_in_range(self):
        topo = RotorTopology(20, 4)
        for period in range(40):
            for offset in topo.live_offsets(period):
                assert 1 <= offset <= 19

    def test_each_rotor_cycles_all_offsets(self):
        topo = RotorTopology(12, 2)
        seen = {topo.offset(0, k) for k in range(11)}
        assert seen == set(range(1, 12))

    def test_neighbors_count(self):
        topo = RotorTopology(20, 4)
        assert len(topo.neighbors(3, 0)) == 4

    def test_connected_matches_offsets(self):
        topo = RotorTopology(20, 4)
        for period in (0, 5, 17):
            for node in (0, 7):
                for nb in topo.neighbors(node, period):
                    assert topo.connected(node, nb, period) is not None
                assert topo.connected(node, (node + 10) % 20, period) in (
                    None, *range(4)
                )

    def test_next_direct_period_found_within_cycle(self):
        topo = RotorTopology(20, 4)
        for dst in (1, 9, 19):
            period = topo.next_direct_period(0, dst, after=0)
            assert topo.connected(0, dst, period) is not None
            assert period <= 20

    def test_path_length_short_in_expander(self):
        """With several live matchings, most pairs are a few hops apart."""
        topo = RotorTopology(64, 8)
        lengths = [
            topo.path_length(0, dst, period=0) for dst in range(1, 64)
        ]
        assert all(l is not None for l in lengths)
        assert max(lengths) <= 10
        # the typical pair is still just a few hops away
        assert sum(lengths) / len(lengths) <= 5

    def test_mean_direct_interval(self):
        topo = RotorTopology(577, 8)
        assert topo.mean_direct_interval() == pytest.approx(72.0)


class TestOperaSimulator:
    def make(self, n=36, **kw):
        kw.setdefault("period_cells", 100)
        kw.setdefault("propagation_cells", 5)
        return OperaSimulator(OperaConfig(n=n, uplinks=4, **kw))

    def test_short_flow_completes_quickly(self):
        sim = self.make()
        sim.schedule_flows([(0, 0, 7, 10, 2440)])
        sim.run_until_quiescent()
        assert len(sim.completed) == 1
        record = sim.completed[0]
        assert not record.bulk
        # a 10-cell flow over a few expander hops: far below one rotor cycle
        assert record.fct < 35 * 100

    def test_bulk_flow_waits_for_matchings(self):
        sim = self.make(bulk_cutoff_cells=50, indirect=False)
        sim.schedule_flows([(0, 0, 7, 1000, 244_000)])
        sim.run_until_quiescent()
        assert len(sim.completed) == 1
        record = sim.completed[0]
        assert record.bulk
        # served only ~uplinks/(n-1) of the time: heavy slowdown vs ideal
        assert record.normalized_fct(5) > 2.0

    def test_bulk_penalty_grows_with_n(self):
        """The Fig. 4 mechanism: RotorLB slowdown scales with N."""
        slowdowns = {}
        for n in (24, 96):
            sim = OperaSimulator(OperaConfig(
                n=n, uplinks=4, period_cells=100,
                bulk_cutoff_cells=50, indirect=False, propagation_cells=5,
            ))
            sim.schedule_flows([(0, 0, n // 2, 2000, 488_000)])
            sim.run_until_quiescent()
            slowdowns[n] = sim.completed[0].normalized_fct(5)
        assert slowdowns[96] > 1.5 * slowdowns[24]

    def test_indirect_relaying_helps(self):
        fcts = {}
        for indirect in (False, True):
            sim = self.make(bulk_cutoff_cells=50, indirect=indirect)
            sim.schedule_flows([(0, 0, 7, 2000, 488_000)])
            sim.run_until_quiescent()
            fcts[indirect] = sim.completed[0].fct
        assert fcts[True] <= fcts[False]

    def test_capacity_shared_at_receiver(self):
        """Two bulk flows into one receiver cannot exceed its ingress."""
        sim = self.make(bulk_cutoff_cells=50, indirect=False)
        sim.schedule_flows([
            (0, 1, 0, 500, 122_000),
            (0, 2, 0, 500, 122_000),
        ])
        sim.run(20_000)
        delivered = sum(
            r.size_cells for r in sim.completed if r.dst == 0
        )
        # ingress cap: at most period_cells per period
        assert delivered <= sim.period * 100

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OperaConfig(n=10, period_cells=0)

    def test_record_normalization(self):
        sim = self.make()
        sim.schedule_flows([(0, 0, 7, 10, 2440)])
        sim.run_until_quiescent()
        record = sim.completed[0]
        assert record.normalized_fct(5) == record.fct / 15
